"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
