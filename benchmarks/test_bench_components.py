"""Micro-benchmarks of the individual engines.

These pin the relative costs the paper discusses: LTTREE and van Ginneken
are cheap, PTREE moderate, BUBBLE_CONSTRUCT dominates (its per-call cost
is the paper's O(n⁴α⁵q²k²m)).
"""

from repro.baselines.lttree import lttree_fanout
from repro.baselines.ptree import ptree_route
from repro.baselines.van_ginneken import van_ginneken_insert
from repro.core.bubble_construct import bubble_construct
from repro.orders.tsp import tsp_order


def test_bench_tsp_order(benchmark, bench_net):
    order = benchmark(lambda: tsp_order(bench_net))
    assert sorted(order) == list(range(len(bench_net)))


def test_bench_lttree(benchmark, bench_net, tech, bench_config):
    result = benchmark(lambda: lttree_fanout(bench_net, tech,
                                             config=bench_config))
    assert sorted(result.root.all_sinks()) == list(range(len(bench_net)))


def test_bench_ptree(benchmark, bench_net, tech, bench_config):
    result = benchmark.pedantic(
        lambda: ptree_route(bench_net, tech, config=bench_config),
        iterations=1, rounds=3)
    assert result.solution.area == 0.0


def test_bench_van_ginneken(benchmark, bench_net, tech, bench_config):
    routed = ptree_route(bench_net, tech, config=bench_config).tree
    result = benchmark.pedantic(
        lambda: van_ginneken_insert(routed, tech, config=bench_config),
        iterations=1, rounds=3)
    assert result.solution.required_time >= -1e9


def test_bench_bubble_construct(benchmark, bench_net, tech, bench_config):
    order = tsp_order(bench_net)
    result = benchmark.pedantic(
        lambda: bubble_construct(bench_net, order, tech,
                                 config=bench_config),
        iterations=1, rounds=1)
    benchmark.extra_info.update(result.stats)
