"""E2 — Table 2 regeneration benchmark (post-layout circuit comparison).

One miniature circuit runs the full substitute layout flow per
experimental setup; the full 15-circuit experiment is driven from the CLI
(``python -m repro table2``) and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.baselines.flows import FLOW_I, FLOW_II, FLOW_III
from repro.netlist.flow_runner import run_circuit_flow
from repro.netlist.generator import CircuitSpec, generate_circuit

SPEC = CircuitSpec(name="bench_ckt", primary_inputs=4, primary_outputs=3,
                   logic_gates=14, levels=4, max_fanout=4, seed=29)


@pytest.mark.parametrize("flow", [FLOW_I, FLOW_II, FLOW_III])
def test_circuit_flow_runtime(benchmark, flow, tech, bench_config):
    result = benchmark.pedantic(
        lambda: run_circuit_flow(generate_circuit(SPEC), flow, tech,
                                 bench_config),
        iterations=1, rounds=1)
    benchmark.extra_info["critical_delay_ps"] = round(result.critical_delay, 1)
    benchmark.extra_info["total_area_um2"] = round(result.total_area, 1)
    benchmark.extra_info["nets_optimized"] = result.nets_optimized
    assert result.nets_optimized > 0


def test_circuit_flows_shape(tech, bench_config):
    """Not a timing benchmark: asserts the Table 2 delay ordering on the
    miniature circuit — buffered routing beats the naive sequential flow."""
    flow1 = run_circuit_flow(generate_circuit(SPEC), FLOW_I, tech,
                             bench_config)
    flow3 = run_circuit_flow(generate_circuit(SPEC), FLOW_III, tech,
                             bench_config)
    assert flow3.critical_delay < flow1.critical_delay * 1.05
