"""E1 — Table 1 regeneration benchmark (per-net flow comparison).

Each flow's wall time on the same representative net is measured
separately (the paper's runtime columns), and one benchmark runs the full
quick-suite Table 1 harness, attaching the delay/area ratio summary as
extra_info so the benchmark JSON doubles as an experiment record.
"""

import pytest

from repro.baselines.flows import FLOW_I, FLOW_II, FLOW_III, run_flow
from repro.experiments.nets import ExperimentNet, make_experiment_net
from repro.experiments.table1 import run_table1, summarize_table1


@pytest.mark.parametrize("flow", [FLOW_I, FLOW_II, FLOW_III])
def test_flow_runtime_on_representative_net(benchmark, flow, bench_net,
                                            tech, bench_config):
    result = benchmark.pedantic(
        lambda: run_flow(flow, bench_net, tech, config=bench_config),
        iterations=1, rounds=3 if flow != FLOW_III else 1)
    benchmark.extra_info["delay_ps"] = round(result.delay, 2)
    benchmark.extra_info["buffer_area_um2"] = round(result.buffer_area, 1)
    benchmark.extra_info["flow"] = flow


def test_table1_quick_suite(benchmark, tech, bench_config):
    """The whole Table 1 pipeline on a 3-net miniature suite."""
    nets = [
        ExperimentNet("C432", make_experiment_net("net1", 5, seed=101), 16),
        ExperimentNet("C3540", make_experiment_net("net8", 6, seed=108), 35),
        ExperimentNet("C7552", make_experiment_net("net16", 5, seed=116), 12),
    ]
    rows = benchmark.pedantic(
        lambda: run_table1(tech=tech, config=bench_config, nets=nets),
        iterations=1, rounds=1)
    summary = summarize_table1(rows)
    benchmark.extra_info.update(
        {key: round(value, 3) for key, value in summary.items()})
    # Shape assertions: the buffered flows must beat Flow I on delay.
    assert summary["flow2_delay"] < 1.0
    assert summary["flow3_delay"] < 1.0
    # MERLIN pays the largest runtime, as in the paper.
    assert summary["flow3_runtime"] > summary["flow2_runtime"]
