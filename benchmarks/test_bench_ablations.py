"""E3/E4/E5 — ablation benchmarks for the paper's prose claims.

* E3: candidate-location strategy (full Hanan / reduced / center-of-mass)
  barely changes quality, strongly changes runtime.
* E4: initial sink order barely changes MERLIN's final quality.
* E5: the branching bound α trades runtime for (slight) quality.
* plus the core claim: bubbling on vs off.
"""

import pytest

from repro.core.bubble_construct import bubble_construct
from repro.core.merlin import merlin
from repro.geometry.candidates import CandidateStrategy
from repro.orders.heuristics import random_order
from repro.orders.tsp import tsp_order
from repro.routing.evaluate import evaluate_tree


@pytest.mark.parametrize("strategy", list(CandidateStrategy))
def test_candidate_strategy(benchmark, strategy, bench_net, tech,
                            bench_config):
    cfg = bench_config.with_(candidate_strategy=strategy,
                             max_iterations=1)
    result = benchmark.pedantic(
        lambda: merlin(bench_net, tech, config=cfg),
        iterations=1, rounds=1)
    ev = evaluate_tree(result.tree, tech)
    benchmark.extra_info["strategy"] = strategy.value
    benchmark.extra_info["delay_ps"] = round(ev.delay, 1)


@pytest.mark.parametrize("label,seed", [("tsp", None), ("random_a", 3),
                                        ("random_b", 31)])
def test_initial_order(benchmark, label, seed, bench_net, tech,
                       bench_config):
    order = tsp_order(bench_net) if seed is None else \
        random_order(bench_net, seed=seed)
    result = benchmark.pedantic(
        lambda: merlin(bench_net, tech, config=bench_config,
                       initial_order=order),
        iterations=1, rounds=1)
    ev = evaluate_tree(result.tree, tech)
    benchmark.extra_info["initial_order"] = label
    benchmark.extra_info["delay_ps"] = round(ev.delay, 1)
    benchmark.extra_info["loops"] = result.iterations


@pytest.mark.parametrize("alpha", [2, 3, 4])
def test_alpha_sweep(benchmark, alpha, bench_net, tech, bench_config):
    cfg = bench_config.with_(alpha=alpha, max_iterations=1)
    order = tsp_order(bench_net)
    result = benchmark.pedantic(
        lambda: bubble_construct(bench_net, order, tech, config=cfg),
        iterations=1, rounds=1)
    benchmark.extra_info["alpha"] = alpha
    benchmark.extra_info["ranges"] = result.stats["ranges"]
    benchmark.extra_info["req_ps"] = round(result.solution.required_time, 1)


@pytest.mark.parametrize("bubbling", [True, False])
def test_bubbling_cost(benchmark, bubbling, bench_net, tech, bench_config):
    """What the χ1–χ3 structures cost: the neighborhood coverage is the
    paper's headline, and its runtime multiplier is the honest price."""
    cfg = bench_config.with_(enable_bubbling=bubbling, max_iterations=1)
    order = tsp_order(bench_net)
    result = benchmark.pedantic(
        lambda: bubble_construct(bench_net, order, tech, config=cfg),
        iterations=1, rounds=1)
    benchmark.extra_info["bubbling"] = bubbling
    benchmark.extra_info["req_ps"] = round(result.solution.required_time, 1)
    benchmark.extra_info["cells"] = result.stats["cells"]
