"""E9/E10 — extension benchmarks: annealing outer loop and wire sizing."""

import pytest

from repro.core.annealing import annealed_merlin
from repro.core.bubble_construct import bubble_construct
from repro.core.merlin import merlin
from repro.orders.tsp import tsp_order


def test_bench_annealed_outer_loop(benchmark, small_bench_net, tech,
                                   bench_config):
    """E9: the uphill-capable search; extra_info records whether its best
    beat the strict-descent loop on this net."""
    result = benchmark.pedantic(
        lambda: annealed_merlin(small_bench_net, tech, config=bench_config,
                                iterations=4, seed=11),
        iterations=1, rounds=1)
    greedy = merlin(small_bench_net, tech, config=bench_config)
    benchmark.extra_info["sa_req_ps"] = round(
        result.best.solution.required_time, 1)
    benchmark.extra_info["greedy_req_ps"] = round(
        greedy.best.solution.required_time, 1)
    benchmark.extra_info["uphill_moves"] = result.uphill_moves


@pytest.mark.parametrize("widths", [(1.0,), (1.0, 2.0, 4.0)])
def test_bench_wire_sizing_cost(benchmark, widths, small_bench_net, tech,
                                bench_config):
    """E10: what the extra width axis costs the DP (roughly linear in the
    number of width options on the extension-heavy paths)."""
    cfg = bench_config.with_(wire_width_options=widths, max_iterations=1)
    order = tsp_order(small_bench_net)
    result = benchmark.pedantic(
        lambda: bubble_construct(small_bench_net, order, tech, config=cfg),
        iterations=1, rounds=1)
    benchmark.extra_info["widths"] = len(widths)
    benchmark.extra_info["req_ps"] = round(result.solution.required_time, 1)
