"""Shared benchmark fixtures.

Benchmarks use the fast test preset and small workloads so a full
``pytest benchmarks/ --benchmark-only`` run finishes in minutes; the
publication-scale experiment runs (all 18 nets / 15 circuits, default
preset) are driven from the CLI (``python -m repro table1``) and recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core.config import MerlinConfig
from repro.experiments.nets import make_experiment_net
from repro.tech.technology import default_technology


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def bench_config():
    """Fast preset bounded to 2 MERLIN iterations."""
    return MerlinConfig.test_preset().with_(max_iterations=2)


@pytest.fixture(scope="session")
def bench_net():
    """One representative Table 1-style net (6 sinks)."""
    return make_experiment_net("bench_net", 6, seed=17)


@pytest.fixture(scope="session")
def small_bench_net():
    return make_experiment_net("bench_small", 4, seed=23)
