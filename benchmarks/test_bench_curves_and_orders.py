"""E6/E8 — combinatorial substrate benchmarks.

* E6 (Theorem 1): the closed-form neighborhood size is O(n) integer
  arithmetic while exhaustive enumeration is exponential — measured side
  by side on a small n where both are feasible.
* E8 (Lemma 10): solution-curve insert+prune throughput and final curve
  sizes as the load quantization (the paper's q) gets finer.
"""

import random

import pytest

from repro.core.bubble_construct import bubble_construct
from repro.core.config import MerlinConfig
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import SinkLeaf, Solution
from repro.geometry.point import Point
from repro.orders.neighborhood import (
    enumerate_neighborhood,
    neighborhood_size,
)
from repro.orders.order import Order
from repro.orders.tsp import tsp_order

P = Point(0, 0)


def test_bench_neighborhood_closed_form(benchmark):
    size = benchmark(lambda: neighborhood_size(500))
    assert size > 10 ** 100  # F(501): exponentially many orders


def test_bench_neighborhood_enumeration(benchmark):
    order = Order.identity(14)
    members = benchmark.pedantic(
        lambda: sum(1 for _ in enumerate_neighborhood(order)),
        iterations=1, rounds=3)
    assert members == neighborhood_size(14)


def _random_solutions(count, seed):
    rng = random.Random(seed)
    return [
        Solution(P, rng.uniform(0, 300), rng.uniform(-500, 500),
                 rng.uniform(0, 900), SinkLeaf(0))
        for _ in range(count)
    ]


def test_bench_curve_insert_and_prune(benchmark):
    solutions = _random_solutions(3000, seed=1)
    config = CurveConfig(load_step=2.0, area_step=60.0, max_solutions=24)

    def insert_all():
        curve = SolutionCurve(P, config)
        for s in solutions:
            curve.add(s)
        curve.prune()
        return curve

    curve = benchmark(insert_all)
    assert len(curve) <= 24
    assert curve.is_non_inferior_set()


@pytest.mark.parametrize("load_step", [8.0, 2.0])
def test_bench_curve_quantization_cost(benchmark, load_step, bench_net,
                                       tech):
    """Lemma 10 in action: finer q -> bigger curves -> slower DP."""
    cfg = MerlinConfig.test_preset().with_(
        curve=CurveConfig(load_step=load_step, area_step=60.0,
                          max_solutions=24))
    order = tsp_order(bench_net)
    result = benchmark.pedantic(
        lambda: bubble_construct(bench_net, order, tech, config=cfg),
        iterations=1, rounds=1)
    benchmark.extra_info["load_step"] = load_step
    benchmark.extra_info["final_curve_size"] = len(result.final_solutions)
