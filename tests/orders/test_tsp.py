"""Tests for repro.orders.tsp and repro.orders.heuristics."""

import pytest

from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.orders.heuristics import (
    projection_order,
    random_order,
    required_time_order,
)
from repro.orders.tsp import tsp_order
from tests.conftest import build_net


def line_net(n=5, spacing=100.0):
    """Sinks on a horizontal line, shuffled in index order."""
    xs = [3, 0, 4, 1, 2][:n]
    sinks = tuple(
        Sink(f"s{i}", Point(x * spacing, 0.0), load=10.0, required_time=500.0)
        for i, x in enumerate(xs)
    )
    return Net("line", Point(-50.0, 0.0), sinks)


class TestTspOrder:
    def test_line_net_ordered_geometrically(self):
        """On a line, the optimal tour is the coordinate order."""
        net = line_net()
        order = tsp_order(net)
        xs = [net.sink(i).position.x for i in order]
        assert xs == sorted(xs)

    def test_starts_near_source(self):
        net = line_net()
        order = tsp_order(net)
        first = net.sink(order[0]).position
        assert first.x == 0.0  # the sink closest to the source at (-50, 0)

    def test_single_sink(self):
        net = build_net(1, seed=3)
        assert list(tsp_order(net)) == [0]

    def test_is_permutation(self):
        net = build_net(9, seed=5)
        order = tsp_order(net)
        assert sorted(order) == list(range(9))

    def test_deterministic(self):
        net = build_net(8, seed=11)
        assert tsp_order(net).seq == tsp_order(net).seq

    def test_two_opt_not_worse_than_greedy_tour(self):
        """2-opt only applies improving moves, so tour length never grows."""
        from repro.orders.tsp import _nearest_neighbor_tour

        net = build_net(10, seed=13)
        positions = [s.position for s in net.sinks]

        def tour_length(tour):
            return sum(positions[a].manhattan_to(positions[b])
                       for a, b in zip(tour, tour[1:]))

        greedy = _nearest_neighbor_tour(net.source, positions)
        improved = list(tsp_order(net))
        assert tour_length(improved) <= tour_length(greedy) + 1e-9


class TestRequiredTimeOrder:
    def test_sorted_ascending(self):
        net = build_net(6, seed=2)
        order = required_time_order(net)
        reqs = [net.sink(i).required_time for i in order]
        assert reqs == sorted(reqs)

    def test_tie_breaks_on_load_descending(self):
        sinks = (
            Sink("a", Point(0, 0), load=5.0, required_time=100.0),
            Sink("b", Point(1, 0), load=50.0, required_time=100.0),
        )
        net = Net("tie", Point(0, 0), sinks)
        assert list(required_time_order(net)) == [1, 0]


class TestProjectionOrder:
    def test_x_projection(self):
        net = line_net()
        order = projection_order(net, "x")
        xs = [net.sink(i).position.x for i in order]
        assert xs == sorted(xs)

    def test_y_projection(self):
        net = build_net(5, seed=9)
        order = projection_order(net, "y")
        ys = [net.sink(i).position.y for i in order]
        assert ys == sorted(ys)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            projection_order(build_net(3, seed=1), "z")


class TestRandomOrder:
    def test_seeded_reproducibility(self):
        net = build_net(8, seed=4)
        assert random_order(net, seed=1).seq == random_order(net, seed=1).seq

    def test_different_seeds_differ(self):
        net = build_net(8, seed=4)
        assert random_order(net, seed=1).seq != random_order(net, seed=2).seq

    def test_is_permutation(self):
        net = build_net(7, seed=4)
        assert sorted(random_order(net, seed=5)) == list(range(7))
