"""Tests for repro.orders.order (Definitions 3 and 5)."""

import pytest

from repro.orders.order import Order


class TestOrder:
    def test_identity(self):
        order = Order.identity(4)
        assert list(order) == [0, 1, 2, 3]

    def test_identity_needs_positive_n(self):
        with pytest.raises(ValueError):
            Order.identity(0)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            Order((0, 0, 1))
        with pytest.raises(ValueError):
            Order((1, 2, 3))

    def test_paper_example_1(self):
        """Example 1: (s4,s3,s5,s1,s2,s6,s8,s7,s9) — 0-based here."""
        order = Order.from_sequence([3, 2, 4, 0, 1, 5, 7, 6, 8])
        # Π(1) = 4 in the paper: sink s1 (index 0) is at position 4 (1-based).
        assert order.position_of(0) == 3
        assert order.position_of(1) == 4
        assert order.position_of(2) == 1

    def test_positions_is_inverse(self):
        order = Order.from_sequence([2, 0, 1])
        positions = order.positions
        for sink in range(3):
            assert order[positions[sink]] == sink

    def test_getitem(self):
        order = Order.from_sequence([2, 0, 1])
        assert order[0] == 2


class TestSwap:
    def test_swap_adjacent(self):
        """Definition 5 on the sequence view: positions p and p+1 swap."""
        order = Order.identity(4).swapped(1)
        assert list(order) == [0, 2, 1, 3]

    def test_swap_returns_new_order(self):
        order = Order.identity(3)
        swapped = order.swapped(0)
        assert list(order) == [0, 1, 2]
        assert list(swapped) == [1, 0, 2]

    def test_swap_bounds_checked(self):
        with pytest.raises(ValueError):
            Order.identity(3).swapped(2)
        with pytest.raises(ValueError):
            Order.identity(3).swapped(-1)

    def test_double_swap_is_identity(self):
        order = Order.from_sequence([2, 0, 3, 1])
        assert order.swapped(1).swapped(1).seq == order.seq


class TestDisplacement:
    def test_displacement_of_identity_is_zero(self):
        order = Order.identity(5)
        assert order.displacement_from(order) == [0] * 5

    def test_single_swap_displaces_two_by_one(self):
        base = Order.identity(5)
        assert sorted(base.swapped(2).displacement_from(base)) == \
            [0, 0, 0, 1, 1]

    def test_reversal_displacement(self):
        base = Order.identity(4)
        assert base.reversed().displacement_from(base) == [3, 1, 1, 3]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Order.identity(3).displacement_from(Order.identity(4))
