"""Tests for repro.orders.neighborhood (Definition 4, Lemma 4, Theorem 1)."""

import pytest

from repro.orders.neighborhood import (
    enumerate_neighborhood,
    fibonacci,
    in_neighborhood,
    neighborhood_size,
    paper_theorem1_value,
    swap_decomposition,
)
from repro.orders.order import Order


class TestFibonacci:
    def test_small_values(self):
        assert [fibonacci(k) for k in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci(-1)

    def test_binet_agreement(self):
        """The paper's closed form always yields an integer (Theorem 1)."""
        import math

        phi = (1 + math.sqrt(5)) / 2
        psi = (1 - math.sqrt(5)) / 2
        for k in range(2, 25):
            binet = (phi ** k - psi ** k) / math.sqrt(5)
            assert round(binet) == fibonacci(k)


class TestNeighborhoodSize:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_matches_exhaustive_enumeration(self, n):
        """Ground truth: count all Π' with max displacement <= 1."""
        import itertools

        base = Order.identity(n)
        count = 0
        for perm in itertools.permutations(range(n)):
            candidate = Order.from_sequence(perm)
            if in_neighborhood(candidate, base):
                count += 1
        assert neighborhood_size(n) == count

    def test_exponential_growth(self):
        assert neighborhood_size(20) > 2 ** 12

    def test_paper_value_is_one_fibonacci_index_higher(self):
        """Documented off-by-one of the paper's Theorem 1 statement."""
        for n in range(2, 10):
            assert paper_theorem1_value(n) == \
                neighborhood_size(n) + neighborhood_size(n - 1)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_size(0)


class TestEnumerate:
    def test_enumeration_matches_size(self):
        for n in range(1, 8):
            base = Order.identity(n)
            members = list(enumerate_neighborhood(base))
            assert len(members) == neighborhood_size(n)
            assert len({m.seq for m in members}) == len(members)

    def test_all_members_in_neighborhood(self):
        base = Order.from_sequence([2, 0, 3, 1, 4])
        for member in enumerate_neighborhood(base):
            assert in_neighborhood(member, base)

    def test_includes_identity(self):
        base = Order.identity(5)
        assert any(m.seq == base.seq for m in enumerate_neighborhood(base))


class TestMembership:
    def test_paper_example_2(self):
        """Π' = (s1,s3,s2,s4,...) is in N(identity)."""
        base = Order.identity(9)
        candidate = Order.from_sequence([0, 2, 1, 3, 4, 5, 7, 6, 8])
        assert in_neighborhood(candidate, base)

    def test_rotation_by_two_not_in_neighborhood(self):
        base = Order.identity(5)
        rotated = Order.from_sequence([2, 3, 4, 0, 1])
        assert not in_neighborhood(rotated, base)

    def test_neighborhood_is_symmetric(self):
        """Definition 1's symmetry requirement (Lemma 11)."""
        base = Order.identity(6)
        for member in enumerate_neighborhood(base):
            assert in_neighborhood(base, member)


class TestSwapDecomposition:
    def test_identity_decomposes_to_no_swaps(self):
        base = Order.identity(4)
        assert swap_decomposition(base, base) == []

    def test_single_swap(self):
        base = Order.identity(4)
        assert swap_decomposition(base.swapped(1), base) == [1]

    def test_disjoint_swaps(self):
        base = Order.identity(6)
        candidate = base.swapped(0).swapped(3)
        assert swap_decomposition(candidate, base) == [0, 3]

    def test_non_neighbor_returns_none(self):
        base = Order.identity(5)
        rotated = Order.from_sequence([2, 3, 4, 0, 1])
        assert swap_decomposition(rotated, base) is None

    def test_lemma4_every_neighbor_decomposes(self):
        """Lemma 4: each neighbor = disjoint adjacent swaps of the base."""
        base = Order.from_sequence([1, 3, 0, 2, 4])
        for member in enumerate_neighborhood(base):
            swaps = swap_decomposition(member, base)
            assert swaps is not None
            # Swaps must be non-overlapping.
            assert all(b - a >= 2 for a, b in zip(swaps, swaps[1:]))
            # Re-applying them reconstructs the member.
            rebuilt = base
            for position in swaps:
                rebuilt = rebuilt.swapped(position)
            assert rebuilt.seq == member.seq

    def test_size_mismatch_returns_none(self):
        assert swap_decomposition(Order.identity(3), Order.identity(4)) is None
