"""Tests for repro.netlist.netlist."""

import pytest

from repro.netlist.netlist import (
    STANDARD_CELLS,
    CellType,
    CircuitNet,
    Gate,
    Netlist,
)


def tiny_netlist():
    """pi0 -> g1 -> {g2, po0}; g2 -> po1."""
    gates = [
        Gate("pi0", STANDARD_CELLS["__PI"]),
        Gate("g1", STANDARD_CELLS["INV"]),
        Gate("g2", STANDARD_CELLS["INV"]),
        Gate("po0", STANDARD_CELLS["__PO"]),
        Gate("po1", STANDARD_CELLS["__PO"]),
    ]
    nets = [
        CircuitNet("n0", "pi0", ("g1",)),
        CircuitNet("n1", "g1", ("g2", "po0")),
        CircuitNet("n2", "g2", ("po1",)),
    ]
    return Netlist("tiny", gates, nets)


class TestCellTypes:
    def test_standard_cells_well_formed(self):
        for cell in STANDARD_CELLS.values():
            assert cell.input_cap >= 0
            assert cell.area > 0

    def test_invalid_cell_rejected(self):
        with pytest.raises(ValueError):
            CellType("bad", inputs=-1, input_cap=1, drive_resistance=1,
                     intrinsic_delay=1, area=1)


class TestNetlistValidation:
    def test_tiny_netlist_builds(self):
        netlist = tiny_netlist()
        assert len(netlist.gates) == 5
        assert len(netlist.nets) == 3

    def test_duplicate_gate_rejected(self):
        gates = [Gate("a", STANDARD_CELLS["__PI"]),
                 Gate("a", STANDARD_CELLS["INV"]),
                 Gate("b", STANDARD_CELLS["INV"])]
        with pytest.raises(ValueError, match="duplicate"):
            Netlist("bad", gates, [CircuitNet("n", "a", ("b",))])

    def test_unknown_driver_rejected(self):
        gates = [Gate("pi", STANDARD_CELLS["__PI"]),
                 Gate("g", STANDARD_CELLS["INV"])]
        with pytest.raises(ValueError, match="unknown driver"):
            Netlist("bad", gates, [CircuitNet("n", "ghost", ("g",)),
                                   CircuitNet("n2", "pi", ("g",))])

    def test_gate_without_fanin_rejected(self):
        gates = [Gate("pi", STANDARD_CELLS["__PI"]),
                 Gate("floating", STANDARD_CELLS["INV"])]
        with pytest.raises(ValueError, match="no fanin"):
            Netlist("bad", gates, [])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CircuitNet("n", "g", ("g",))

    def test_multiple_nets_per_driver_rejected(self):
        gates = [Gate("pi", STANDARD_CELLS["__PI"]),
                 Gate("g", STANDARD_CELLS["INV"])]
        nets = [CircuitNet("n1", "pi", ("g",)),
                CircuitNet("n2", "pi", ("g",))]
        with pytest.raises(ValueError, match="more than one net"):
            Netlist("bad", gates, nets)


class TestQueries:
    def test_boundary_classification(self):
        netlist = tiny_netlist()
        assert [g.name for g in netlist.primary_inputs] == ["pi0"]
        assert {g.name for g in netlist.primary_outputs} == {"po0", "po1"}
        assert {g.name for g in netlist.logic_gates} == {"g1", "g2"}

    def test_gate_area_excludes_pseudo_cells(self):
        netlist = tiny_netlist()
        assert netlist.gate_area == pytest.approx(
            2 * STANDARD_CELLS["INV"].area)

    def test_net_driven_by(self):
        netlist = tiny_netlist()
        assert netlist.net_driven_by("g1").name == "n1"
        assert netlist.net_driven_by("po0") is None

    def test_fanin_nets(self):
        netlist = tiny_netlist()
        assert [n.name for n in netlist.fanin_nets("g2")] == ["n1"]

    def test_topological_order(self):
        netlist = tiny_netlist()
        order = [g.name for g in netlist.topological_gates()]
        assert order.index("pi0") < order.index("g1")
        assert order.index("g1") < order.index("g2")
        assert order.index("g2") < order.index("po1")

    def test_cycle_detected(self):
        gates = [Gate("pi", STANDARD_CELLS["__PI"]),
                 Gate("a", STANDARD_CELLS["INV"]),
                 Gate("b", STANDARD_CELLS["INV"])]
        nets = [CircuitNet("np", "pi", ("a",)),
                CircuitNet("na", "a", ("b",)),
                CircuitNet("nb", "b", ("a",))]
        netlist = Netlist("cyclic", gates, nets)
        with pytest.raises(ValueError, match="cycle"):
            netlist.topological_gates()
