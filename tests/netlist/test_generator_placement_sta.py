"""Tests for repro.netlist generator, placement, and STA."""

import pytest

from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.netlist.placement import place_netlist
from repro.netlist.sta import run_sta, star_net_delay
from repro.tech.technology import default_technology

TECH = default_technology()
SPEC = CircuitSpec(name="unit", primary_inputs=5, primary_outputs=4,
                   logic_gates=20, levels=4, max_fanout=5, seed=7)


@pytest.fixture(scope="module")
def circuit():
    netlist = generate_circuit(SPEC)
    place_netlist(netlist)
    return netlist


class TestGenerator:
    def test_gate_counts(self, circuit):
        assert len(circuit.primary_inputs) == 5
        assert len(circuit.primary_outputs) == 4
        assert len(circuit.logic_gates) == 20

    def test_deterministic(self):
        a = generate_circuit(SPEC)
        b = generate_circuit(SPEC)
        assert [n.name for n in a.nets] == [n.name for n in b.nets]
        assert [n.sinks for n in a.nets] == [n.sinks for n in b.nets]

    def test_different_seeds_differ(self):
        other = generate_circuit(CircuitSpec(
            name="unit", primary_inputs=5, primary_outputs=4,
            logic_gates=20, levels=4, max_fanout=5, seed=8))
        base = generate_circuit(SPEC)
        assert [n.sinks for n in base.nets] != [n.sinks for n in other.nets]

    def test_acyclic(self, circuit):
        circuit.topological_gates()  # raises on cycles

    def test_every_logic_gate_driven(self, circuit):
        driven = {s for net in circuit.nets for s in net.sinks}
        for gate in circuit.logic_gates:
            assert gate.name in driven

    def test_no_dead_end_logic_gates(self, circuit):
        """Dead-end gates would sit off every PO path and make the STA's
        worst slack spuriously negative (regression: generator once left
        them behind under certain hash seeds)."""
        drivers = {net.driver for net in circuit.nets}
        for gate in circuit.logic_gates:
            assert gate.name in drivers

    def test_seed_is_hash_randomization_proof(self):
        """The generator seed must not involve the built-in ``hash``:
        circuits have to be identical across interpreter processes."""
        import os
        import subprocess
        import sys

        import repro

        snippet = (
            "from repro.netlist.generator import CircuitSpec, "
            "generate_circuit\n"
            "c = generate_circuit(CircuitSpec(name='unit', "
            "primary_inputs=5, primary_outputs=4, logic_gates=20, "
            "levels=4, max_fanout=5, seed=7))\n"
            "print(sorted((n.driver, n.sinks) for n in c.nets))\n"
        )
        # The subprocess env is minimal on purpose (the test is about
        # PYTHONHASHSEED), so repro's import root must be supplied
        # explicitly — the package may be on sys.path via PYTHONPATH
        # rather than installed.
        repro_root = os.path.dirname(os.path.dirname(repro.__file__))
        outputs = set()
        for hash_seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin",
                     "PYTHONPATH": repro_root},
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout)
        assert len(outputs) == 1

    def test_fanout_mostly_capped(self, circuit):
        over = [n for n in circuit.nets if len(n.sinks) > SPEC.max_fanout]
        assert len(over) <= max(1, len(circuit.nets) // 10)

    def test_multi_sink_nets_exist(self, circuit):
        """Without multi-sink nets Table 2 would be vacuous."""
        assert any(len(n.sinks) >= 2 for n in circuit.nets)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CircuitSpec(name="x", primary_inputs=0)
        with pytest.raises(ValueError):
            CircuitSpec(name="x", logic_gates=2, levels=5)


class TestPlacement:
    def test_every_gate_placed(self, circuit):
        for gate in circuit.gates.values():
            assert gate.position is not None

    def test_pis_on_left_edge(self, circuit):
        xs = {g.position.x for g in circuit.primary_inputs}
        assert xs == {0.0}

    def test_deepest_po_right_of_logic(self, circuit):
        """The deepest logic gate's fanout can only be POs, so the
        rightmost PO column sits past the rightmost logic column."""
        po_x = max(g.position.x for g in circuit.primary_outputs)
        logic_x = max(g.position.x for g in circuit.logic_gates)
        assert po_x > logic_x

    def test_deterministic(self):
        a = place_netlist(generate_circuit(SPEC))
        b = place_netlist(generate_circuit(SPEC))
        for name in a.gates:
            assert a.gates[name].position == b.gates[name].position


class TestSta:
    def test_arrival_monotone_along_paths(self, circuit):
        sta = run_sta(circuit, TECH)
        for net in circuit.nets:
            for sink in net.sinks:
                assert sta.arrival[sink] > sta.arrival[net.driver] - 1e-9

    def test_worst_slack_zero_at_default_target(self, circuit):
        sta = run_sta(circuit, TECH)
        assert sta.worst_slack == pytest.approx(0.0, abs=1e-6)

    def test_required_times_respect_target(self, circuit):
        sta = run_sta(circuit, TECH, target=50000.0)
        for po in circuit.primary_outputs:
            assert sta.required[po.name] == 50000.0

    def test_critical_delay_is_max_po_arrival(self, circuit):
        sta = run_sta(circuit, TECH)
        assert sta.critical_delay == pytest.approx(
            max(sta.arrival[g.name] for g in circuit.primary_outputs))

    def test_custom_net_delay_function(self, circuit):
        constant = run_sta(circuit, TECH,
                           net_delay=lambda net, sink: 100.0)
        # Critical delay = 100 * depth of the deepest PO path.
        assert constant.critical_delay % 100.0 == pytest.approx(0.0)

    def test_star_delay_positive_and_load_aware(self, circuit):
        delay = star_net_delay(circuit, TECH)
        for net in circuit.nets[:5]:
            for sink in net.sinks:
                assert delay(net, sink) > 0.0

    def test_pi_arrivals_zero(self, circuit):
        sta = run_sta(circuit, TECH)
        for pi in circuit.primary_inputs:
            assert sta.arrival[pi.name] == 0.0
