"""Tests for repro.netlist.flow_runner (the Table 2 harness core)."""

import pytest

from repro.baselines.flows import FLOW_I, FLOW_II
from repro.core.config import MerlinConfig
from repro.netlist.flow_runner import run_circuit_flow
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.tech.technology import default_technology

TECH = default_technology()
CFG = MerlinConfig.test_preset()
SPEC = CircuitSpec(name="runner", primary_inputs=4, primary_outputs=3,
                   logic_gates=12, levels=3, max_fanout=4, seed=3)


@pytest.fixture(scope="module")
def flow2_result():
    return run_circuit_flow(generate_circuit(SPEC), FLOW_II, TECH, CFG)


class TestRunCircuitFlow:
    def test_optimizes_every_multi_sink_net(self, flow2_result):
        circuit = generate_circuit(SPEC)
        multi = sum(1 for n in circuit.nets if len(n.sinks) >= 2)
        assert flow2_result.nets_optimized == multi

    def test_total_area_is_gates_plus_buffers(self, flow2_result):
        circuit = generate_circuit(SPEC)
        assert flow2_result.total_area == pytest.approx(
            circuit.gate_area + flow2_result.buffer_area)

    def test_per_net_results_validated_trees(self, flow2_result):
        from repro.routing.validate import validate_tree

        assert flow2_result.per_net
        for result in flow2_result.per_net.values():
            validate_tree(result.tree)

    def test_critical_delay_positive_and_finite(self, flow2_result):
        assert 0.0 < flow2_result.critical_delay < 1e9

    def test_final_sta_uses_optimized_delays(self, flow2_result):
        """Buffered routing must beat the crude star estimates."""
        circuit = generate_circuit(SPEC)
        from repro.netlist.placement import place_netlist
        from repro.netlist.sta import run_sta

        place_netlist(circuit)
        baseline = run_sta(circuit, TECH)
        assert flow2_result.critical_delay < baseline.critical_delay

    def test_min_sinks_filter(self):
        result = run_circuit_flow(generate_circuit(SPEC), FLOW_II, TECH,
                                  CFG, min_sinks=1000)
        assert result.nets_optimized == 0

    def test_flow1_also_runs(self):
        result = run_circuit_flow(generate_circuit(SPEC), FLOW_I, TECH, CFG)
        assert result.nets_optimized > 0
        assert result.flow == FLOW_I


class TestUseService:
    """`use_service=True` must be a pure plumbing change (satellite of
    the closure-pipeline PR): bit-identical results through the service
    batch path, and a hard error for flows the service cannot run."""

    def test_service_path_is_bit_identical_for_flow3(self):
        from repro.baselines.flows import FLOW_III
        from repro.routing.export import tree_signature

        direct = run_circuit_flow(generate_circuit(SPEC), FLOW_III,
                                  TECH, CFG)
        served = run_circuit_flow(generate_circuit(SPEC), FLOW_III,
                                  TECH, CFG, use_service=True)
        assert served.critical_delay == direct.critical_delay
        assert served.total_area == direct.total_area
        assert served.buffer_area == direct.buffer_area
        assert served.nets_optimized == direct.nets_optimized
        assert ({n: tree_signature(r.tree)
                 for n, r in served.per_net.items()}
                == {n: tree_signature(r.tree)
                    for n, r in direct.per_net.items()})
        assert all(r.extra.get("service") for r in served.per_net.values())

    def test_shared_service_reuses_its_cache(self):
        from repro.baselines.flows import FLOW_III
        from repro.service import OptimizationService, ResultCache

        with OptimizationService(tech=TECH, config=CFG,
                                 cache=ResultCache(), workers=1) as service:
            run_circuit_flow(generate_circuit(SPEC), FLOW_III, TECH, CFG,
                             service=service)
            again = run_circuit_flow(generate_circuit(SPEC), FLOW_III,
                                     TECH, CFG, service=service)
        assert again.nets_optimized > 0
        assert all(r.extra["cached"] for r in again.per_net.values())

    def test_baseline_flows_are_not_served(self):
        from repro.resilience.errors import MerlinInputError

        with pytest.raises(MerlinInputError, match="use_service"):
            run_circuit_flow(generate_circuit(SPEC), FLOW_II, TECH, CFG,
                             use_service=True)
