"""Tests for the CLI driver (fast paths only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_net_command_runs_all_flows(self, capsys):
        assert main(["net", "--sinks", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "flow1_lttree_ptree" in out
        assert "flow2_ptree_vg" in out
        assert "flow3_merlin" in out
        assert "delay=" in out

    def test_net_command_dot_output(self, capsys):
        assert main(["net", "--sinks", "3", "--seed", "1", "--dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph routing_tree" in out

    def test_ablation_alpha(self, capsys):
        assert main(["ablation", "alpha", "--sinks", "4"]) == 0
        out = capsys.readouterr().out
        assert "alpha=" in out

    def test_ablation_convergence(self, capsys):
        assert main(["ablation", "convergence", "--sinks", "4"]) == 0
        out = capsys.readouterr().out
        assert "iteration_1" in out

    def test_net_backend_flag_is_a_thin_override(self, capsys):
        import re

        def scrub(text):  # wall-clock fields differ run to run
            return re.sub(r"time=\s*[\d.]+", "time=X", text)

        # No flag: config backend untouched (python); with flag: same
        # result either way (backends are bit-identical).
        assert main(["net", "--sinks", "3", "--seed", "1"]) == 0
        plain = capsys.readouterr().out
        assert main(["net", "--sinks", "3", "--seed", "1",
                     "--backend", "python"]) == 0
        assert scrub(capsys.readouterr().out) == scrub(plain)


class TestResolveCliWorkers:
    def test_none_falls_back_to_config(self):
        from repro.cli import _resolve_cli_workers
        from repro.core.config import MerlinConfig

        assert _resolve_cli_workers(None, MerlinConfig()) == 1
        assert _resolve_cli_workers(
            None, MerlinConfig().with_(workers=3)) == 3

    def test_zero_means_one_per_cpu(self):
        from repro.cli import _resolve_cli_workers
        from repro.core.config import MerlinConfig
        from repro.parallel import default_worker_count

        assert _resolve_cli_workers(0, MerlinConfig()) \
            == default_worker_count()

    def test_explicit_value_wins(self):
        from repro.cli import _resolve_cli_workers
        from repro.core.config import MerlinConfig

        assert _resolve_cli_workers(5, MerlinConfig().with_(workers=2)) == 5


class TestServeCommand:
    def test_serve_wires_the_service(self, monkeypatch, tmp_path):
        import repro.service as service_mod

        captured = {}

        def fake_serve(host, port, service=None, verbose=False,
                       drain_timeout_s=30.0):
            captured.update(host=host, port=port, service=service,
                            verbose=verbose, drain_timeout_s=drain_timeout_s)
            service.close()

        monkeypatch.setattr(service_mod, "serve", fake_serve)
        assert main(["serve", "--port", "9999", "--workers", "3",
                     "--preset", "test", "--job-timeout", "7.5",
                     "--cache-capacity", "11",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        assert captured["host"] == "127.0.0.1"
        assert captured["port"] == 9999
        svc = captured["service"]
        assert svc.workers == 3
        assert svc.job_timeout_s == 7.5
        assert svc.cache.stats()["capacity"] == 11
        assert svc.cache.stats()["disk_dir"] == str(tmp_path / "c")

    def test_serve_rejects_bad_preset(self):
        with pytest.raises(SystemExit):
            main(["serve", "--preset", "bogus"])


class TestNetFileFlag:
    """``net --net-file`` loads JSON nets and fails loudly but cleanly."""

    def _write(self, tmp_path, payload):
        path = tmp_path / "net.json"
        path.write_text(payload, encoding="utf-8")
        return str(path)

    def _good_payload(self):
        import json

        return json.dumps({
            "name": "filed",
            "source": [0.0, 0.0],
            "sinks": [
                {"name": "u1", "position": [400.0, 100.0],
                 "load": 5.0, "required_time": 600.0},
                {"name": "u2", "position": [100.0, 500.0],
                 "load": 7.0, "required_time": 700.0},
            ],
        })

    def test_valid_file_runs_all_flows(self, tmp_path, capsys):
        path = self._write(tmp_path, self._good_payload())
        assert main(["net", "--net-file", path]) == 0
        out = capsys.readouterr().out
        assert "flow1_lttree_ptree" in out
        assert "flow3_merlin" in out

    def test_wrapped_payload_is_accepted(self, tmp_path, capsys):
        path = self._write(
            tmp_path, '{"net": ' + self._good_payload() + "}")
        assert main(["net", "--net-file", path]) == 0
        assert "flow3_merlin" in capsys.readouterr().out

    def test_malformed_payload_exits_2_with_one_line_error(
            self, tmp_path, capsys):
        import json

        data = json.loads(self._good_payload())
        del data["sinks"][0]["load"]
        path = self._write(tmp_path, json.dumps(data))
        assert main(["net", "--net-file", path]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1  # one line, no traceback
        assert lines[0].startswith("error: ")
        assert "sink #0" in lines[0] and "'load'" in lines[0]

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["net", "--net-file",
                     str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "cannot read" in err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = self._write(tmp_path, "{not json")
        assert main(["net", "--net-file", path]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err


class TestClosureCommand:
    def test_list_orders(self, capsys):
        assert main(["closure", "--list-orders"]) == 0
        out = capsys.readouterr().out
        for name in ("criticality", "fanout", "slack_weighted", "learned"):
            assert name in out

    def test_custom_spec_closes_timing(self, capsys):
        assert main(["closure", "--circuit", "10:3:4:3", "--preset",
                     "test", "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "policy criticality" in out
        assert "converged after" in out
        assert "iter 1:" in out

    def test_json_output_parses(self, capsys):
        import json

        assert main(["closure", "--circuit", "10:3:4:3", "--preset",
                     "test", "--order", "fanout", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["converged"] is True
        assert body["policy"] == "fanout"
        assert body["iterations"]

    def test_unknown_circuit_exits_2(self, capsys):
        assert main(["closure", "--circuit", "nonesuch",
                     "--preset", "test"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1  # one line, no traceback
        assert lines[0].startswith("error: ")
        assert "b9" in lines[0]  # names the known circuits

    def test_unknown_order_exits_2(self, capsys):
        assert main(["closure", "--circuit", "10:3:4:3", "--preset",
                     "test", "--order", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "criticality" in err

    def test_netlist_file_round_trip(self, tmp_path, capsys):
        import json

        from repro.netlist.generator import CircuitSpec, generate_circuit
        from repro.netlist.io import netlist_to_dict

        spec = CircuitSpec(name="cli_file", primary_inputs=4,
                           primary_outputs=3, logic_gates=10, levels=3,
                           max_fanout=4, seed=3)
        path = tmp_path / "netlist.json"
        path.write_text(json.dumps(netlist_to_dict(
            generate_circuit(spec))))
        assert main(["closure", "--netlist-file", str(path),
                     "--preset", "test"]) == 0
        assert "converged after" in capsys.readouterr().out

    def test_bad_netlist_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["closure", "--netlist-file", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot load netlist")
