"""Tests for the CLI driver (fast paths only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_net_command_runs_all_flows(self, capsys):
        assert main(["net", "--sinks", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "flow1_lttree_ptree" in out
        assert "flow2_ptree_vg" in out
        assert "flow3_merlin" in out
        assert "delay=" in out

    def test_net_command_dot_output(self, capsys):
        assert main(["net", "--sinks", "3", "--seed", "1", "--dot"]) == 0
        out = capsys.readouterr().out
        assert "digraph routing_tree" in out

    def test_ablation_alpha(self, capsys):
        assert main(["ablation", "alpha", "--sinks", "4"]) == 0
        out = capsys.readouterr().out
        assert "alpha=" in out

    def test_ablation_convergence(self, capsys):
        assert main(["ablation", "convergence", "--sinks", "4"]) == 0
        out = capsys.readouterr().out
        assert "iteration_1" in out
