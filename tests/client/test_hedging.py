"""Client-side hedged requests: first-wins racing, budget, eligibility.

``_request_once`` is stubbed so timing is controlled exactly — no
server, no sockets.  The live-server behaviour (hedges against a real
slow shard) rides the loadgen suite; this file pins the policy logic.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.client import ClientResponse, HedgePolicy, MerlinClient, \
    RetryPolicy
from repro.client.http import ClientTransportError


def _response(tag):
    return ClientResponse(status=200, body={"result": {"tag": tag}},
                          headers={})


def _client(hedge=None, **hedge_kwargs):
    if hedge is None:
        hedge = HedgePolicy(delay_s=0.02, **hedge_kwargs)
    return MerlinClient("http://test.invalid",
                        retry=RetryPolicy(max_attempts=1), hedge=hedge)


class ScriptedTransport:
    """Replaces ``_request_once``: call N runs the Nth behaviour."""

    def __init__(self, behaviours):
        self.behaviours = list(behaviours)
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, method, path, payload=None):
        with self._lock:
            index = min(self.calls, len(self.behaviours) - 1)
            self.calls += 1
        return self.behaviours[index]()


def slow(seconds, then):
    def run():
        time.sleep(seconds)
        if isinstance(then, Exception):
            raise then
        return then
    return run


def fast(result):
    return slow(0.0, result)


# ----------------------------------------------------------------------
# Policy validation and eligibility
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    dict(delay_s=0.0),
    dict(percentile=0.0),
    dict(percentile=1.0),
    dict(min_samples=0),
    dict(window=4, min_samples=8),
    dict(budget_fraction=0.0),
    dict(budget_fraction=1.5),
])
def test_policy_rejects_nonsense(bad):
    with pytest.raises(ValueError):
        HedgePolicy(**bad)


def test_only_idempotent_requests_are_hedgeable():
    client = _client()
    assert client._hedgeable("GET", "/v1/stats")
    assert client._hedgeable("GET", "/v1/healthz")
    assert client._hedgeable("POST", "/v1/optimize")
    assert not client._hedgeable("POST", "/v1/closure")
    without = MerlinClient("http://test.invalid")
    assert not without._hedgeable("GET", "/v1/stats")


def test_non_idempotent_posts_never_grow_a_hedge(monkeypatch):
    client = _client()
    transport = ScriptedTransport([slow(0.1, _response("only"))])
    monkeypatch.setattr(client, "_request_once", transport)
    response = client.request("POST", "/v1/closure", {"circuit": "b9"})
    assert response.result["tag"] == "only"
    assert transport.calls == 1
    stats = client.hedge_stats()
    assert stats["eligible"] == 0 and stats["issued"] == 0


# ----------------------------------------------------------------------
# The race
# ----------------------------------------------------------------------

def test_slow_primary_loses_to_the_hedge(monkeypatch):
    client = _client()
    release = threading.Event()

    def stuck_primary():
        release.wait(timeout=30)
        return _response("primary")

    transport = ScriptedTransport([stuck_primary,
                                   fast(_response("hedge"))])
    monkeypatch.setattr(client, "_request_once", transport)
    try:
        started = time.monotonic()
        response = client.request("POST", "/v1/optimize", {"net": {}})
        elapsed = time.monotonic() - started
    finally:
        release.set()
    assert response.result["tag"] == "hedge"
    assert elapsed < 5.0  # did not wait for the stuck primary
    assert transport.calls == 2
    stats = client.hedge_stats()
    assert stats == {"enabled": True, "eligible": 1, "issued": 1,
                     "wins": 1, "latency_samples": 1}


def test_fast_primary_needs_no_hedge(monkeypatch):
    client = _client()
    transport = ScriptedTransport([fast(_response("primary"))])
    monkeypatch.setattr(client, "_request_once", transport)
    response = client.request("GET", "/v1/stats")
    assert response.result["tag"] == "primary"
    assert transport.calls == 1
    stats = client.hedge_stats()
    assert stats["eligible"] == 1 and stats["issued"] == 0
    assert stats["wins"] == 0


def test_failed_first_finisher_falls_back_to_the_straggler(monkeypatch):
    client = _client()
    boom = ClientTransportError("primary died", stage="client")
    transport = ScriptedTransport([slow(0.05, boom),
                                   slow(0.1, _response("hedge"))])
    monkeypatch.setattr(client, "_request_once", transport)
    response = client.request("GET", "/v1/stats")
    assert response.result["tag"] == "hedge"
    assert client.hedge_stats()["wins"] == 1


def test_both_racers_failing_raises(monkeypatch):
    client = _client()
    boom = ClientTransportError("down", stage="client")
    transport = ScriptedTransport([slow(0.05, boom), slow(0.05, boom)])
    monkeypatch.setattr(client, "_request_once", transport)
    with pytest.raises(ClientTransportError):
        client.request("GET", "/v1/stats")


# ----------------------------------------------------------------------
# Budget and trigger delay
# ----------------------------------------------------------------------

def test_hedge_budget_caps_issued_hedges(monkeypatch):
    # Every primary is slower than the hedge delay, but the budget
    # (fraction 0.1, floor 1) lets only the first request grow a hedge.
    client = _client(budget_fraction=0.1)
    transport = ScriptedTransport(
        [slow(0.06, _response("slow"))] * 20)
    monkeypatch.setattr(client, "_request_once", transport)
    for _ in range(5):
        client.request("GET", "/v1/stats")
    stats = client.hedge_stats()
    assert stats["eligible"] == 5
    assert stats["issued"] == 1  # max(1, 0.1 * 5) = 1
    assert transport.calls == 6  # 5 primaries + the single hedge


def test_hedge_delay_uses_the_latency_percentile_once_warm():
    client = _client(min_samples=8, percentile=0.95)
    assert client.hedge_delay_s() == pytest.approx(0.02)  # cold: fixed
    samples = [0.01 * (i + 1) for i in range(10)]  # 0.01 .. 0.10
    with client._hedge_lock:
        client._latencies.extend(samples)
    # rank = int(0.95 * 9) = 8 -> the 9th-smallest sample.
    assert client.hedge_delay_s() == pytest.approx(0.09)


def test_latency_window_is_bounded_by_the_policy():
    client = _client(hedge=HedgePolicy(delay_s=0.02, window=16,
                                       min_samples=8))
    with client._hedge_lock:
        client._latencies.extend([0.01] * 64)
    assert client.hedge_stats()["latency_samples"] == 16
