"""MerlinClient: retry schedules, Retry-After handling, typed errors.

The retry tests run against a scripted stdlib server that answers from
a canned response list — no engine, no sleeping (the policy's ``sleep``
is injected), so the schedule itself is what gets asserted.
"""

from __future__ import annotations

import json
import random
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.client import (
    ClientResponse,
    ClientTransportError,
    MerlinClient,
    RetryPolicy,
)
from repro.resilience.errors import (
    MerlinInputError,
    MerlinResourceError,
    UnknownPathError,
)


# ----------------------------------------------------------------------
# backoff policy
# ----------------------------------------------------------------------

def test_delay_schedule_is_seeded_and_replayable():
    policy = RetryPolicy(seed=7)
    a = [policy.delay_s(i, random.Random(7)) for i in range(1, 5)]
    b = [policy.delay_s(i, random.Random(7)) for i in range(1, 5)]
    assert a == b


def test_delay_ceiling_grows_exponentially_then_caps():
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.4)
    rng = random.Random(1)
    for attempt, ceiling in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.4),
                             (10, 0.4)):
        draws = [policy.delay_s(attempt, rng) for _ in range(50)]
        assert all(0.0 <= d <= ceiling for d in draws)


def test_retry_after_floors_the_jittered_delay():
    policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05)
    rng = random.Random(3)
    assert all(policy.delay_s(1, rng, retry_after_s=2.5) >= 2.5
               for _ in range(20))


# ----------------------------------------------------------------------
# response decoding
# ----------------------------------------------------------------------

def _envelope(error=None, result=None):
    return {"api_version": "v1", "request_id": "r-1", "result": result,
            "error": error, "degraded": False, "timing_ms": 0.1}


def test_error_record_reads_the_envelope_detail():
    record = MerlinInputError("bad", stage="net").record
    response = ClientResponse(400, _envelope(error={
        "category": "input", "code": "merlin_input", "message": "bad",
        "detail": record.to_dict()}), headers={})
    rebuilt = response.error_record()
    assert rebuilt == record
    with pytest.raises(MerlinInputError, match="bad"):
        response.raise_for_error()


def test_error_record_falls_back_to_the_legacy_shape():
    record = UnknownPathError("gone", stage="http").record
    response = ClientResponse(
        404, {"error": "gone", "error_detail": record.to_dict()},
        headers={})
    assert response.error_record() == record
    assert not response.ok


def test_ok_requires_2xx_and_a_null_error():
    assert ClientResponse(200, _envelope(result={}), {}).ok
    assert not ClientResponse(200, _envelope(error={"code": "x"}), {}).ok
    assert not ClientResponse(503, _envelope(result={}), {}).ok


# ----------------------------------------------------------------------
# the retry loop, against a scripted server
# ----------------------------------------------------------------------

class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers from the server's ``script`` list, one entry per request:
    ``(status, headers_dict, body_dict)``.  Repeats the last entry when
    the script runs out."""

    def _answer(self) -> None:
        server = self.server
        entry = server.script[min(server.served, len(server.script) - 1)]
        server.served += 1
        status, headers, body = entry
        blob = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def do_GET(self):  # noqa: N802 (stdlib casing)
        self._answer()

    def do_POST(self):  # noqa: N802 (stdlib casing)
        self._answer()

    def log_message(self, fmt, *args):  # quiet
        pass


class _scripted_server:
    def __init__(self, script):
        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0),
                                         _ScriptedHandler)
        self.httpd.script = script
        self.httpd.served = 0
        self.thread = threading.Thread(target=self.httpd.serve_forever,
                                       daemon=True)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=5)

    @property
    def url(self):
        return f"http://127.0.0.1:{self.httpd.server_port}"

    @property
    def served(self):
        return self.httpd.served


def _client(url, sleeps, **kwargs):
    policy = RetryPolicy(sleep=sleeps.append, **kwargs)
    return MerlinClient(url, timeout_s=5, retry=policy)


def test_503_then_200_is_retried_once():
    script = [(503, {}, _envelope(error={"code": "pool_unavailable"})),
              (200, {}, _envelope(result={"ok": True}))]
    sleeps = []
    with _scripted_server(script) as server:
        response = _client(server.url, sleeps).request("GET", "/v1/stats")
        assert server.served == 2
    assert response.status == 200 and response.retries == 1
    assert len(sleeps) == 1


def test_429_retry_honors_the_servers_retry_after():
    script = [(429, {"Retry-After": "7"},
               _envelope(error={"code": "admission_rejected"})),
              (200, {}, _envelope(result={"ok": True}))]
    sleeps = []
    with _scripted_server(script) as server:
        response = _client(server.url, sleeps).request(
            "POST", "/v1/optimize", {"net": {}})
    assert response.status == 200 and response.retries == 1
    assert sleeps == [pytest.approx(7.0, abs=0.05)] or sleeps[0] >= 7.0


def test_400_is_returned_immediately_without_retry():
    script = [(400, {}, _envelope(error={"code": "malformed_net"}))]
    sleeps = []
    with _scripted_server(script) as server:
        response = _client(server.url, sleeps).request(
            "POST", "/v1/optimize", {"net": {}})
        assert server.served == 1
    assert response.status == 400 and response.retries == 0
    assert sleeps == []


def test_exhausted_retries_return_the_last_rejection():
    script = [(429, {"Retry-After": "1"},
               _envelope(error={"code": "admission_rejected"}))]
    sleeps = []
    with _scripted_server(script) as server:
        response = _client(server.url, sleeps,
                           max_attempts=3).request("GET", "/v1/stats")
        assert server.served == 3
    assert response.status == 429 and response.retries == 2
    assert len(sleeps) == 2  # no sleep after the final attempt


def test_unreachable_server_raises_transport_error():
    # Grab a port and close it so nothing listens there.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    sleeps = []
    client = _client(f"http://127.0.0.1:{port}", sleeps, max_attempts=2)
    with pytest.raises(ClientTransportError, match="after 2 attempts"):
        client.request("GET", "/v1/healthz")
    assert len(sleeps) == 1


def test_transport_error_is_a_resource_category():
    assert issubclass(ClientTransportError, MerlinResourceError)


def test_healthz_is_false_when_nothing_listens():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = MerlinClient(f"http://127.0.0.1:{port}",
                          retry=RetryPolicy(max_attempts=1))
    assert client.healthz() is False
