"""Tests for repro.geometry.candidates."""

import pytest

from repro.geometry.candidates import (
    CandidateStrategy,
    center_of_mass_candidates,
    full_hanan_candidates,
    generate_candidates,
    reduced_hanan_candidates,
)
from repro.geometry.hanan import hanan_points
from repro.geometry.point import Point

SOURCE = Point(0, 0)
SINKS = [Point(100, 50), Point(20, 300), Point(400, 120), Point(250, 280)]


class TestFullHanan:
    def test_matches_hanan_points(self):
        assert full_hanan_candidates(SOURCE, SINKS) == \
            hanan_points([SOURCE, *SINKS])

    def test_grows_quadratically(self):
        candidates = full_hanan_candidates(SOURCE, SINKS)
        assert len(candidates) == 25  # 5 distinct xs * 5 distinct ys


class TestReducedHanan:
    def test_linear_size(self):
        candidates = reduced_hanan_candidates(SOURCE, SINKS)
        # n + O(1), far below the 25 full Hanan points.
        assert len(SINKS) < len(candidates) <= len(SINKS) + 7

    def test_contains_all_terminals(self):
        candidates = set(reduced_hanan_candidates(SOURCE, SINKS))
        for terminal in [SOURCE, *SINKS]:
            assert terminal in candidates

    def test_candidates_lie_on_hanan_grid(self):
        grid = set(hanan_points([SOURCE, *SINKS]))
        for c in reduced_hanan_candidates(SOURCE, SINKS):
            assert c in grid

    def test_no_duplicates(self):
        candidates = reduced_hanan_candidates(SOURCE, SINKS)
        assert len(candidates) == len(set(candidates))

    def test_rejects_bad_per_sink(self):
        with pytest.raises(ValueError):
            reduced_hanan_candidates(SOURCE, SINKS, per_sink=0)


class TestCenterOfMass:
    def test_contains_terminals(self):
        candidates = set(center_of_mass_candidates(SOURCE, SINKS))
        for terminal in [SOURCE, *SINKS]:
            assert terminal in candidates

    def test_window_validation(self):
        with pytest.raises(ValueError):
            center_of_mass_candidates(SOURCE, SINKS, window=0)

    def test_single_sink(self):
        candidates = center_of_mass_candidates(SOURCE, [Point(10, 10)])
        assert Point(10, 10) in candidates


class TestGenerateCandidates:
    def test_each_strategy_produces_candidates(self):
        for strategy in CandidateStrategy:
            candidates = generate_candidates(SOURCE, SINKS, strategy=strategy)
            assert candidates

    def test_max_candidates_cap(self):
        candidates = generate_candidates(
            SOURCE, SINKS, strategy=CandidateStrategy.FULL_HANAN,
            max_candidates=6)
        assert len(candidates) <= 6

    def test_cap_keeps_no_duplicates(self):
        candidates = generate_candidates(
            SOURCE, SINKS, strategy=CandidateStrategy.FULL_HANAN,
            max_candidates=9)
        assert len(candidates) == len(set(candidates))

    def test_empty_sinks_rejected(self):
        with pytest.raises(ValueError):
            generate_candidates(SOURCE, [])

    def test_deterministic(self):
        a = generate_candidates(SOURCE, SINKS)
        b = generate_candidates(SOURCE, SINKS)
        assert a == b
