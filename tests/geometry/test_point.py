"""Tests for repro.geometry.point."""

import pytest

from repro.geometry.point import Point, centroid, manhattan, median_point


class TestPoint:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7.0

    def test_manhattan_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 4.5)
        assert a.manhattan_to(b) == b.manhattan_to(a)

    def test_manhattan_to_self_is_zero(self):
        p = Point(2.5, 7.0)
        assert p.manhattan_to(p) == 0.0

    def test_module_level_alias(self):
        assert manhattan(Point(0, 0), Point(1, 1)) == 2.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_points_are_hashable_and_equal_by_value(self):
        assert {Point(1, 2), Point(1, 2)} == {Point(1, 2)}

    def test_points_order_lexicographically(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_as_tuple(self):
        assert Point(3.0, 4.0).as_tuple() == (3.0, 4.0)


class TestCentroid:
    def test_centroid_of_one_point(self):
        assert centroid([Point(5, 7)]) == Point(5, 7)

    def test_centroid_averages(self):
        assert centroid([Point(0, 0), Point(2, 4)]) == Point(1, 2)

    def test_centroid_rejects_empty(self):
        with pytest.raises(ValueError):
            centroid([])


class TestMedianPoint:
    def test_median_odd_count(self):
        pts = [Point(0, 0), Point(10, 10), Point(2, 8)]
        assert median_point(pts) == Point(2, 8)

    def test_median_even_count_averages_middle(self):
        pts = [Point(0, 0), Point(4, 4), Point(2, 2), Point(10, 10)]
        assert median_point(pts) == Point(3, 3)

    def test_median_minimizes_manhattan_sum(self):
        pts = [Point(0, 0), Point(1, 9), Point(8, 2), Point(3, 3), Point(5, 5)]
        med = median_point(pts)
        total = sum(med.manhattan_to(p) for p in pts)
        for candidate in pts:
            assert total <= sum(candidate.manhattan_to(p) for p in pts) + 1e-9

    def test_median_rejects_empty(self):
        with pytest.raises(ValueError):
            median_point([])
