"""Tests for repro.geometry.bbox."""

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points([Point(1, 5), Point(4, 2), Point(3, 3)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (1, 2, 4, 5)

    def test_of_single_point_is_degenerate_but_valid(self):
        box = BoundingBox.of_points([Point(2, 2)])
        assert box.width == 0 and box.height == 0

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points([])

    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 4, 10)

    def test_half_perimeter(self):
        box = BoundingBox(0, 0, 3, 4)
        assert box.half_perimeter == 7.0

    def test_center(self):
        assert BoundingBox(0, 0, 4, 2).center == Point(2, 1)

    def test_contains_border_points(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(2, 2))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(2.001, 1))

    def test_expanded(self):
        box = BoundingBox(1, 1, 2, 2).expanded(1)
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (0, 0, 3, 3)
