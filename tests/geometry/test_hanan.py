"""Tests for repro.geometry.hanan."""

import pytest

from repro.geometry.hanan import hanan_grid_lines, hanan_points, snap_to_grid
from repro.geometry.point import Point


class TestHananGrid:
    def test_grid_lines_sorted_and_deduped(self):
        xs, ys = hanan_grid_lines(
            [Point(3, 1), Point(1, 1), Point(3, 5), Point(1, 5)])
        assert xs == [1, 3]
        assert ys == [1, 5]

    def test_point_count_is_product_of_lines(self):
        terminals = [Point(0, 0), Point(2, 3), Point(5, 1)]
        points = hanan_points(terminals)
        assert len(points) == 9  # 3 xs * 3 ys

    def test_terminals_are_hanan_points(self):
        terminals = [Point(0, 0), Point(2, 3), Point(5, 1)]
        points = set(hanan_points(terminals))
        for t in terminals:
            assert t in points

    def test_collinear_terminals_collapse(self):
        points = hanan_points([Point(0, 0), Point(5, 0), Point(9, 0)])
        assert len(points) == 3

    def test_empty_terminals_rejected(self):
        with pytest.raises(ValueError):
            hanan_points([])

    def test_deterministic_order(self):
        terminals = [Point(1, 1), Point(0, 0)]
        assert hanan_points(terminals) == hanan_points(terminals)


class TestSnapToGrid:
    def test_snaps_to_nearest_lines(self):
        assert snap_to_grid(Point(1.4, 2.9), [0, 3], [0, 3]) == Point(0, 3)

    def test_snap_on_grid_is_identity(self):
        assert snap_to_grid(Point(3, 0), [0, 3], [0, 3]) == Point(3, 0)

    def test_snap_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            snap_to_grid(Point(0, 0), [], [1])
