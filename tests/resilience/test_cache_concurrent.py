"""Concurrent corruption recovery on the shared disk-cache tier.

Two shards share one disk directory (the async tier's warm tier).  When
both race a torn entry at the same moment, each must detect the
corruption independently, quarantine it (best-effort: losing the
``os.replace`` race is fine), and recompute — landing on bit-identical
answers, because the engine is deterministic.  Also covers the drain
path's :meth:`ResultCache.flush`, which persists memory-tier entries
the disk tier has not seen yet.
"""

from __future__ import annotations

import os
import threading

from tests.conftest import build_net
from repro.core.config import MerlinConfig
from repro.instrument import names as metric
from repro.resilience.faults import FaultPlan, FaultSpec, use_fault_plan
from repro.service import OptimizationService, ResultCache
from repro.service.cache import QUARANTINE_DIR
from repro.tech.technology import default_technology

TECH = default_technology()
CFG = MerlinConfig.test_preset()


def _service(disk):
    return OptimizationService(tech=TECH, config=CFG, workers=1,
                               cache=ResultCache(disk_dir=disk))


def _tear_the_single_entry(disk):
    (entry,) = [f for f in os.listdir(disk) if f.endswith(".json")]
    path = os.path.join(disk, entry)
    with open(path, encoding="utf-8") as handle:
        blob = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(blob[: len(blob) // 2])  # torn mid-write
    return entry


def test_two_shards_racing_a_torn_entry_both_recover_identically(tmp_path):
    disk = str(tmp_path / "cache")
    net = build_net(3, seed=60)
    with _service(disk) as seeder:
        cold = seeder.optimize(net)
    assert cold.ok
    entry = _tear_the_single_entry(disk)

    # Two independent shards: own memory tiers (both empty), shared disk
    # tier holding only the torn entry.  The barrier releases the reads
    # together and a hang at the ``service.cache.read`` seam (which sits
    # *after* the file read) holds both shards with the torn bytes in
    # hand — so neither can win the quarantine race before the other has
    # read, and both must detect the corruption themselves.
    shards = [_service(disk), _service(disk)]
    barrier = threading.Barrier(2)
    results = [None, None]
    plan = FaultPlan(seed=9, specs=(
        FaultSpec(site="service.cache.read", kind="hang", hang_s=0.3,
                  times=2),))

    def hit(index):
        barrier.wait()
        results[index] = shards[index].optimize(net)

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(2)]
    try:
        with use_fault_plan(plan):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        stats = [shard.stats() for shard in shards]
    finally:
        for shard in shards:
            shard.close()

    # Both recomputed (neither replayed the torn bytes) and both landed
    # on the seeder's exact answer.
    for result in results:
        assert result is not None and result.ok
        assert not result.cached
        assert result.signature == cold.signature

    # Every shard detected the corruption itself; the quarantine move is
    # won by exactly one (losing the race is tolerated, not an error).
    for stat in stats:
        assert stat["cache"]["corruptions"] == 1
        assert stat["counters"][metric.RESILIENCE_CACHE_CORRUPTIONS] == 1
    quarantined = sum(s["cache"]["quarantined"] for s in stats)
    assert quarantined == 1
    assert os.listdir(os.path.join(disk, QUARANTINE_DIR)) == [entry]

    # One recompute re-wrote the entry valid: a fresh shard now gets a
    # clean warm hit.
    with _service(disk) as fresh:
        warm = fresh.optimize(net)
    assert warm.cached and warm.signature == cold.signature


def test_flush_persists_memory_entries_to_the_disk_tier(tmp_path):
    disk = str(tmp_path / "cache")
    nets = [build_net(3, seed=61 + i) for i in range(2)]
    with _service(disk) as service:
        for net in nets:
            assert service.optimize(net).ok
        # Wipe the disk tier behind the cache's back: the entries now
        # live only in memory, exactly the drain-time exposure.
        for name in os.listdir(disk):
            os.unlink(os.path.join(disk, name))
        flushed = service.cache.flush()
        assert flushed == len(nets)
        assert service.stats()["counters"][
            metric.RESILIENCE_CACHE_FLUSHED] == len(nets)
        # Entries already on disk are skipped on the next flush.
        assert service.cache.flush() == 0
    on_disk = [f for f in os.listdir(disk) if f.endswith(".json")]
    assert len(on_disk) == len(nets)

    # The flushed entries are valid: a fresh service warm-hits them.
    with _service(disk) as fresh:
        for net in nets:
            assert fresh.optimize(net).cached


def test_flush_without_a_disk_tier_is_a_noop():
    cache = ResultCache()
    with OptimizationService(tech=TECH, config=CFG, workers=1,
                             cache=cache) as service:
        assert service.optimize(build_net(3, seed=63)).ok
        assert cache.flush() == 0
