"""Circuit breaker state machine and shard supervisor, in isolation.

The breaker runs against a fake clock so open windows and half-open
probes are exact; the supervisor is driven tick-by-tick with stub
probe/restart callables (the integration with a live sharded server is
``tests/serve/test_self_healing.py``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.resilience.supervise import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
    ShardSupervisor,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(clock, **overrides) -> CircuitBreaker:
    config = BreakerConfig(**{"open_duration_s": 1.0, "jitter": 0.0,
                              **overrides})
    return CircuitBreaker(config, name="shard-0", clock=clock)


# ----------------------------------------------------------------------
# BreakerConfig validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    dict(failure_threshold=0),
    dict(error_rate_threshold=0.0),
    dict(error_rate_threshold=1.5),
    dict(window=0),
    dict(min_window=0),
    dict(min_window=9, window=8),
    dict(open_duration_s=0.0),
    dict(half_open_probes=0),
    dict(jitter=1.0),
    dict(jitter=-0.1),
])
def test_config_rejects_nonsense(bad):
    with pytest.raises(ValueError):
        BreakerConfig(**bad)


# ----------------------------------------------------------------------
# State machine
# ----------------------------------------------------------------------

def test_consecutive_failures_trip_the_breaker_open():
    clock = FakeClock()
    breaker = _breaker(clock, failure_threshold=3)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == STATE_CLOSED and breaker.allow()
    breaker.record_failure()  # third consecutive failure trips it
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()
    assert breaker.opens == 1


def test_a_success_resets_the_consecutive_count():
    clock = FakeClock()
    breaker = _breaker(clock, failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED  # never 3 in a row


def test_error_rate_trips_once_the_window_is_warm():
    clock = FakeClock()
    # High consecutive threshold so only the rate path can trip it.
    breaker = _breaker(clock, failure_threshold=100, window=8,
                       min_window=8, error_rate_threshold=0.5)
    # Alternate success/failure: 50% error rate, window fills at 8.
    for i in range(7):
        (breaker.record_failure if i % 2 else breaker.record_success)()
    assert breaker.state == STATE_CLOSED  # only 7 outcomes: under min
    breaker.record_failure()  # 8th outcome: 4/8 = 0.5 >= threshold
    assert breaker.state == STATE_OPEN


def test_open_breaker_recovers_through_half_open():
    clock = FakeClock()
    breaker = _breaker(clock, failure_threshold=1, open_duration_s=1.0)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()  # clock has not moved
    clock.advance(1.01)
    assert breaker.allow()  # the expired deadline flips to half-open
    assert breaker.state == STATE_HALF_OPEN
    assert not breaker.allow()  # trial budget (1 probe) is spent
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()


def test_half_open_failure_reopens_with_a_fresh_deadline():
    clock = FakeClock()
    breaker = _breaker(clock, failure_threshold=1, open_duration_s=1.0)
    breaker.record_failure()
    clock.advance(1.01)
    assert breaker.allow()
    breaker.record_failure()  # the trial call failed
    assert breaker.state == STATE_OPEN
    assert breaker.opens == 2
    assert not breaker.allow()  # new deadline, not the stale one
    clock.advance(1.01)
    assert breaker.allow()


def test_jitter_is_seeded_and_deterministic():
    def openings(seed):
        clock = FakeClock()
        config = BreakerConfig(failure_threshold=1, open_duration_s=1.0,
                               jitter=0.25, seed=seed)
        breaker = CircuitBreaker(config, name="shard-0", clock=clock)
        stamps = []
        for _ in range(4):
            breaker.record_failure()
            stamps.append(breaker.snapshot()["transitions"][-1]["at"])
            clock.advance(2.0)
            assert breaker.allow()
        return stamps

    assert openings(7) == openings(7)  # same seed, same jitter schedule
    # And the jitter actually varies across re-opens (not a constant).
    clock = FakeClock()
    breaker = _breaker(clock, failure_threshold=1, jitter=0.25)
    deadlines = set()
    for _ in range(4):
        breaker.record_failure()
        deadlines.add(breaker._opened_until - clock.now)
        clock.advance(2.0)
        breaker.allow()
    assert len(deadlines) > 1
    assert all(1.0 <= d < 1.25 for d in deadlines)


def test_snapshot_and_states_seen_shape():
    clock = FakeClock()
    breaker = _breaker(clock, failure_threshold=1)
    breaker.record_failure()
    clock.advance(1.01)
    breaker.allow()
    breaker.record_success()
    snap = breaker.snapshot()
    assert snap["name"] == "shard-0"
    assert snap["state"] == STATE_CLOSED
    assert snap["opens"] == 1
    assert snap["consecutive_failures"] == 0
    assert snap["window"] == 0  # cleared on close
    assert snap["error_rate"] == 0.0
    assert [t["to"] for t in snap["transitions"]] == [
        STATE_OPEN, STATE_HALF_OPEN, STATE_CLOSED]
    assert breaker.states_seen() == [
        STATE_CLOSED, STATE_OPEN, STATE_HALF_OPEN, STATE_CLOSED]


# ----------------------------------------------------------------------
# ShardSupervisor (driven tick-by-tick, no event-loop timing)
# ----------------------------------------------------------------------

class StubShards:
    """Probe/restart callables over a mutable per-shard health map."""

    def __init__(self, count: int) -> None:
        self.healthy = [True] * count
        self.probed: list = []
        self.restarted: list = []

    async def probe(self, index: int) -> None:
        self.probed.append(index)
        if not self.healthy[index]:
            raise RuntimeError(f"shard {index} is down")

    async def restart(self, index: int) -> None:
        self.restarted.append(index)


def _supervisor(shards: StubShards, breakers, **kwargs):
    kwargs.setdefault("backoff_base_s", 0.0)
    kwargs.setdefault("backoff_max_s", 0.0)
    return ShardSupervisor(breakers, probe=shards.probe,
                           restart=shards.restart, **kwargs)


def test_supervisor_probes_and_recovers_a_downed_shard():
    clock = FakeClock()
    shards = StubShards(2)
    breakers = [_breaker(clock, failure_threshold=2,
                         open_duration_s=1.0) for _ in range(2)]
    supervisor = _supervisor(shards, breakers)

    async def scenario():
        shards.healthy[1] = False
        await supervisor.tick()  # probe both; shard 1 fails (1/2)
        await supervisor.tick()  # second failure trips breaker 1
        assert breakers[1].state == STATE_OPEN
        await supervisor.tick()  # open: restart fires, probe skipped
        assert shards.restarted == [1]
        shards.healthy[1] = True
        clock.advance(1.5)  # past the open window
        await supervisor.tick()  # half-open probe succeeds -> closed
        assert breakers[1].state == STATE_CLOSED

    asyncio.run(scenario())
    assert breakers[0].state == STATE_CLOSED
    assert supervisor.probes >= 6
    assert supervisor.probe_failures == 2
    assert supervisor.restarts == 1
    stats = supervisor.stats()
    assert stats["restarts"] == 1 and stats["running"] is False


def test_supervisor_restarts_once_per_breaker_generation():
    clock = FakeClock()
    shards = StubShards(1)
    breakers = [_breaker(clock, failure_threshold=1, open_duration_s=1.0)]
    supervisor = _supervisor(shards, breakers)

    async def scenario():
        shards.healthy[0] = False
        await supervisor.tick()  # failure trips (generation 1)
        await supervisor.tick()  # restart for generation 1
        await supervisor.tick()  # still open: no second restart
        assert shards.restarted == [0]
        clock.advance(1.5)
        await supervisor.tick()  # half-open probe fails -> generation 2
        await supervisor.tick()  # restart for generation 2
        assert shards.restarted == [0, 0]

    asyncio.run(scenario())
    assert supervisor.restarts == 2


def test_supervisor_counters_reach_the_record_sink():
    clock = FakeClock()
    recorded = []
    shards = StubShards(1)
    breakers = [_breaker(clock, failure_threshold=1)]
    supervisor = _supervisor(
        shards, breakers,
        record=lambda name, value=1: recorded.append(name))

    async def scenario():
        await supervisor.tick()
        shards.healthy[0] = False
        await supervisor.tick()

    asyncio.run(scenario())
    assert "serve.supervisor.probes" in recorded
    assert "serve.supervisor.probe_failures" in recorded


def test_supervisor_launch_and_stop_lifecycle():
    clock = FakeClock()
    shards = StubShards(1)
    supervisor = _supervisor(shards, [_breaker(clock)], interval_s=0.01)

    async def scenario():
        supervisor.launch()
        assert supervisor.running
        for _ in range(200):
            await asyncio.sleep(0.005)
            if shards.probed:
                break
        await supervisor.stop()
        assert not supervisor.running

    asyncio.run(scenario())
    assert shards.probed  # the background loop actually ran ticks


def test_supervisor_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        ShardSupervisor([], probe=None, restart=None, interval_s=0.0)
