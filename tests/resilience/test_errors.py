"""The error taxonomy: categories, compatibility, wire round-trips."""

from __future__ import annotations

import pickle

import pytest

from repro.resilience.errors import (
    CATEGORIES,
    BudgetExhaustedError,
    CacheCorruptionError,
    ErrorRecord,
    FaultInjected,
    JobTimeoutError,
    MalformedNetError,
    MerlinError,
    MerlinInputError,
    MerlinInternalError,
    MerlinResourceError,
    PoolUnavailableError,
    WorkerCrashError,
    classify,
    error_from_record,
)


def test_category_bases_subclass_the_matching_builtin():
    # The structural compatibility contract: pre-taxonomy call sites
    # catching ValueError/RuntimeError keep working.
    assert issubclass(MerlinInputError, ValueError)
    assert issubclass(MerlinResourceError, RuntimeError)
    assert issubclass(MerlinInternalError, RuntimeError)
    for cls in (MerlinInputError, MerlinResourceError, MerlinInternalError):
        assert issubclass(cls, MerlinError)


@pytest.mark.parametrize("cls,category", [
    (MalformedNetError, "input"),
    (JobTimeoutError, "resource"),
    (WorkerCrashError, "resource"),
    (PoolUnavailableError, "resource"),
    (BudgetExhaustedError, "resource"),
    (CacheCorruptionError, "internal"),
    (FaultInjected, "internal"),
])
def test_concrete_kinds_carry_their_category(cls, category):
    exc = cls("boom", stage="somewhere")
    assert exc.category == category
    assert exc.record.kind == cls.__name__
    assert exc.record.category == category
    assert exc.record.stage == "somewhere"
    assert exc.record.message == "boom"


def test_record_roundtrips_through_dict():
    record = ErrorRecord(kind="JobTimeoutError", category="resource",
                         stage="pool", message="too slow", degraded=True)
    assert ErrorRecord.from_dict(record.to_dict()) == record


def test_record_rejects_unknown_category():
    with pytest.raises(MerlinInputError):
        ErrorRecord(kind="X", category="cosmic", stage="", message="")


def test_classify_sorts_builtins_by_conventional_meaning():
    assert classify(ValueError("v")).category == "input"
    assert classify(KeyError("k")).category == "input"
    assert classify(TypeError("t")).category == "input"
    assert classify(MemoryError()).category == "resource"
    assert classify(OSError("disk")).category == "resource"
    assert classify(ZeroDivisionError()).category == "internal"
    assert classify(AssertionError("inv")).category == "internal"


def test_classify_keeps_merlin_error_identity_and_stage():
    record = classify(JobTimeoutError("slow", stage="pool"), stage="outer")
    assert record.kind == "JobTimeoutError"
    assert record.category == "resource"
    assert record.stage == "pool"  # the exception's own stage wins
    record = classify(JobTimeoutError("slow"), stage="outer")
    assert record.stage == "outer"  # argument fills a missing stage


def test_error_from_record_reconstructs_known_kinds():
    original = WorkerCrashError("worker 3 died", stage="pool")
    rebuilt = error_from_record(original.record)
    assert type(rebuilt) is WorkerCrashError
    assert str(rebuilt) == "worker 3 died"
    assert rebuilt.stage == "pool"


def test_error_from_record_falls_back_to_category_base():
    record = ErrorRecord(kind="FutureKindFromNewerService",
                         category="resource", stage="pool", message="m")
    rebuilt = error_from_record(record)
    assert type(rebuilt) is MerlinResourceError
    # A kind whose registered category disagrees with the record's also
    # falls back (the record's category is authoritative on the wire).
    record = ErrorRecord(kind="JobTimeoutError", category="input",
                         stage="", message="m")
    assert type(error_from_record(record)) is MerlinInputError


def test_records_pickle_across_process_boundaries():
    record = classify(BudgetExhaustedError("out of ops", stage="budget"))
    assert pickle.loads(pickle.dumps(record)) == record


def test_categories_tuple_is_the_public_contract():
    assert CATEGORIES == ("input", "resource", "internal")
