"""The fault-injection framework: specs, windows, determinism, env."""

from __future__ import annotations

import json

import pytest

from repro.resilience.errors import FaultInjected, MerlinInputError
from repro.resilience.faults import (
    CORRUPTION_MARKER,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    corrupt,
    fault_point,
    plan_from_env,
    use_fault_plan,
)


def _plan(*specs, seed=0):
    return FaultPlan(seed=seed, specs=tuple(specs))


def test_no_plan_is_a_transparent_noop():
    assert active_fault_plan() is None
    payload = {"x": 1}
    assert fault_point("service.job", data=payload) is payload


def test_error_fault_raises_fault_injected_with_site_as_stage():
    with use_fault_plan(_plan(FaultSpec(site="service.job", kind="error"))):
        with pytest.raises(FaultInjected) as excinfo:
            fault_point("service.job")
    assert excinfo.value.stage == "service.job"
    assert excinfo.value.category == "internal"


def test_times_window_fires_exactly_n_times():
    spec = FaultSpec(site="s", kind="error", times=2, after=1)
    with use_fault_plan(_plan(spec)):
        fault_point("s")  # hit 0: before the window
        for _ in range(2):  # hits 1, 2: inside
            with pytest.raises(FaultInjected):
                fault_point("s")
        fault_point("s")  # hit 3: window exhausted
        fault_point("s")


def test_site_glob_and_key_match_restrict_firing():
    spec = FaultSpec(site="service.cache.*", kind="error", times=None,
                     match="poison")
    with use_fault_plan(_plan(spec)):
        fault_point("service.job", key="poison")  # site mismatch
        fault_point("service.cache.read", key="clean")  # key mismatch
        with pytest.raises(FaultInjected):
            fault_point("service.cache.read", key="poison-net")


def test_probability_draws_are_deterministic_per_seed():
    spec = FaultSpec(site="s", kind="error", times=None, probability=0.5)

    def fire_pattern(seed):
        fired = []
        with use_fault_plan(_plan(spec, seed=seed)):
            for _ in range(32):
                try:
                    fault_point("s")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
        return fired

    first = fire_pattern(7)
    assert fire_pattern(7) == first  # same seed -> same pattern
    assert fire_pattern(8) != first  # different seed -> different pattern
    assert any(first) and not all(first)  # p=0.5 actually thins


def test_corrupt_fault_mangles_data_through_the_point():
    spec = FaultSpec(site="s", kind="corrupt", times=None)
    with use_fault_plan(_plan(spec)):
        mangled = fault_point("s", data='{"version": 2, "payload": {}}')
    assert CORRUPTION_MARKER in mangled
    with pytest.raises(json.JSONDecodeError):
        json.loads(mangled)


def test_corrupt_shapes():
    assert CORRUPTION_MARKER.encode("ascii") in corrupt(b"0123456789")
    mangled = corrupt({"a": 1, "b": 2})
    assert "__corrupted__" in mangled and "a" not in mangled
    assert corrupt(1234) == CORRUPTION_MARKER


def test_crash_in_parent_process_downgrades_to_error():
    # A chaos plan must not be able to take down the service process
    # itself; the hard exit is reserved for pool workers.
    spec = FaultSpec(site="s", kind="crash")
    with use_fault_plan(_plan(spec)):
        with pytest.raises(FaultInjected, match="downgraded"):
            fault_point("s")


def test_hang_fault_sleeps_then_passes_data_through():
    spec = FaultSpec(site="s", kind="hang", hang_s=0.0, times=None)
    with use_fault_plan(_plan(spec)):
        assert fault_point("s", data="ok") == "ok"


def test_ledger_counts_hits_across_counter_resets(tmp_path):
    # The ledger file is what keeps times= windows exact when a crash
    # kills the in-memory counters; a reset here simulates that.
    ledger = str(tmp_path / "hits.ledger")
    spec = FaultSpec(site="s", kind="error", times=1, ledger=ledger)
    with use_fault_plan(_plan(spec)):
        with pytest.raises(FaultInjected):
            fault_point("s")
    with use_fault_plan(_plan(spec)):  # fresh in-memory state
        fault_point("s")  # ledger remembers: the window already fired


def test_plan_roundtrips_through_json():
    # Synthetic sites: this exercises JSON round-tripping, not matching.
    plan = _plan(FaultSpec(site="a.*", kind="hang", hang_s=0.1),  # staticcheck: ignore[REG-UNKNOWN-SITE]
                 FaultSpec(site="b", kind="error", times=None, after=2),  # staticcheck: ignore[REG-UNKNOWN-SITE]
                 seed=42)
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_env_plan_parses_inline_and_at_file(tmp_path):
    plan = _plan(FaultSpec(site="s", kind="error"), seed=3)
    assert plan_from_env(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    assert plan_from_env(f"@{path}") == plan
    assert plan_from_env("") is None
    with pytest.raises(MerlinInputError):
        plan_from_env("not json")
    with pytest.raises(MerlinInputError):
        plan_from_env(f"@{tmp_path / 'missing.json'}")


def test_spec_validation_rejects_nonsense():
    with pytest.raises(MerlinInputError):
        FaultSpec(site="s", kind="explode")
    with pytest.raises(MerlinInputError):
        FaultSpec(site="s", kind="error", probability=1.5)
    with pytest.raises(MerlinInputError):
        FaultSpec(site="s", kind="error", times=-1)
    with pytest.raises(MerlinInputError):
        FaultSpec.from_dict({"site": "s", "kind": "error", "bogus": 1})
    with pytest.raises(MerlinInputError):
        FaultSpec.from_dict({"site": "s"})


def test_use_fault_plan_restores_previous_plan():
    outer = _plan(FaultSpec(site="x", kind="error"))  # staticcheck: ignore[REG-UNKNOWN-SITE]
    with use_fault_plan(outer):
        with use_fault_plan(None):
            assert active_fault_plan() is None
        assert active_fault_plan() is outer
    assert active_fault_plan() is None
