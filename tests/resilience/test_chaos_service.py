"""Chaos suite: injected faults against the full service stack.

The acceptance scenarios of the resilience work:

* a **killed worker** (hard ``os._exit`` mid-pool) must not lose or
  corrupt any job — the pool rebuilds and every result matches the
  clean run bit for bit;
* a **corrupted disk-cache entry** (torn file or injected read
  corruption) must be quarantined and recomputed, never replayed;
* a **hung job** must surface as a resource-category timeout;
* an **exhausted budget** must yield a valid ``degraded`` tree whose
  signature matches the buffered-star fallback — and must not be
  cached;
* with **no plan installed** the whole framework must be invisible.

Everything runs under fixed fault seeds and is asserted twice where
determinism is the claim.  Pool-path tests need fork (the plan and the
patched module state reach workers by inheritance).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from tests.conftest import build_net
from repro.baselines.star import buffered_star
from repro.core.config import MerlinConfig
from repro.instrument import names as metric
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    use_fault_plan,
)
from repro.routing.export import tree_signature
from repro.routing.validate import validate_tree
from repro.service import OptimizationService, ResultCache
from repro.service.cache import QUARANTINE_DIR
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()

FORK = multiprocessing.get_start_method() == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="pool-path chaos relies on fork inheritance")


def _service(**kwargs):
    kwargs.setdefault("tech", TECH)
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("cache", ResultCache())
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("pool_retry_backoff_s", 0.0)
    return OptimizationService(**kwargs)


def _nets(n=3):
    return [build_net(3, seed=40 + i, name=f"chaos{i}") for i in range(n)]


def _clean_signatures(nets):
    with _service() as service:
        return [service.optimize(net).signature for net in nets]


# ----------------------------------------------------------------------
# Killed worker
# ----------------------------------------------------------------------

@needs_fork
def test_killed_worker_results_match_the_clean_run(tmp_path):
    nets = _nets()
    clean = _clean_signatures(nets)

    def chaos_run(ledger):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(site="service.worker", kind="crash", times=1,
                      ledger=ledger),
        ))
        with use_fault_plan(plan):
            with _service(workers=2) as service:
                results = service.optimize_many(nets)
                stats = service.stats()
        return results, stats

    results, stats = chaos_run(str(tmp_path / "crash1.ledger"))
    assert [r.ok for r in results] == [True, True, True]
    assert [r.signature for r in results] == clean
    assert not any(r.degraded for r in results)
    for r in results:
        validate_tree(r.tree)
    assert stats["counters"][metric.RESILIENCE_POOL_REBUILDS] >= 1
    assert stats["counters"][metric.RESILIENCE_JOB_RETRIES] >= 1

    # Same plan, fresh ledger: deterministic under the fixed fault seed.
    again, stats2 = chaos_run(str(tmp_path / "crash2.ledger"))
    assert [r.signature for r in again] == clean
    assert (stats2["counters"][metric.RESILIENCE_POOL_REBUILDS]
            == stats["counters"][metric.RESILIENCE_POOL_REBUILDS])


@needs_fork
def test_repeated_crashes_fall_back_to_inline_and_still_answer(tmp_path):
    # Every pool attempt dies: after pool_retries rebuilds the service
    # must finish the jobs serially inline rather than failing them.
    nets = _nets(2)
    clean = _clean_signatures(nets)
    plan = FaultPlan(seed=1, specs=(
        FaultSpec(site="service.worker", kind="crash", times=None,
                  ledger=str(tmp_path / "crash.ledger")),
    ))
    with use_fault_plan(plan):
        with _service(workers=2, pool_retries=1) as service:
            results = service.optimize_many(nets)
            stats = service.stats()
    assert [r.ok for r in results] == [True, True]
    assert [r.signature for r in results] == clean
    assert stats["counters"][metric.RESILIENCE_POOL_REBUILDS] >= 2


# ----------------------------------------------------------------------
# Corrupted cache entries
# ----------------------------------------------------------------------

def test_torn_disk_entry_is_quarantined_and_recomputed(tmp_path):
    disk = str(tmp_path / "cache")
    net = build_net(3, seed=50)
    with _service(cache=ResultCache(disk_dir=disk)) as service:
        cold = service.optimize(net)
        (entry,) = [f for f in os.listdir(disk) if f.endswith(".json")]
        path = os.path.join(disk, entry)
        blob = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(blob[: len(blob) // 2])  # torn mid-write
        service.cache.clear()  # force the next get to the disk tier

        warm = service.optimize(net)
        stats = service.stats()

    assert warm.ok and warm.signature == cold.signature
    assert not warm.cached  # the corrupt entry was NOT replayed
    assert stats["cache"]["corruptions"] == 1
    assert stats["cache"]["quarantined"] == 1
    assert stats["counters"][metric.RESILIENCE_CACHE_CORRUPTIONS] == 1
    assert stats["counters"][metric.RESILIENCE_CACHE_QUARANTINED] == 1
    quarantined = os.listdir(os.path.join(disk, QUARANTINE_DIR))
    assert quarantined == [entry]
    # The recompute overwrote the entry with a valid one.
    fresh = json.load(open(os.path.join(disk, entry), encoding="utf-8"))
    assert fresh["version"] == 2


def test_injected_read_corruption_behaves_like_a_torn_file(tmp_path):
    disk = str(tmp_path / "cache")
    net = build_net(3, seed=51)
    plan = FaultPlan(seed=2, specs=(
        FaultSpec(site="service.cache.read", kind="corrupt", times=1),
    ))
    with _service(cache=ResultCache(disk_dir=disk)) as service:
        cold = service.optimize(net)
        service.cache.clear()
        with use_fault_plan(plan):
            warm = service.optimize(net)
        stats = service.stats()
    assert warm.ok and warm.signature == cold.signature
    assert stats["cache"]["corruptions"] == 1
    assert stats["counters"][metric.RESILIENCE_CACHE_CORRUPTIONS] == 1


def test_injected_write_corruption_never_reaches_a_reader(tmp_path):
    disk = str(tmp_path / "cache")
    net = build_net(3, seed=52)
    plan = FaultPlan(seed=3, specs=(
        FaultSpec(site="service.cache.write", kind="corrupt", times=1),
    ))
    with _service(cache=ResultCache(disk_dir=disk)) as service:
        with use_fault_plan(plan):
            cold = service.optimize(net)  # the disk write was mangled
        service.cache.clear()
        warm = service.optimize(net)  # detects, quarantines, recomputes
        stats = service.stats()
    assert warm.ok and warm.signature == cold.signature
    assert stats["cache"]["corruptions"] == 1


# ----------------------------------------------------------------------
# Hangs and timeouts
# ----------------------------------------------------------------------

@needs_fork
def test_hung_worker_surfaces_as_a_resource_timeout():
    plan = FaultPlan(seed=4, specs=(
        FaultSpec(site="service.worker", kind="hang", hang_s=2.0,
                  times=None),
    ))
    net = build_net(3, seed=53)
    with use_fault_plan(plan):
        with _service(workers=2) as service:
            result = service.optimize(net, timeout_s=0.1)
            stats = service.stats()
    assert not result.ok
    assert result.error_kind == "JobTimeoutError"
    assert result.error_category == "resource"
    assert result.error_stage == "pool"
    assert "timed out" in result.error
    assert stats["counters"][metric.SERVICE_JOB_TIMEOUTS] == 1


# ----------------------------------------------------------------------
# Budget exhaustion through the service
# ----------------------------------------------------------------------

def test_exhausted_budget_degrades_to_star_and_is_never_cached():
    net = build_net(3, seed=54)
    star_sig = tree_signature(buffered_star(net, TECH))
    with _service(budget_ops=1) as service:
        first = service.optimize(net)
        second = service.optimize(net)
        stats = service.stats()
    for result in (first, second):
        assert result.ok
        assert result.degraded
        assert result.signature == star_sig
        assert result.degradation["rung"] == "buffered_star"
        assert "budget exhausted" in result.degradation["reason"]
        assert not result.cached  # degraded answers must not be cached
        validate_tree(result.tree)
    assert stats["cache"]["size"] == 0
    assert stats["counters"][metric.RESILIENCE_DEGRADED] == 2
    assert stats["counters"][metric.RESILIENCE_BUDGET_EXHAUSTED] >= 2
    assert stats["budget_ops"] == 1
    # The degradation detail survives the wire format too.
    body = first.to_dict()
    assert body["degraded"] is True
    assert body["degradation"]["attempts"]


def test_degraded_and_full_quality_answers_do_not_cross_pollinate():
    net = build_net(3, seed=55)
    cache = ResultCache()
    with _service(cache=cache) as full_service:
        full = full_service.optimize(net)
    with _service(cache=cache, budget_ops=1) as tight_service:
        degraded = tight_service.optimize(net)
    assert degraded.cached and degraded.signature == full.signature, (
        "a full-quality cache entry SHOULD satisfy a budgeted request — "
        "the budget is not part of the problem")
    assert not degraded.degraded


# ----------------------------------------------------------------------
# The no-fault golden path
# ----------------------------------------------------------------------

def test_no_plan_no_budget_results_are_untouched():
    nets = _nets()
    baseline = _clean_signatures(nets)
    with _service() as service:
        results = service.optimize_many(nets)
        stats = service.stats()
    assert [r.signature for r in results] == baseline
    assert not any(r.degraded for r in results)
    counters = stats["counters"]
    for name in (metric.RESILIENCE_FAULTS_INJECTED,
                 metric.RESILIENCE_POOL_REBUILDS,
                 metric.RESILIENCE_DEGRADED,
                 metric.RESILIENCE_CACHE_CORRUPTIONS):
        assert counters.get(name, 0) == 0


# ----------------------------------------------------------------------
# Structured per-job error records
# ----------------------------------------------------------------------

def _input_poison_runner(job):
    from repro.resilience.errors import MalformedNetError
    from repro.service import engine as engine_mod

    if "poison" in job.net.name:
        raise MalformedNetError("sink #0: load must be non-negative",
                                stage="net")
    return engine_mod._run_job(job)


def test_optimize_many_reports_structured_records_per_job():
    from repro.service import engine as engine_mod

    good = build_net(3, seed=56, name="fine")
    bad = build_net(3, seed=57, name="poison")
    original = engine_mod._JOB_RUNNER
    engine_mod._JOB_RUNNER = _input_poison_runner
    try:
        with _service() as service:
            fine, poisoned = service.optimize_many([good, bad])
    finally:
        engine_mod._JOB_RUNNER = original
    assert fine.ok and not fine.degraded
    assert not poisoned.ok
    assert poisoned.error_kind == "MalformedNetError"
    assert poisoned.error_category == "input"
    assert poisoned.error_stage == "net"
    detail = poisoned.to_dict()["error_detail"]
    assert detail["kind"] == "MalformedNetError"
    assert detail["category"] == "input"
