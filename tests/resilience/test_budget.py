"""ComputeBudget semantics and its threading through the engine."""

from __future__ import annotations

import pytest

from tests.conftest import build_net
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.resilience.budget import ComputeBudget
from repro.resilience.errors import BudgetExhaustedError, MerlinInputError
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()


def test_inactive_budget_never_trips():
    budget = ComputeBudget()
    assert not budget.active
    for _ in range(10_000):
        budget.charge()
    assert budget.ops == 10_000


def test_ops_cap_trips_exactly_past_the_cap():
    budget = ComputeBudget(max_ops=3)
    budget.charge(3)
    with pytest.raises(BudgetExhaustedError) as excinfo:
        budget.charge()
    assert "4 ops" in str(excinfo.value)
    assert excinfo.value.category == "resource"


def test_deadline_trips_on_elapsed_wall_clock():
    budget = ComputeBudget(deadline_s=0.0)
    budget.start()
    with pytest.raises(BudgetExhaustedError, match="deadline"):
        # Any nonzero elapsed time exceeds a zero deadline.
        budget.charge()


def test_negative_limits_are_input_errors():
    with pytest.raises(MerlinInputError):
        ComputeBudget(max_ops=-1)
    with pytest.raises(MerlinInputError):
        ComputeBudget(deadline_s=-0.5)


def test_child_gets_fresh_ops_but_shares_the_deadline_anchor():
    parent = ComputeBudget(max_ops=5, deadline_s=60.0)
    parent.start()
    parent.charge(5)
    child = parent.child()
    assert child.ops == 0  # fresh ops allowance
    assert child.max_ops == 5
    assert child.started_at == parent.started_at  # same absolute deadline
    child.charge(5)  # the child's own cap applies to its own work
    with pytest.raises(BudgetExhaustedError):
        child.charge()


def test_snapshot_is_plain_data():
    budget = ComputeBudget(max_ops=7)
    budget.charge(2)
    snap = budget.snapshot()
    assert snap["max_ops"] == 7 and snap["ops"] == 2
    assert set(snap) == {"max_ops", "deadline_s", "ops", "elapsed_s"}


# -- engine integration ------------------------------------------------


def test_merlin_without_budget_is_unchanged():
    net = build_net(4, seed=11)
    baseline = merlin(net, TECH, config=CONFIG)
    with_null = merlin(net, TECH, config=CONFIG.with_(budget=None))
    assert baseline.tree.signature_data() if hasattr(
        baseline.tree, "signature_data") else True
    assert baseline.cost_trace == with_null.cost_trace


def test_merlin_raises_budget_exhausted_under_tiny_cap():
    net = build_net(4, seed=11)
    with pytest.raises(BudgetExhaustedError):
        merlin(net, TECH,
               config=CONFIG.with_(budget=ComputeBudget(max_ops=1)))


def test_ops_exhaustion_is_deterministic():
    # The deterministic-degradation contract: the same cap trips after
    # exactly the same number of charged units, every run.
    net = build_net(4, seed=11)

    def ops_at_failure(cap):
        budget = ComputeBudget(max_ops=cap)
        with pytest.raises(BudgetExhaustedError):
            merlin(net, TECH, config=CONFIG.with_(budget=budget))
        return budget.ops

    assert ops_at_failure(10) == ops_at_failure(10) == 11


def test_generous_budget_changes_nothing():
    net = build_net(4, seed=11)
    budget = ComputeBudget(max_ops=10_000_000)
    bounded = merlin(net, TECH, config=CONFIG.with_(budget=budget))
    unbounded = merlin(net, TECH, config=CONFIG)
    assert bounded.cost_trace == unbounded.cost_trace
    assert bounded.iterations == unbounded.iterations
    assert budget.ops > 0  # the engine really did charge it
