"""The degradation ladder: rung selection, budgets, determinism."""

from __future__ import annotations

import pytest

from tests.conftest import build_net
from repro.baselines.star import buffered_star
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.instrument import Recorder, names as metric, use_recorder
from repro.resilience.budget import ComputeBudget
from repro.resilience.degrade import (
    LADDER_RUNGS,
    RUNG_COARSE,
    RUNG_MULTI_START,
    RUNG_SINGLE_START,
    RUNG_STAR,
    coarsened_config,
    run_with_ladder,
)
from repro.resilience.errors import MerlinInputError
from repro.routing.export import tree_signature
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()
NET = build_net(4, seed=17)


def test_unbudgeted_ladder_is_bit_identical_to_plain_merlin():
    outcome = run_with_ladder(NET, TECH, config=CONFIG)
    direct = merlin(NET, TECH, config=CONFIG)
    assert outcome.rung == RUNG_SINGLE_START
    assert not outcome.degraded and outcome.reason is None
    assert outcome.signature == tree_signature(direct.tree)
    assert outcome.cost_trace == direct.cost_trace
    assert outcome.iterations == direct.iterations


def test_seeds_enable_the_multi_start_top_rung():
    outcome = run_with_ladder(NET, TECH, config=CONFIG, seeds=[None, 1])
    assert outcome.rung == RUNG_MULTI_START
    assert not outcome.degraded
    # A single seed is not a multi-start; the ladder skips the rung.
    outcome = run_with_ladder(NET, TECH, config=CONFIG, seeds=[None])
    assert outcome.rung == RUNG_SINGLE_START


def test_exhausted_budget_degrades_to_the_star_floor():
    budget = ComputeBudget(max_ops=1)
    outcome = run_with_ladder(NET, TECH, config=CONFIG, budget=budget)
    assert outcome.degraded
    assert outcome.rung == RUNG_STAR
    assert outcome.signature == tree_signature(buffered_star(NET, TECH))
    validate_tree(outcome.tree)
    # Both DP rungs are in the attempt log, in ladder order.
    assert [a["rung"] for a in outcome.attempts] == [
        RUNG_SINGLE_START, RUNG_COARSE]
    assert all(a["error"]["kind"] == "BudgetExhaustedError"
               for a in outcome.attempts)
    assert RUNG_SINGLE_START in outcome.reason
    assert RUNG_COARSE in outcome.reason


def test_degraded_outcome_is_deterministic_under_a_fixed_cap():
    def run(cap):
        outcome = run_with_ladder(NET, TECH, config=CONFIG,
                                  budget=ComputeBudget(max_ops=cap))
        return (outcome.rung, outcome.degraded, outcome.signature,
                outcome.reason)

    assert run(1) == run(1)
    assert run(25) == run(25)


def test_intermediate_cap_lands_on_the_coarse_rung():
    # Measure what each DP rung actually costs, then pick a cap that
    # starves single_start but feeds coarse_curves — the mid-ladder
    # landing must follow deterministically.  The fast preset (not the
    # already-minimal test preset) leaves coarsening room to bite.
    config = MerlinConfig()
    full_budget = ComputeBudget(max_ops=None)
    merlin(NET, TECH, config=config.with_(budget=full_budget))
    coarse_budget = ComputeBudget(max_ops=None)
    merlin(NET, TECH,
           config=coarsened_config(config).with_(budget=coarse_budget))
    assert coarse_budget.ops < full_budget.ops, (
        "coarsening must shrink the op count for this test to mean "
        "anything")
    cap = coarse_budget.ops  # charge() trips strictly past the cap
    outcome = run_with_ladder(NET, TECH, config=config,
                              budget=ComputeBudget(max_ops=cap))
    assert outcome.rung == RUNG_COARSE
    assert outcome.degraded
    assert [a["rung"] for a in outcome.attempts] == [RUNG_SINGLE_START]
    validate_tree(outcome.tree)


def test_input_errors_propagate_instead_of_degrading():
    with pytest.raises(MerlinInputError, match="workers"):
        run_with_ladder(NET, TECH, config=CONFIG, seeds=[None, 1],
                        workers=-1)


def test_degradation_is_instrumented():
    recorder = Recorder()
    with use_recorder(recorder):
        run_with_ladder(NET, TECH, config=CONFIG,
                        budget=ComputeBudget(max_ops=1))
    report = recorder.report()
    assert report["counters"][metric.RESILIENCE_DEGRADED] == 1
    assert report["counters"][metric.RESILIENCE_BUDGET_EXHAUSTED] == 2
    events = report["events"].get(metric.EVENT_DEGRADATION, [])
    assert len(events) == 1
    assert events[0]["rung"] == RUNG_STAR


def test_coarsened_config_cuts_every_pseudo_polynomial_knob():
    coarse = coarsened_config(CONFIG)
    assert coarse.curve.load_step == CONFIG.curve.load_step * 4
    assert coarse.curve.area_step == CONFIG.curve.area_step * 4
    assert coarse.curve.max_solutions <= 4
    assert coarse.max_iterations == 1
    assert coarse.alpha <= 3
    assert coarse.max_candidates <= 5
    assert coarse.library_subset <= 3
    assert len(coarse.wire_width_options) == 1


def test_ladder_rung_names_are_stable_api():
    assert LADDER_RUNGS == ("multi_start", "single_start", "coarse_curves",
                            "buffered_star")
