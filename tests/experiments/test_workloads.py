"""Tests for the experiment workload generators (nets and circuits)."""

import math

import pytest

from repro import units
from repro.experiments.circuits import TABLE2_CIRCUIT_SHAPES, table2_circuits
from repro.experiments.nets import (
    TABLE1_NET_SPECS,
    make_experiment_net,
    table1_nets,
)


class TestTable1Nets:
    def test_eighteen_nets_with_paper_names(self):
        nets = table1_nets()
        assert len(nets) == 18
        assert nets[0].circuit == "C432" and nets[0].name == "net1"
        assert nets[-1].circuit == "C7552" and nets[-1].name == "net18"

    def test_quick_subset(self):
        assert len(table1_nets(quick=True)) == 6

    def test_sink_counts_scale_with_paper(self):
        """Scaled counts preserve the paper's size ordering (roughly)."""
        specs = list(TABLE1_NET_SPECS)
        for _, _, paper_n, scaled_n in specs:
            assert 5 <= scaled_n <= 12
            assert scaled_n <= paper_n
        biggest = max(specs, key=lambda s: s[2])
        assert biggest[3] == max(s[3] for s in specs)

    def test_deterministic_in_seed(self):
        a = table1_nets(seed=5)[0].net
        b = table1_nets(seed=5)[0].net
        c = table1_nets(seed=6)[0].net
        assert a.sinks == b.sinks
        assert a.sinks != c.sinks

    def test_box_sizing_rule(self):
        """Wire delay across the box ~ gate delay (paper's setup)."""
        net = make_experiment_net("x", 8, seed=1)
        box = net.bounding_box
        side = max(box.width, box.height)
        assert side == pytest.approx(units.GATE_EQUIVALENT_BOX_SIDE,
                                     rel=0.35)

    def test_loads_in_mapped_pin_range(self):
        for item in table1_nets():
            for sink in item.net.sinks:
                assert 4.0 <= sink.load <= 45.0

    def test_required_times_spread(self):
        net = make_experiment_net("x", 10, seed=3)
        reqs = [s.required_time for s in net.sinks]
        assert max(reqs) > min(reqs)  # sinks differ in criticality


class TestTable2Circuits:
    def test_fifteen_paper_names(self):
        circuits = table2_circuits()
        names = [c.name for c in circuits]
        assert len(names) == 15
        for expected in ("C1355", "C6288", "dalu", "k2", "t481"):
            assert expected in names

    def test_quick_subset(self):
        assert len(table2_circuits(quick=True)) == 4

    def test_shapes_match_specs(self):
        circuits = table2_circuits()
        by_name = {c.name: c for c in circuits}
        for name, gates, _, pis, pos in TABLE2_CIRCUIT_SHAPES:
            circuit = by_name[name]
            assert len(circuit.logic_gates) == gates
            assert len(circuit.primary_inputs) == pis
            assert len(circuit.primary_outputs) == pos

    def test_all_acyclic(self):
        for circuit in table2_circuits():
            circuit.topological_gates()

    def test_deterministic(self):
        a = table2_circuits(seed=3)[0]
        b = table2_circuits(seed=3)[0]
        assert [n.sinks for n in a.nets] == [n.sinks for n in b.nets]
