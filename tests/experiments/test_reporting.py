"""Tests for repro.experiments.reporting."""

import pytest

from repro.experiments.reporting import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    ratio,
)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.50" in text and "bb" in text

    def test_title(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_alignment_widths(self):
        text = format_table(["col"], [["short"], ["a much longer cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len("a much longer cell")


class TestStats:
    def test_ratio(self):
        assert ratio(2.0, 4.0) == 0.5

    def test_ratio_zero_reference(self):
        assert ratio(5.0, 0.0) == float("inf")
        assert ratio(0.0, 0.0) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_skips_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
