"""Smoke tests for the Table 1/2 harnesses and ablations (tiny workloads).

The full experiments run from the CLI/benchmarks; these tests verify the
harness plumbing — row shapes, ratio columns, formatting — on minimal
inputs so the suite stays fast.
"""

import pytest

from repro.core.config import MerlinConfig
from repro.experiments.ablations import (
    alpha_ablation,
    bubbling_ablation,
    convergence_trace,
    format_ablation,
    initial_order_ablation,
)
from repro.experiments.nets import ExperimentNet, make_experiment_net
from repro.experiments.table1 import (
    format_table1,
    run_table1,
    summarize_table1,
)
from repro.experiments.table2 import (
    format_table2,
    run_table2,
    summarize_table2,
)
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.tech.technology import default_technology

TECH = default_technology()
CFG = MerlinConfig.test_preset().with_(max_iterations=2)


@pytest.fixture(scope="module")
def mini_table1_rows():
    nets = [
        ExperimentNet(circuit="C432",
                      net=make_experiment_net("net1", 4, seed=1),
                      paper_sinks=16),
        ExperimentNet(circuit="C1355",
                      net=make_experiment_net("net4", 5, seed=2),
                      paper_sinks=9),
    ]
    return run_table1(tech=TECH, config=CFG, nets=nets)


@pytest.fixture(scope="module")
def mini_table2_rows():
    spec = CircuitSpec(name="mini", primary_inputs=3, primary_outputs=2,
                       logic_gates=8, levels=3, max_fanout=3, seed=5)
    return run_table2(tech=TECH, config=CFG,
                      circuits=[generate_circuit(spec)])


class TestTable1Harness:
    def test_row_per_net(self, mini_table1_rows):
        assert [r.net_name for r in mini_table1_rows] == ["net1", "net4"]

    def test_flow1_absolute_columns_positive(self, mini_table1_rows):
        for row in mini_table1_rows:
            assert row.flow1_delay > 0
            assert row.flow1_runtime > 0

    def test_ratio_columns_positive(self, mini_table1_rows):
        for row in mini_table1_rows:
            assert row.flow2_delay_ratio > 0
            assert row.flow3_delay_ratio > 0
            assert row.loops >= 1

    def test_summary_averages(self, mini_table1_rows):
        summary = summarize_table1(mini_table1_rows)
        import statistics

        assert summary["flow3_delay"] == pytest.approx(statistics.mean(
            r.flow3_delay_ratio for r in mini_table1_rows))

    def test_format_contains_average_row(self, mini_table1_rows):
        text = format_table1(mini_table1_rows)
        assert "Average:" in text
        assert "net1" in text


class TestTable2Harness:
    def test_single_circuit_row(self, mini_table2_rows):
        assert len(mini_table2_rows) == 1
        row = mini_table2_rows[0]
        assert row.circuit == "mini"
        assert row.flow1_delay > 0
        assert row.nets_optimized >= 1

    def test_format(self, mini_table2_rows):
        text = format_table2(mini_table2_rows)
        assert "mini" in text and "Average:" in text

    def test_summary_keys(self, mini_table2_rows):
        summary = summarize_table2(mini_table2_rows)
        assert set(summary) == {
            "flow2_area", "flow2_delay", "flow2_runtime",
            "flow3_area", "flow3_delay", "flow3_runtime"}


class TestAblations:
    NET = make_experiment_net("ab", 4, seed=9)

    def test_alpha_ablation_rows(self):
        rows = alpha_ablation(self.NET, tech=TECH,
                              config=CFG.with_(max_iterations=1),
                              alphas=[2, 3])
        assert [r.label for r in rows] == ["alpha=2", "alpha=3"]
        assert all(r.delay > 0 for r in rows)

    def test_bubbling_ablation_rows(self):
        rows = bubbling_ablation(self.NET, tech=TECH,
                                 config=CFG.with_(max_iterations=1))
        assert {r.label for r in rows} == {"bubbling_on", "bubbling_off"}

    def test_initial_order_ablation_rows(self):
        rows = initial_order_ablation(self.NET, tech=TECH, config=CFG)
        assert len(rows) == 5
        labels = {r.label for r in rows}
        assert "tsp" in labels and "random_a" in labels

    def test_convergence_trace_rows(self):
        rows = convergence_trace(self.NET, tech=TECH, config=CFG)
        assert rows
        assert rows[0].label == "iteration_1"

    def test_format_ablation(self):
        rows = alpha_ablation(self.NET, tech=TECH,
                              config=CFG.with_(max_iterations=1),
                              alphas=[2])
        text = format_ablation(rows, "alpha sweep")
        assert "alpha sweep" in text and "alpha=2" in text
