"""Degenerate-net robustness: the engine and every fallback must return
valid trees with stable canonical signatures on inputs that break naive
geometry code — single sinks, collinear pins, coincident pins, zero
loads, and nets far from the origin."""

from __future__ import annotations

import pytest

from repro.baselines.star import buffered_star
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.export import tree_signature
from repro.routing.validate import validate_tree
from repro.service.canonical import canonical_key
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()


def _sink(name, x, y, load=10.0, req=900.0):
    return Sink(name, Point(x, y), load=load, required_time=req)


def _cases():
    return [
        ("single_sink", Net("single", Point(0, 0),
                            (_sink("a", 800, 200),))),
        ("all_collinear", Net("line", Point(0, 0), (
            _sink("a", 300, 0), _sink("b", 900, 0), _sink("c", 1500, 0),
            _sink("d", 2100, 0)))),
        ("duplicate_coordinates", Net("dup", Point(0, 0), (
            _sink("a", 500, 500), _sink("b", 500, 500),
            _sink("c", 500, 500)))),
        ("sink_on_source", Net("onsrc", Point(100, 100), (
            _sink("a", 100, 100), _sink("b", 900, 400)))),
        ("zero_load_sinks", Net("zload", Point(0, 0), (
            _sink("a", 600, 300, load=0.0), _sink("b", 200, 900,
                                                  load=0.0)))),
        ("far_origin", Net("far", Point(1e6, 1e6), (
            _sink("a", 1e6 + 700, 1e6 + 100),
            _sink("b", 1e6 + 200, 1e6 + 800)))),
    ]


CASES = _cases()
IDS = [name for name, _ in CASES]


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_merlin_returns_a_valid_tree(name, net):
    result = merlin(net, TECH, config=CONFIG)
    validate_tree(result.tree)
    assert result.iterations >= 1


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_signatures_are_stable_across_runs(name, net):
    first = merlin(net, TECH, config=CONFIG)
    second = merlin(net, TECH, config=CONFIG)
    assert tree_signature(first.tree) == tree_signature(second.tree)


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_canonical_key_is_stable_and_translation_invariant(name, net):
    objective = Objective.max_required_time()
    key = canonical_key(net, TECH, CONFIG, objective)
    assert key == canonical_key(net, TECH, CONFIG, objective)
    shifted = Net(
        net.name, Point(net.source.x + 5000.0, net.source.y - 3000.0),
        tuple(Sink(s.name,
                   Point(s.position.x + 5000.0, s.position.y - 3000.0),
                   s.load, s.required_time) for s in net.sinks),
        driver_resistance=net.driver_resistance,
        driver_intrinsic=net.driver_intrinsic)
    assert canonical_key(shifted, TECH, CONFIG, objective) == key


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_star_fallback_is_valid_on_every_degenerate_shape(name, net):
    tree = buffered_star(net, TECH)
    validate_tree(tree)
    assert tree_signature(tree) == tree_signature(buffered_star(net, TECH))


def test_min_area_objective_also_survives_degenerate_shapes():
    objective = Objective.min_area(required_time_floor=0.0)
    for name, net in CASES:
        result = merlin(net, TECH, config=CONFIG, objective=objective)
        validate_tree(result.tree)
