"""Golden-regression tests for the circuit-level harnesses.

Pins the exact outputs of :func:`repro.netlist.flow_runner.
run_circuit_flow` (the Table 2 core) and :func:`repro.pipeline.
run_closure` (the timing-closure driver) on seeded fixture circuits:
post-layout critical delay, total/buffer area, per-net tree signatures,
and — for closure — the iteration trajectory.  Any behavior change in
placement, STA, the per-net objective derivation, the service plumbing,
or the engine itself shows up as a golden diff.

To regenerate after an *intended* behavior change::

    PYTHONPATH=src python tests/golden/test_golden_flows.py

then review the diff of ``goldens_flows.json`` like any other code
change.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.baselines.flows import FLOW_II, FLOW_III
from repro.core.config import MerlinConfig
from repro.netlist.flow_runner import run_circuit_flow
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.pipeline import ClosureConfig, run_closure
from repro.routing.export import tree_signature
from repro.tech.technology import default_technology

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "goldens_flows.json")

TECH = default_technology()
CFG = MerlinConfig.test_preset()

#: Seeded fixture circuits (small enough that the full suite stays in
#: CI-smoke territory, distinct from the learned ranker's training set).
SPECS = {
    "flows_a": CircuitSpec(name="flows_a", primary_inputs=4,
                           primary_outputs=3, logic_gates=12, levels=3,
                           max_fanout=4, seed=3),
    "flows_b": CircuitSpec(name="flows_b", primary_inputs=5,
                           primary_outputs=4, logic_gates=16, levels=4,
                           max_fanout=5, seed=21),
}

#: (case name, spec key, flow) for the run_circuit_flow goldens.
FLOW_CASES = (
    ("flow2_a", "flows_a", FLOW_II),
    ("flow3_a", "flows_a", FLOW_III),
    ("flow3_b", "flows_b", FLOW_III),
)

#: (case name, spec key, order, batch) for the closure goldens.
CLOSURE_CASES = (
    ("closure_a_crit", "flows_a", "criticality", None),
    ("closure_b_crit_batch2", "flows_b", "criticality", 2),
    ("closure_b_fanout", "flows_b", "fanout", None),
)


def _run_flow_case(spec_key: str, flow: str) -> dict:
    result = run_circuit_flow(generate_circuit(SPECS[spec_key]), flow,
                              TECH, CFG)
    return {
        "critical_delay": result.critical_delay,
        "total_area": result.total_area,
        "buffer_area": result.buffer_area,
        "nets_optimized": result.nets_optimized,
        "signatures": {name: tree_signature(r.tree)
                       for name, r in sorted(result.per_net.items())},
    }


def _run_closure_case(spec_key: str, order: str, batch) -> dict:
    result = run_closure(
        generate_circuit(SPECS[spec_key]), config=CFG, workers=1,
        closure=ClosureConfig(order=order, batch_size=batch))
    return {
        "converged": result.converged,
        "iterations": result.iterations_to_converge,
        "estimate_delay": result.estimate_delay,
        "critical_delay": result.critical_delay,
        "worst_slack": result.worst_slack,
        "buffer_area": result.buffer_area,
        "nets_optimized": result.nets_optimized,
        "delay_trajectory": [it.critical_delay
                             for it in result.iterations],
        "signatures": result.signatures(),
    }


def _load_goldens() -> dict:
    with open(GOLDENS_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name,spec_key,flow", FLOW_CASES,
                         ids=[c[0] for c in FLOW_CASES])
def test_circuit_flow_matches_golden(name, spec_key, flow):
    golden = _load_goldens()[name]
    actual = _run_flow_case(spec_key, flow)
    assert actual["signatures"] == golden["signatures"]
    assert actual["nets_optimized"] == golden["nets_optimized"]
    assert actual["critical_delay"] == pytest.approx(
        golden["critical_delay"], rel=1e-9)
    assert actual["total_area"] == pytest.approx(
        golden["total_area"], rel=1e-9)
    assert actual["buffer_area"] == pytest.approx(
        golden["buffer_area"], rel=1e-9)


@pytest.mark.parametrize("name,spec_key,order,batch", CLOSURE_CASES,
                         ids=[c[0] for c in CLOSURE_CASES])
def test_closure_matches_golden(name, spec_key, order, batch):
    golden = _load_goldens()[name]
    actual = _run_closure_case(spec_key, order, batch)
    assert actual["signatures"] == golden["signatures"]
    assert actual["converged"] == golden["converged"]
    assert actual["iterations"] == golden["iterations"]
    assert actual["nets_optimized"] == golden["nets_optimized"]
    assert actual["delay_trajectory"] == pytest.approx(
        golden["delay_trajectory"], rel=1e-9)
    for scalar in ("estimate_delay", "critical_delay", "worst_slack",
                   "buffer_area"):
        assert actual[scalar] == pytest.approx(golden[scalar], rel=1e-9)


def test_goldens_cover_all_cases():
    goldens = _load_goldens()
    expected = [c[0] for c in FLOW_CASES] + [c[0] for c in CLOSURE_CASES]
    assert sorted(goldens) == sorted(expected)


def test_service_path_reproduces_the_flow3_golden():
    """`use_service=True` must be bit-identical to the pinned in-process
    golden — the service layer is plumbing, not behavior."""
    golden = _load_goldens()["flow3_a"]
    result = run_circuit_flow(generate_circuit(SPECS["flows_a"]), FLOW_III,
                              TECH, CFG, use_service=True)
    actual = {name: tree_signature(r.tree)
              for name, r in sorted(result.per_net.items())}
    assert actual == golden["signatures"]
    assert result.critical_delay == pytest.approx(
        golden["critical_delay"], rel=1e-12)
    assert result.buffer_area == pytest.approx(
        golden["buffer_area"], rel=1e-12)


def regenerate() -> None:
    goldens = {}
    for name, spec_key, flow in FLOW_CASES:
        goldens[name] = _run_flow_case(spec_key, flow)
        print(f"regenerated {name}")
    for name, spec_key, order, batch in CLOSURE_CASES:
        goldens[name] = _run_closure_case(spec_key, order, batch)
        print(f"regenerated {name}")
    with open(GOLDENS_PATH, "w", encoding="utf-8") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDENS_PATH}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
    regenerate()
