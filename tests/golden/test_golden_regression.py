"""Golden-regression tests: pin the exact engine output on fixed nets.

Each case runs the full ``merlin()`` engine on a small seeded net with
the deterministic ``test_preset`` configuration and compares the result
against a checked-in golden: exact tree topology (via
:func:`repro.routing.export.tree_signature`), buffer count, total buffer
area, wire length, objective value, and the convergence trace.  Any
behavior change — intended or not — shows up as a golden diff, which is
what makes perf refactors provably behavior-preserving.

To regenerate after an *intended* behavior change::

    PYTHONPATH=src python tests/golden/test_golden_regression.py

then review the diff of ``goldens.json`` like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys

import pytest

from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.curves import kernels
from repro.routing.export import tree_signature
from repro.tech.technology import default_technology

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import build_net  # noqa: E402

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "goldens.json")

#: (name, sinks, seed) — small enough to stay fast, varied enough to
#: exercise single-level, multi-level, and bubbling-active hierarchies.
CASES = (
    ("golden_3s", 3, 11),
    ("golden_4s", 4, 42),
    ("golden_5s", 5, 5),
    ("golden_6s", 6, 7),
)

#: Both curve-kernel backends must reproduce the same goldens — the
#: bit-identity contract of the vectorized kernels (PR-2 tentpole).
BACKENDS = (
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not kernels.numpy_available(), reason="NumPy not installed")),
)


def _run_case(name: str, sinks: int, seed: int,
              backend: str = "python") -> dict:
    net = build_net(sinks, seed=seed, name=name)
    tech = default_technology()
    config = MerlinConfig.test_preset()
    config = config.with_(curve=dataclasses.replace(
        config.curve, backend=backend))
    objective = Objective.max_required_time()
    result = merlin(net, tech, config=config, objective=objective)
    return {
        "signature": tree_signature(result.tree),
        "buffer_count": len(result.tree.buffer_nodes),
        "buffer_area": result.tree.buffer_area,
        "wire_length": result.tree.wire_length,
        "objective_cost": objective.cost(result.best.solution),
        "iterations": result.iterations,
        "converged": result.converged,
        "cost_trace": list(result.cost_trace),
        "final_order": list(result.best.order_out.seq),
    }


def _load_goldens() -> dict:
    with open(GOLDENS_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name,sinks,seed", CASES,
                         ids=[c[0] for c in CASES])
def test_merlin_matches_golden(name: str, sinks: int, seed: int,
                               backend: str):
    golden = _load_goldens()[name]
    actual = _run_case(name, sinks, seed, backend=backend)

    # Exact structural facts first — these give the sharpest diffs.
    assert actual["signature"] == golden["signature"]
    assert actual["buffer_count"] == golden["buffer_count"]
    assert actual["iterations"] == golden["iterations"]
    assert actual["converged"] == golden["converged"]
    assert actual["final_order"] == golden["final_order"]

    # Scalars: tight relative tolerance absorbs libm variation across
    # platforms while still catching any real behavior change.
    assert actual["buffer_area"] == pytest.approx(
        golden["buffer_area"], rel=1e-9)
    assert actual["wire_length"] == pytest.approx(
        golden["wire_length"], rel=1e-9)
    assert actual["objective_cost"] == pytest.approx(
        golden["objective_cost"], rel=1e-9)
    assert actual["cost_trace"] == pytest.approx(
        golden["cost_trace"], rel=1e-9)


def test_goldens_cover_all_cases():
    goldens = _load_goldens()
    assert sorted(goldens) == sorted(c[0] for c in CASES)


def test_instrumentation_does_not_change_goldens():
    """Recording must be pure observation: a fully instrumented run
    produces bit-identical trees and costs (acceptance criterion)."""
    from repro.instrument import Recorder

    name, sinks, seed = CASES[1]
    golden = _load_goldens()[name]
    net = build_net(sinks, seed=seed, name=name)
    config = MerlinConfig.test_preset().with_(recorder=Recorder())
    result = merlin(net, default_technology(), config=config,
                    objective=Objective.max_required_time())
    assert tree_signature(result.tree) == golden["signature"]
    assert result.cost_trace == pytest.approx(golden["cost_trace"],
                                              rel=1e-12)


def regenerate() -> None:
    goldens = {name: _run_case(name, sinks, seed)
               for name, sinks, seed in CASES}
    with open(GOLDENS_PATH, "w", encoding="utf-8") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDENS_PATH} ({len(goldens)} cases)")


if __name__ == "__main__":
    regenerate()
