"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    MerlinConfig,
    Objective,
    default_technology,
    evaluate_tree,
    merlin,
)
from repro.baselines.flows import ALL_FLOWS, FLOW_III, run_all_flows
from repro.routing.export import tree_to_dict
from repro.routing.sink_order import extract_sink_order
from repro.routing.validate import validate_tree
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


class TestPublicApi:
    """The README quick-start path, exercised as a test."""

    def test_quickstart_shape(self):
        from repro import Net, Point, Sink

        net = Net("demo", source=Point(0, 0), sinks=(
            Sink("a", Point(900, 300), load=12.0, required_time=900.0),
            Sink("b", Point(300, 1200), load=20.0, required_time=880.0),
        ))
        result = merlin(net, TECH, config=CFG)
        assert result.iterations >= 1
        validate_tree(result.tree)
        ev = evaluate_tree(result.tree, TECH)
        assert ev.delay > 0

    def test_version_exported(self):
        import repro

        assert repro.__version__


class TestCrossComponentConsistency:
    @pytest.mark.parametrize("seed", [3, 14])
    def test_merlin_result_reevaluates_identically(self, seed):
        """DP bookkeeping == tree evaluator == exported structure."""
        net = build_net(5, seed=seed)
        result = merlin(net, TECH, config=CFG)
        lib = TECH.buffers.subset(CFG.library_subset)
        ev = evaluate_tree(result.tree, TECH.with_buffers(lib))
        assert ev.required_time_at_driver == pytest.approx(
            result.best.solution.required_time, abs=1e-6)
        exported = tree_to_dict(result.tree)
        assert exported["buffer_area"] == pytest.approx(ev.buffer_area)

    def test_simplified_tree_same_metrics(self):
        net = build_net(5, seed=4)
        result = merlin(net, TECH, config=CFG)
        tree = result.tree
        simplified = tree.simplified()
        ev_full = evaluate_tree(tree, TECH)
        ev_simple = evaluate_tree(simplified, TECH)
        assert ev_simple.required_time_at_driver == pytest.approx(
            ev_full.required_time_at_driver, abs=1e-6)
        assert extract_sink_order(simplified) == extract_sink_order(tree)

    def test_all_flows_agree_on_problem_semantics(self):
        """Same net, same technology: every flow's evaluation covers the
        same sinks with finite arrivals."""
        net = build_net(5, seed=6)
        results = run_all_flows(net, TECH, config=CFG)
        assert set(results) == set(ALL_FLOWS)
        for result in results.values():
            assert sorted(result.evaluation.sink_arrivals) == \
                list(range(5))
            for arrival in result.evaluation.sink_arrivals.values():
                assert 0.0 < arrival < 1e7


class TestVariantConsistency:
    def test_variant2_floor_from_variant1_solution(self):
        """Classic workflow: find best delay, then minimize area at a
        slightly relaxed floor — area must drop (or stay) while the floor
        holds."""
        net = build_net(5, seed=8)
        best = merlin(net, TECH, config=CFG)
        floor = best.best.solution.required_time - 150.0
        economical = merlin(net, TECH, config=CFG,
                            objective=Objective.min_area(floor))
        assert economical.best.solution.area <= \
            best.best.solution.area + 1e-9
        if economical.best.constraint_met:
            assert economical.best.solution.required_time >= floor - 1e-9


class TestCircuitLevel:
    def test_flow3_on_small_circuit(self):
        from repro.netlist.flow_runner import run_circuit_flow
        from repro.netlist.generator import CircuitSpec, generate_circuit

        spec = CircuitSpec(name="e2e", primary_inputs=3, primary_outputs=2,
                           logic_gates=8, levels=3, max_fanout=3, seed=1)
        result = run_circuit_flow(generate_circuit(spec), FLOW_III, TECH,
                                  CFG.with_(max_iterations=2))
        assert result.critical_delay > 0
        assert result.total_loops >= result.nets_optimized
