"""Tests for the benchmark harness (``python -m repro.bench``).

The harness doubles as the cross-backend equivalence gate, so what
matters here is (a) the suite actually runs and records the agreed
schema, and (b) divergences are detected and turned into a non-zero
exit — not the timing numbers themselves.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro import bench
from repro.core.config import MerlinConfig
from repro.curves import kernels

TINY_CASE = {
    "name": "tiny4",
    "sinks": 4,
    "seed": 2,
    "config": MerlinConfig.test_preset(),
}

TINY_PARALLEL = {
    "name": "tinypar",
    "sinks": 4,
    "seed": 5,
    "config": MerlinConfig.test_preset(),
    "seeds": (None, 1),
}

BACKENDS = ["python", "numpy"] if kernels.numpy_available() \
    else ["python"]


def test_engine_case_schema_and_equivalence():
    result = bench.run_engine_case(TINY_CASE, BACKENDS)
    assert result["kind"] == "engine"
    assert result["signatures_match"] is True
    for backend in BACKENDS:
        run = result["runs"][backend]
        assert run["wall_s"] > 0
        assert run["signature"]
        assert "counters" in run["instrument"]
    if kernels.numpy_available():
        assert result["runs"]["numpy"]["resolved_backend"] == "numpy"
        assert result["numpy_speedup"] > 0


def test_parallel_case_worker_invariance():
    result = bench.run_parallel_case(TINY_PARALLEL, [1, 2], "python")
    assert result["kind"] == "multi_start"
    assert result["worker_invariant"] is True
    assert result["start_labels"] == ["tsp", "seed=1"]
    assert result["runs"]["1"]["signatures"] == \
        result["runs"]["2"]["signatures"]


def test_check_suite_flags_divergence():
    ok_engine = {"name": "a", "kind": "engine", "signatures_match": True}
    ok_par = {"name": "b", "kind": "multi_start", "worker_invariant": True}
    suite = {"cases": [ok_engine, ok_par]}
    assert bench.check_suite(suite) == []

    bad = copy.deepcopy(suite)
    bad["cases"][0]["signatures_match"] = False
    bad["cases"][1]["worker_invariant"] = False
    failures = bench.check_suite(bad)
    assert len(failures) == 2
    assert "a" in failures[0] and "b" in failures[1]


def test_main_writes_versioned_json(tmp_path, monkeypatch):
    out = tmp_path / "BENCH_test.json"
    monkeypatch.setattr(bench, "_engine_cases", lambda quick: [TINY_CASE])
    monkeypatch.setattr(bench, "_parallel_cases",
                        lambda quick: [TINY_PARALLEL])
    code = bench.main(["--quick", "--tag", "test", "--out", str(out),
                       "--workers", "1"])
    assert code == 0
    suite = json.loads(out.read_text())
    assert suite["version"] == bench.BENCH_VERSION
    assert suite["tag"] == "test"
    assert suite["environment"]["python"]
    assert {c["kind"] for c in suite["cases"]} == \
        {"engine", "multi_start", "service"}


def test_main_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        bench.main(["--backends", "fortran"])
