"""Tests for the benchmark harness (``python -m repro.bench``).

The harness doubles as the cross-backend equivalence gate, so what
matters here is (a) the suite actually runs and records the agreed
schema, and (b) divergences are detected and turned into a non-zero
exit — not the timing numbers themselves.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro import bench
from repro.core.config import MerlinConfig
from repro.curves import kernels

TINY_CASE = {
    "name": "tiny4",
    "sinks": 4,
    "seed": 2,
    "config": MerlinConfig.test_preset(),
}

TINY_PARALLEL = {
    "name": "tinypar",
    "sinks": 4,
    "seed": 5,
    "config": MerlinConfig.test_preset(),
    "seeds": (None, 1),
}

TINY_CLOSURE = {
    "name": "tinyclose",
    "circuit": "8:3:4:3",
    "seed": 3,
    "config": MerlinConfig.test_preset(),
    "orders": ("criticality",),
    "batch": None,
}

BACKENDS = ["python", "numpy"] if kernels.numpy_available() \
    else ["python"]


def test_engine_case_schema_and_equivalence():
    result = bench.run_engine_case(TINY_CASE, BACKENDS)
    assert result["kind"] == "engine"
    assert result["signatures_match"] is True
    for backend in BACKENDS:
        run = result["runs"][backend]
        assert run["wall_s"] > 0
        assert run["signature"]
        assert "counters" in run["instrument"]
    if kernels.numpy_available():
        assert result["runs"]["numpy"]["resolved_backend"] == "numpy"
        assert result["numpy_speedup"] > 0


def test_parallel_case_worker_invariance():
    result = bench.run_parallel_case(TINY_PARALLEL, [1, 2], "python")
    assert result["kind"] == "multi_start"
    assert result["worker_invariant"] is True
    assert result["start_labels"] == ["tsp", "seed=1"]
    assert result["runs"]["1"]["signatures"] == \
        result["runs"]["2"]["signatures"]


def test_closure_case_schema_and_contracts():
    result = bench.run_closure_case(TINY_CLOSURE, "python")
    assert result["kind"] == "closure"
    assert result["all_converged"] is True
    assert result["monotone"] is True
    run = result["runs"]["criticality"]
    assert run["wall_s"] > 0
    assert run["converged"] is True
    assert run["iterations"] >= 1


def test_check_suite_flags_divergence():
    ok_engine = {"name": "a", "kind": "engine", "signatures_match": True}
    ok_par = {"name": "b", "kind": "multi_start", "worker_invariant": True}
    ok_close = {"name": "c", "kind": "closure", "all_converged": True,
                "monotone": True}
    suite = {"cases": [ok_engine, ok_par, ok_close]}
    assert bench.check_suite(suite) == []

    bad = copy.deepcopy(suite)
    bad["cases"][0]["signatures_match"] = False
    bad["cases"][1]["worker_invariant"] = False
    bad["cases"][2]["monotone"] = False
    failures = bench.check_suite(bad)
    assert len(failures) == 3
    assert "a" in failures[0] and "b" in failures[1] and "c" in failures[2]


def _fake_suite(calibration, **timings):
    """A minimal suite dict whose tracked timings are exactly
    ``timings`` (keys are closure order names for brevity)."""
    return {
        "environment": {"calibration_s": calibration},
        "cases": [{
            "name": "t",
            "kind": "closure",
            "backend": "numpy",
            "runs": {order: {"wall_s": wall}
                     for order, wall in timings.items()},
        }],
    }


def test_tracked_timings_cover_every_case_kind():
    suite = {"cases": [
        {"name": "e", "kind": "engine",
         "runs": {
             "python": {"wall_s": 1.0},
             "numpy": {"wall_s": 0.5, "instrument": {"spans": {
                 "merlin/bubble_construct/ptree":
                     {"count": 3, "total_s": 0.3},
                 "merlin/bubble_construct/ptree/curves.kernel.prune":
                     {"count": 9, "total_s": 0.1},
                 "merlin/bubble_construct/curves.kernel.prune":
                     {"count": 2, "total_s": 0.05},
             }}},
         }},
        {"name": "m", "kind": "multi_start",
         "runs": {"1": {"wall_s": 2.0}, "2": {"wall_s": 1.5}}},
        {"name": "s", "kind": "service", "backend": "numpy",
         "cold_wall_s": 3.0, "warm_wall_s": 0.25},
        {"name": "c", "kind": "closure", "backend": "numpy",
         "runs": {"criticality": {"wall_s": 4.0}}},
    ]}
    timings = bench.tracked_timings(suite)
    assert timings == {
        "engine/e/python": 1.0, "engine/e/numpy": 0.5,
        "star_ptree.run/e/numpy": 0.3,
        "curves.prune/e/numpy": pytest.approx(0.15),
        "multi_start/m/w1": 2.0, "multi_start/m/w2": 1.5,
        "service/s/numpy/cold": 3.0, "service/s/numpy/warm": 0.25,
        "closure/c/numpy/criticality": 4.0,
    }


class TestCompareToBaseline:
    def test_regression_over_threshold_fails(self):
        baseline = _fake_suite(1.0, criticality=1.0)
        current = _fake_suite(1.0, criticality=1.5)
        failures = bench.compare_to_baseline(current, baseline)
        assert len(failures) == 1
        assert "closure/t/numpy/criticality" in failures[0]

    def test_within_threshold_passes(self):
        baseline = _fake_suite(1.0, criticality=1.0)
        current = _fake_suite(1.0, criticality=1.1)
        assert bench.compare_to_baseline(current, baseline) == []

    def test_calibration_ratio_excuses_a_slower_machine(self):
        # 2x slower across the board, including the calibration probe:
        # not a code regression.
        baseline = _fake_suite(1.0, criticality=1.0)
        current = _fake_suite(2.0, criticality=2.0)
        assert bench.compare_to_baseline(current, baseline) == []

    def test_calibration_cannot_hide_a_real_regression(self):
        baseline = _fake_suite(1.0, criticality=1.0)
        current = _fake_suite(2.0, criticality=3.0)
        assert len(bench.compare_to_baseline(current, baseline)) == 1

    def test_sub_floor_timings_are_ignored(self):
        # Tiny timings are all noise — never gate on them.
        baseline = _fake_suite(1.0, criticality=0.010)
        current = _fake_suite(1.0, criticality=0.040)
        assert bench.compare_to_baseline(current, baseline) == []

    def test_keys_missing_from_either_side_are_ignored(self):
        baseline = _fake_suite(1.0, criticality=1.0)
        current = _fake_suite(1.0, fanout=99.0)
        assert bench.compare_to_baseline(current, baseline) == []


def test_main_writes_versioned_json(tmp_path, monkeypatch):
    out = tmp_path / "BENCH_test.json"
    monkeypatch.setattr(bench, "_engine_cases", lambda quick: [TINY_CASE])
    monkeypatch.setattr(bench, "_parallel_cases",
                        lambda quick: [TINY_PARALLEL])
    monkeypatch.setattr(bench, "_closure_cases",
                        lambda quick: [TINY_CLOSURE])
    code = bench.main(["--quick", "--tag", "test", "--out", str(out),
                       "--workers", "1"])
    assert code == 0
    suite = json.loads(out.read_text())
    assert suite["version"] == bench.BENCH_VERSION
    assert suite["tag"] == "test"
    assert suite["environment"]["python"]
    assert suite["environment"]["calibration_s"] > 0
    assert {c["kind"] for c in suite["cases"]} == \
        {"engine", "multi_start", "service", "closure"}

    # Round trip through the --baseline gate.  Comparing a run against
    # itself on a shared CI box is jitter-prone, so pad the baseline
    # timings 3x: the gate must load the file, match keys, and pass.
    padded = copy.deepcopy(suite)
    for case in padded["cases"]:
        for run in case.get("runs", {}).values():
            run["wall_s"] *= 3.0
            for span in run.get("instrument", {}).get("spans", {}).values():
                span["total_s"] *= 3.0
        for key in ("cold_wall_s", "warm_wall_s"):
            if key in case:
                case[key] *= 3.0
    baseline = tmp_path / "BENCH_baseline.json"
    baseline.write_text(json.dumps(padded))
    again = tmp_path / "BENCH_again.json"
    code = bench.main(["--quick", "--tag", "test", "--out", str(again),
                       "--workers", "1", "--baseline", str(baseline)])
    assert code == 0


def test_main_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        bench.main(["--backends", "fortran"])
