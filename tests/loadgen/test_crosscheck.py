"""End-to-end: a real workload through both serving paths must agree.

This is the in-suite (small) version of the ``async-serve-smoke`` CI
gate: same engine preset, fewer requests.
"""

from __future__ import annotations

from repro.core.config import MerlinConfig
from repro.loadgen import (
    WorkloadSpec,
    check_equivalence,
    generate_workload,
    run_cross_check,
)

SPEC = WorkloadSpec(requests=6, distinct_nets=2, min_sinks=2, max_sinks=3,
                    seed=3, twin_fraction=0.3, repeat_fraction=0.3)


def test_sync_and_async_paths_answer_bit_identically():
    workload = generate_workload(SPEC)
    verdict = run_cross_check(
        workload, shards=2, concurrency=2,
        config=MerlinConfig.test_preset(), workers=1)
    assert verdict["failures"] == []
    assert verdict["identical"] is True
    for path in ("sync", "async"):
        report = verdict[path]
        counts = report.counts()
        assert counts["ok"] == counts["requests"] == len(workload)
        assert check_equivalence(workload, report) == []
        assert report.throughput_rps > 0
    # Both replays answered every request — the signature maps must be
    # keyed identically, not just overlap.
    assert set(verdict["sync"].signature_map()) == \
        set(verdict["async"].signature_map())
