"""Workload generation: determinism, twin semantics, record/replay."""

from __future__ import annotations

import pytest

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.loadgen import (
    WorkloadSpec,
    generate_workload,
    load_workload,
    resolve_workload,
    save_workload,
)
from repro.net import net_from_dict
from repro.resilience.errors import MerlinInputError
from repro.service.canonical import canonical_key
from repro.tech.technology import default_technology

SPEC = WorkloadSpec(requests=24, distinct_nets=6, min_sinks=2,
                    max_sinks=4, seed=5)


def test_same_spec_generates_byte_identical_workloads():
    assert generate_workload(SPEC).to_dict() == \
        generate_workload(SPEC).to_dict()


def test_different_seeds_generate_different_workloads():
    other = WorkloadSpec(requests=24, distinct_nets=6, min_sinks=2,
                         max_sinks=4, seed=6)
    assert generate_workload(SPEC).to_dict() != \
        generate_workload(other).to_dict()


def test_request_mix_respects_the_spec():
    workload = generate_workload(SPEC)
    assert len(workload) == SPEC.requests
    kinds = {r["kind"] for r in workload.requests}
    assert kinds <= {"fresh", "repeat", "twin"}
    fresh = [r for r in workload.requests if r["kind"] == "fresh"]
    assert 1 <= len(fresh) <= SPEC.distinct_nets
    for request in workload.requests:
        assert request["path"] == "/v1/optimize"
        sinks = request["body"]["net"]["sinks"]
        assert SPEC.min_sinks <= len(sinks) <= SPEC.max_sinks


def test_equivalence_classes_group_repeats_under_their_fresh_base():
    workload = generate_workload(SPEC)
    classes = workload.equivalence_classes()
    assert sum(len(v) for v in classes.values()) == len(workload)
    for base, indices in classes.items():
        assert workload.requests[base]["kind"] == "fresh"
        assert base == indices[0]


@pytest.mark.parametrize("translate", [False, True])
def test_twins_share_the_base_canonical_key(translate):
    spec = WorkloadSpec(requests=32, distinct_nets=4, min_sinks=2,
                        max_sinks=3, seed=9, twin_fraction=0.6,
                        repeat_fraction=0.0, translate_twins=translate)
    workload = generate_workload(spec)
    twins = [r for r in workload.requests if r["kind"] == "twin"]
    assert twins, "spec with twin_fraction=0.6 produced no twins"
    tech = default_technology()
    config = MerlinConfig.test_preset()
    objective = Objective.max_required_time()

    def key_of(body):
        return canonical_key(net_from_dict(body["net"]), tech, config,
                             objective)

    moved = 0
    for twin in twins:
        base_body = workload.requests[twin["base"]]["body"]
        assert twin["body"] != base_body  # genuinely disguised
        assert key_of(twin["body"]) == key_of(base_body)
        if twin["body"]["net"]["source"] != base_body["net"]["source"]:
            moved += 1
    # Rename-only twins never move; translated ones (almost surely) do.
    assert moved == (len(twins) if translate else 0)


def test_save_load_round_trip(tmp_path):
    workload = generate_workload(SPEC)
    path = str(tmp_path / "workload.json")
    save_workload(workload, path)
    loaded = load_workload(path)
    assert loaded.to_dict() == workload.to_dict()
    assert resolve_workload(path=path).to_dict() == workload.to_dict()


def test_resolve_without_a_path_generates_from_the_spec():
    assert resolve_workload(spec=SPEC).to_dict() == \
        generate_workload(SPEC).to_dict()


def test_version_mismatch_is_rejected(tmp_path):
    import json

    workload = generate_workload(SPEC)
    data = workload.to_dict()
    data["version"] = 99
    path = tmp_path / "stale.json"
    path.write_text(json.dumps(data))
    with pytest.raises(MerlinInputError, match="version 99"):
        load_workload(str(path))


@pytest.mark.parametrize("kwargs", [
    dict(requests=0),
    dict(distinct_nets=0),
    dict(min_sinks=1),
    dict(min_sinks=5, max_sinks=4),
    dict(twin_fraction=0.7, repeat_fraction=0.7),
])
def test_bad_specs_are_rejected(kwargs):
    with pytest.raises(MerlinInputError):
        WorkloadSpec(**kwargs)
