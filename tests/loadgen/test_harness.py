"""Harness math and gates, on synthetic outcomes (no server needed)."""

from __future__ import annotations

import pytest

from repro.loadgen import (
    LoadReport,
    RequestOutcome,
    Workload,
    WorkloadSpec,
    build_bench_serve,
    check_equivalence,
    compare_signature_maps,
    percentile,
    render_trend,
    write_bench_serve,
)


# ----------------------------------------------------------------------
# percentile math
# ----------------------------------------------------------------------

def test_percentile_edge_cases():
    assert percentile([], 50.0) == 0.0
    assert percentile([7.0], 99.0) == 7.0
    assert percentile([1.0, 3.0], 50.0) == 2.0  # linear interpolation


def test_percentile_matches_numpy_linear_method():
    np = pytest.importorskip("numpy")
    values = sorted(float(v) for v in [5, 1, 9, 2, 8, 3, 7, 4, 6, 10])
    for q in (0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q, method="linear")))


# ----------------------------------------------------------------------
# report aggregates
# ----------------------------------------------------------------------

def _outcome(index, latency_ms, *, ok=True, status=200, kind="fresh",
             cached=False, signature=None, retries=0, offset_s=0.0):
    return RequestOutcome(
        index=index, kind=kind, status=status, ok=ok,
        latency_s=latency_ms / 1000.0, start_offset_s=offset_s,
        retries=retries, cached=cached,
        signature=signature if signature is not None
        else (f"sig{index}" if ok else None))


def _report(outcomes, wall_s=2.0):
    return LoadReport(target="http://test", concurrency=2, wall_s=wall_s,
                      spec={"seed": 1}, outcomes=outcomes)


def test_counts_and_throughput():
    report = _report([
        _outcome(0, 10.0, cached=False),
        _outcome(1, 30.0, cached=True, retries=1, offset_s=1.2),
        _outcome(2, 5.0, ok=False, status=429, offset_s=1.4),
    ])
    counts = report.counts()
    assert counts == {"requests": 3, "ok": 2, "errors": 1,
                      "rejected_429": 1, "retried": 1, "cache_hits": 1}
    assert report.completed == 2
    assert report.throughput_rps == pytest.approx(1.0)


def test_histogram_buckets_successes_only():
    report = _report([
        _outcome(0, 0.5),
        _outcome(1, 1.5),
        _outcome(2, 40.0),
        _outcome(3, 9999.0),
        _outcome(4, 3.0, ok=False, status=500),
    ])
    histogram = {b["le_ms"]: b["count"] for b in report.histogram_ms()}
    assert histogram[1.0] == 1      # 0.5 ms
    assert histogram[2.0] == 1      # 1.5 ms
    assert histogram[50.0] == 1     # 40 ms
    assert histogram[None] == 1     # 9999 ms overflows the last bound
    assert sum(histogram.values()) == 4  # the failure is excluded


def test_time_series_buckets_by_start_offset():
    report = _report([
        _outcome(0, 10.0, offset_s=0.1),
        _outcome(1, 30.0, offset_s=0.9),
        _outcome(2, 50.0, offset_s=1.5),
    ])
    series = report.time_series(bucket_s=1.0)
    assert [point["count"] for point in series] == [2, 1]
    assert series[0]["mean_ms"] == pytest.approx(20.0)


def test_signature_map_skips_failures():
    report = _report([
        _outcome(0, 1.0, signature="sigA"),
        _outcome(1, 1.0, ok=False, status=503),
    ])
    assert report.signature_map() == {"0": "sigA"}


# ----------------------------------------------------------------------
# the identity gates
# ----------------------------------------------------------------------

def _two_class_workload():
    spec = WorkloadSpec(requests=4, distinct_nets=2, min_sinks=2,
                        max_sinks=2, seed=1)
    return Workload(spec=spec, requests=[
        {"path": "/v1/optimize", "body": {}, "kind": "fresh", "base": 0},
        {"path": "/v1/optimize", "body": {}, "kind": "fresh", "base": 1},
        {"path": "/v1/optimize", "body": {}, "kind": "twin", "base": 0},
        {"path": "/v1/optimize", "body": {}, "kind": "repeat", "base": 1},
    ])


def test_check_equivalence_accepts_one_signature_per_class():
    workload = _two_class_workload()
    report = _report([
        _outcome(0, 1.0, signature="sigA"),
        _outcome(1, 1.0, signature="sigB"),
        _outcome(2, 1.0, signature="sigA", kind="twin"),
        _outcome(3, 1.0, signature="sigB", kind="repeat"),
    ])
    assert check_equivalence(workload, report) == []


def test_check_equivalence_flags_a_split_class():
    workload = _two_class_workload()
    report = _report([
        _outcome(0, 1.0, signature="sigA"),
        _outcome(1, 1.0, signature="sigB"),
        _outcome(2, 1.0, signature="sigX", kind="twin"),  # diverged
        _outcome(3, 1.0, signature="sigB", kind="repeat"),
    ])
    failures = check_equivalence(workload, report)
    assert len(failures) == 1
    assert "request 0" in failures[0]


def test_compare_signature_maps_diffs_shared_requests_only():
    left = {"0": "sigA", "1": "sigB", "2": "sigC"}
    right = {"0": "sigA", "1": "sigZ"}  # 2 missing on the right: skipped
    failures = compare_signature_maps(left, right)
    assert failures == ["request 1: 'sigB' != 'sigZ'"]
    assert compare_signature_maps(left, dict(left)) == []


# ----------------------------------------------------------------------
# artifacts and rendering
# ----------------------------------------------------------------------

@pytest.fixture()
def fast_calibration(monkeypatch):
    import repro.bench as bench

    monkeypatch.setattr(bench, "calibration_seconds", lambda: 0.123)


def test_bench_serve_document_shape(fast_calibration, tmp_path):
    import json

    report = _report([_outcome(0, 10.0), _outcome(1, 20.0)])
    path = str(tmp_path / "BENCH_serve.json")
    write_bench_serve(report, path, tag="test", extra={"mode": "async"})
    with open(path) as handle:
        document = json.load(handle)
    assert document["version"] == 1
    assert document["kind"] == "serve"
    assert document["tag"] == "test"
    assert document["mode"] == "async"
    assert document["environment"]["calibration_s"] == 0.123
    assert document["counts"]["ok"] == 2
    assert "outcomes" not in document  # the summary is the artifact
    assert set(document["percentiles_ms"]) == \
        {"p50", "p95", "p99", "mean", "max"}


def test_build_bench_serve_matches_report_numbers(fast_calibration):
    report = _report([_outcome(0, 10.0), _outcome(1, 20.0)])
    document = build_bench_serve(report)
    assert document["throughput_rps"] == round(report.throughput_rps, 3)
    assert document["percentiles_ms"]["p50"] == pytest.approx(15.0)


def test_render_trend_carries_the_headline_claim():
    report = _report([
        _outcome(0, 10.0, offset_s=0.2),
        _outcome(1, 30.0, cached=True, offset_s=0.8),
    ])
    text = render_trend(report)
    assert "2/2 ok" in text
    assert "p50" in text and "p99" in text
    assert "cache hits 1" in text
    assert "latency histogram:" in text
    assert "per-second trend" in text
