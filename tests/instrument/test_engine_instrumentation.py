"""End-to-end instrumentation of the MERLIN engine (acceptance test).

One instrumented ``merlin()`` run on a 15-sink net must yield a JSON
stats report containing per-iteration outer-loop records, per-level
curve-size/prune-ratio counters, and timing spans separating
``bubble_construct`` from *PTREE routing — and recording must never
change engine results.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.curves.curve import CurveConfig
from repro.instrument import Recorder, names as metric, report_to_json
from repro.instrument.report import report_from_json
from repro.routing.export import tree_signature
from repro.tech.technology import default_technology

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import build_net  # noqa: E402

#: Smallest knobs that still exercise every instrumented code path on a
#: 15-sink net in well under a second.
TINY = MerlinConfig(
    alpha=2, max_candidates=4,
    curve=CurveConfig(load_step=8.0, area_step=240.0, max_solutions=4),
    library_subset=2, relocation_rounds=1, max_iterations=3)


@pytest.fixture(scope="module")
def recorded_run():
    net = build_net(15, seed=4)  # seed 4: takes 2 outer iterations
    rec = Recorder()
    result = merlin(net, default_technology(),
                    config=TINY.with_(recorder=rec))
    return net, rec, result


class TestFifteenSinkReport:
    def test_report_is_valid_json(self, recorded_run):
        _, rec, _ = recorded_run
        report = report_from_json(report_to_json(rec.report()))
        assert report["version"] == 1

    def test_per_iteration_outer_loop_records(self, recorded_run):
        net, rec, result = recorded_run
        report = rec.report()
        events = report["events"][metric.EVENT_MERLIN_ITERATION]
        assert len(events) == result.iterations >= 2
        for index, entry in enumerate(events, start=1):
            assert entry["index"] == index
            assert entry["cost"] == pytest.approx(
                result.cost_trace[index - 1])
            assert sorted(entry["order"]) == list(range(len(net)))
        assert report["counters"][metric.MERLIN_ITERATIONS] == \
            result.iterations

    def test_per_level_curve_size_and_prune_counters(self, recorded_run):
        net, rec, _ = recorded_run
        report = rec.report()
        series = report["series"]
        # Aggregate pre/post/ratio series exist and are consistent.
        pre = series[metric.BUBBLE_CURVE_SIZE_PRE]
        post = series[metric.BUBBLE_CURVE_SIZE_POST]
        ratio = series[metric.BUBBLE_PRUNE_RATIO]
        assert pre["count"] == post["count"] == ratio["count"] > 0
        assert post["total"] <= pre["total"]
        assert 0.0 < ratio["mean"] <= 1.0
        # Every hierarchy level from 2 up to n reported both sides.
        for size in range(2, len(net) + 1):
            assert metric.level_curve_size_pre(size) in series
            assert metric.level_curve_size_post(size) in series
        # Prune counters from the curve layer made it through.
        counters = report["counters"]
        assert counters[metric.CURVE_PRUNE_CALLS] > 0
        assert counters[metric.CURVE_PRUNE_REMOVED] > 0

    def test_timing_spans_bubble_vs_ptree(self, recorded_run):
        _, rec, result = recorded_run
        spans = rec.report()["spans"]
        bubble_path = f"{metric.SPAN_MERLIN}/{metric.SPAN_BUBBLE_CONSTRUCT}"
        ptree_path = f"{bubble_path}/{metric.SPAN_PTREE}"
        assert spans[metric.SPAN_MERLIN]["count"] == 1
        assert spans[bubble_path]["count"] == result.iterations
        assert spans[ptree_path]["count"] > 0
        # Nesting sanity: inner time cannot exceed outer time.
        assert spans[ptree_path]["total_s"] <= \
            spans[bubble_path]["total_s"] <= \
            spans[metric.SPAN_MERLIN]["total_s"]

    def test_dp_volume_counters_present(self, recorded_run):
        _, rec, _ = recorded_run
        counters = rec.report()["counters"]
        for name in (metric.BUBBLE_CELLS, metric.BUBBLE_LEVELS,
                     metric.BUBBLE_RANGES, metric.BUBBLE_RANGE_MEMO_HITS,
                     metric.PTREE_JOIN_CALLS, metric.PTREE_JOIN_PAIRS,
                     metric.PTREE_BUFFER_OFFERS, metric.PTREE_BASE_CURVES):
            assert counters[name] > 0, name
        assert counters[metric.PTREE_BASE_CURVES] == 15

    def test_summary_renders(self, recorded_run):
        from repro.analysis import derived_metrics, summarize_report

        _, rec, _ = recorded_run
        text = summarize_report(rec.report())
        assert "Timing spans" in text
        assert "bubble_construct" in text
        assert "MERLIN iterations" in text
        derived = derived_metrics(rec)
        assert 0.0 <= derived["memo_hit_rate"] <= 1.0
        assert 0.0 < derived["ptree_time_fraction"] <= 1.0


class TestDisabledIsFree:
    def test_results_identical_with_and_without_recorder(self):
        net = build_net(15, seed=4)
        tech = default_technology()
        plain = merlin(net, tech, config=TINY)
        recorded = merlin(net, tech, config=TINY.with_(recorder=Recorder()))
        assert tree_signature(plain.tree) == tree_signature(recorded.tree)
        assert plain.cost_trace == recorded.cost_trace
        assert plain.iterations == recorded.iterations
        assert [o.seq for o in plain.order_trace] == \
            [o.seq for o in recorded.order_trace]

    def test_no_active_recorder_leaks_after_run(self):
        from repro.instrument import NULL_RECORDER, active_recorder

        net = build_net(4, seed=1)
        merlin(net, default_technology(),
               config=MerlinConfig.test_preset().with_(recorder=Recorder()))
        assert active_recorder() is NULL_RECORDER


class TestCliStats:
    def test_stats_flag_writes_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out_path = str(tmp_path / "stats.json")
        assert main(["net", "--sinks", "4", "--seed", "2", "--stats",
                     "--stats-out", out_path]) == 0
        with open(out_path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["version"] == 1
        assert report["counters"][metric.MERLIN_ITERATIONS] >= 1
        # All three flows were timed for apples-to-apples comparison.
        from repro.baselines.flows import ALL_FLOWS
        for flow in ALL_FLOWS:
            assert metric.span_flow(flow) in report["spans"]
            assert metric.flow_runtime(flow) in report["series"]

    def test_stats_flag_prints_json_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["net", "--sinks", "3", "--seed", "1", "--stats"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        report = json.loads(payload)
        assert report["version"] == 1
