"""Unit tests for the repro.instrument layer itself."""

from __future__ import annotations

import json

import pytest

from repro.instrument import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    active_recorder,
    dump_report,
    install_recorder,
    load_report,
    report_from_json,
    report_to_json,
    use_recorder,
    validate_report,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestCounters:
    def test_default_zero(self):
        assert Recorder().counter("nope") == 0

    def test_incr_aggregates(self):
        rec = Recorder()
        rec.incr("a")
        rec.incr("a")
        rec.incr("a", 5)
        rec.incr("b", 2)
        assert rec.counter("a") == 7
        assert rec.counter("b") == 2


class TestSeries:
    def test_streaming_stats(self):
        rec = Recorder()
        for value in (4.0, 1.0, 7.0):
            rec.record("s", value)
        stats = rec.series["s"]
        assert stats.count == 3
        assert stats.total == 12.0
        assert stats.minimum == 1.0
        assert stats.maximum == 7.0
        assert stats.mean == 4.0
        assert stats.last == 7.0


class TestEvents:
    def test_append_order_preserved(self):
        rec = Recorder()
        rec.event("e", index=1)
        rec.event("e", index=2)
        assert [entry["index"] for entry in rec.events["e"]] == [1, 2]


class TestSpans:
    def test_nested_spans_build_paths(self):
        rec = Recorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert set(rec.spans) == {"outer", "outer/inner"}
        assert rec.spans["outer"].count == 1
        assert rec.spans["outer/inner"].count == 2

    def test_span_timing_uses_clock(self):
        # Each clock read advances 1s; a span reads twice (enter + exit),
        # and the inner spans' reads land inside the outer window.
        rec = Recorder(clock=FakeClock(step=1.0))
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        assert rec.spans["outer/inner"].total_s == pytest.approx(1.0)
        assert rec.spans["outer"].total_s == pytest.approx(3.0)

    def test_sibling_spans_share_path(self):
        rec = Recorder(clock=FakeClock())
        for _ in range(3):
            with rec.span("leaf"):
                pass
        assert rec.spans["leaf"].count == 3


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NullRecorder().enabled is False
        assert Recorder().enabled is True

    def test_all_operations_are_noops(self):
        rec = NullRecorder()
        rec.incr("a")
        rec.record("s", 1.0)
        rec.event("e", x=1)
        with rec.span("t"):
            pass
        # No storage at all: the null recorder has no attributes to grow.
        assert not hasattr(rec, "counters")

    def test_uninstalled_recorder_stays_empty(self):
        """Instrumented engine code writes to the *active* recorder, so a
        recorder that was never installed must stay empty."""
        from repro.curves.ops import join_solutions
        from repro.curves.solution import SinkLeaf, Solution
        from repro.geometry.point import Point

        bystander = Recorder()
        p = Point(0, 0)
        join_solutions(Solution(p, 1.0, 2.0, 3.0, SinkLeaf(0)),
                       Solution(p, 1.0, 2.0, 3.0, SinkLeaf(1)))
        assert bystander.counters == {}
        assert bystander.series == {}
        assert bystander.events == {}
        assert bystander.spans == {}


class TestActiveRecorder:
    def test_default_is_null(self):
        assert active_recorder() is NULL_RECORDER

    def test_use_recorder_scopes_and_restores(self):
        rec = Recorder()
        with use_recorder(rec) as installed:
            assert installed is rec
            assert active_recorder() is rec
            inner = Recorder()
            with use_recorder(inner):
                assert active_recorder() is inner
            assert active_recorder() is rec
        assert active_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with use_recorder(rec):
                raise RuntimeError("boom")
        assert active_recorder() is NULL_RECORDER

    def test_install_none_means_null(self):
        previous = install_recorder(None)
        try:
            assert active_recorder() is NULL_RECORDER
        finally:
            install_recorder(previous)


class TestReport:
    def _populated(self) -> Recorder:
        rec = Recorder(clock=FakeClock())
        rec.incr("c.a", 3)
        rec.record("s.x", 1.5)
        rec.record("s.x", 2.5)
        rec.event("e.run", index=1, cost=-3.25, order=[2, 0, 1])
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        return rec

    def test_report_is_json_serializable(self):
        report = self._populated().report()
        json.dumps(report)  # must not raise
        validate_report(report)

    def test_round_trip_through_dict(self):
        report = self._populated().report()
        rebuilt = Recorder.from_report(report)
        assert rebuilt.report() == report

    def test_round_trip_through_json_text(self):
        report = self._populated().report()
        text = report_to_json(report)
        assert report_from_json(text) == report

    def test_round_trip_through_file(self, tmp_path):
        report = self._populated().report()
        path = str(tmp_path / "report.json")
        dump_report(report, path)
        assert load_report(path) == report

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_report([])
        with pytest.raises(ValueError):
            validate_report({"version": 999, "counters": {}, "series": {},
                             "spans": {}, "events": {}})
        with pytest.raises(ValueError):
            validate_report({"version": 1, "counters": {}})

    def test_from_report_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            Recorder.from_report({"version": 2})
