"""Tests for the process-parallel outer-search driver and report merge.

The contract: worker count is a pure scheduling knob — every result,
the best-pick, and the merged instrumentation report are identical for
any ``workers`` value (including the inline ``workers=1`` path).
"""

from __future__ import annotations

import pytest

from conftest import build_net
from repro import parallel
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.instrument import Recorder, SpanStats, merge_reports
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()


def _multi_start(workers):
    net = build_net(4, seed=8)
    return parallel.run_multi_start(net, TECH, config=CONFIG,
                                    seeds=(None, 1), workers=workers)


def test_worker_count_is_invisible():
    inline = _multi_start(workers=1)
    pooled = _multi_start(workers=2)
    assert [r.signature for r in inline.results] == \
        [r.signature for r in pooled.results]
    assert [r.cost for r in inline.results] == \
        [r.cost for r in pooled.results]
    assert inline.best.label == pooled.best.label
    assert inline.report["counters"] == pooled.report["counters"]
    assert inline.report["spans"].keys() == pooled.report["spans"].keys()


def test_results_follow_submission_order():
    outcome = _multi_start(workers=2)
    assert [r.label for r in outcome.results] == ["tsp", "seed=1"]
    assert outcome.best in outcome.results
    assert outcome.best.cost == min(r.cost for r in outcome.results)


def test_run_batch_maps_nets_in_order():
    nets = [build_net(3, seed=s, name=f"net{s}") for s in (1, 2, 3)]
    outcome = parallel.run_batch(nets, TECH, config=CONFIG, workers=2)
    assert [r.net_name for r in outcome.results] == \
        ["net1", "net2", "net3"]
    assert all(r.tree.wire_length > 0 for r in outcome.results)


def test_parent_recorder_never_crosses_the_pool():
    """A live parent recorder is stripped; workers record independently."""
    net = build_net(3, seed=4)
    config = CONFIG.with_(recorder=Recorder())
    outcome = parallel.run_multi_start(net, TECH, config=config,
                                       seeds=(None,), workers=1)
    assert config.recorder.counters == {}  # parent recorder untouched
    assert outcome.results[0].report["counters"]  # worker's own report


def test_resolve_workers():
    assert parallel.resolve_workers(None, CONFIG, 8) == 1
    assert parallel.resolve_workers(None, CONFIG.with_(workers=4), 8) == 4
    assert parallel.resolve_workers(3, CONFIG.with_(workers=4), 8) == 3
    assert parallel.resolve_workers(16, CONFIG, 3) == 3  # clamped
    with pytest.raises(ValueError):
        parallel.resolve_workers(0, CONFIG, 3)


def test_workers_config_validation():
    with pytest.raises(ValueError, match="workers"):
        MerlinConfig(workers=0)


def test_run_tasks_rejects_empty():
    with pytest.raises(ValueError, match="no tasks"):
        parallel.run_tasks([])


def test_multi_start_orders_labels():
    net = build_net(4, seed=1)
    labels = [label for label, _ in
              parallel.multi_start_orders(net, (None, 7))]
    assert labels == ["tsp", "seed=7"]


# ----------------------------------------------------------------------
# merge_reports
# ----------------------------------------------------------------------

def _report(counter=0, series=(), events=(), span=None):
    rec = Recorder(clock=lambda: 0.0)
    if counter:
        rec.incr("c", counter)
    for value in series:
        rec.record("s", value)
    for payload in events:
        rec.event("e", **payload)
    if span is not None:
        rec.spans["sp"] = SpanStats(count=1, total_s=span)
    return rec.report()


def test_merge_reports_sums_and_concatenates():
    r1 = _report(counter=2, series=(1.0, 5.0), events=({"i": 1},),
                 span=0.5)
    r2 = _report(counter=3, series=(4.0,), events=({"i": 2}, {"i": 3}),
                 span=1.5)
    merged = merge_reports([r1, r2])
    assert merged["counters"]["c"] == 5
    s = merged["series"]["s"]
    assert s["count"] == 3
    assert s["total"] == 10.0
    assert s["min"] == 1.0 and s["max"] == 5.0
    assert s["last"] == 4.0  # from the later report, submission order
    assert merged["spans"]["sp"] == {"count": 2, "total_s": 2.0}
    assert [e["i"] for e in merged["events"]["e"]] == [1, 2, 3]


def test_merge_reports_is_order_sensitive_only_in_stream_fields():
    r1 = _report(counter=1, series=(2.0,))
    r2 = _report(counter=4, series=(9.0,))
    ab = merge_reports([r1, r2])
    ba = merge_reports([r2, r1])
    assert ab["counters"] == ba["counters"]
    assert ab["series"]["s"]["total"] == ba["series"]["s"]["total"]
    assert ab["series"]["s"]["last"] == 9.0
    assert ba["series"]["s"]["last"] == 2.0


def test_merge_reports_rejects_bad_version():
    with pytest.raises(ValueError):
        merge_reports([{"version": 99, "counters": {}, "series": {},
                        "spans": {}, "events": {}}])
