"""Tests for the wire-sizing extension ([LCLH96] simultaneous sizing).

Default behaviour (single minimum width) must be bit-identical to the
pre-extension library; enabling multiple widths can only grow the DP's
solution space.
"""

import pytest

from repro.core.bubble_construct import bubble_construct
from repro.core.config import MerlinConfig
from repro.curves.curve import CurveConfig
from repro.curves.ops import extend_solution
from repro.curves.solution import sink_leaf_solution
from repro.geometry.point import Point
from repro.orders.tsp import tsp_order
from repro.routing.builder import build_tree
from repro.routing.evaluate import evaluate_tree
from repro.routing.tree import RoutingTree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()


class TestExtendWithWidth:
    def test_wide_wire_less_resistance_more_cap(self):
        pin = sink_leaf_solution(Point(0, 0), 0, 50.0, 1000.0)
        narrow = extend_solution(pin, Point(1000, 0), TECH, width=1.0)
        wide = extend_solution(pin, Point(1000, 0), TECH, width=4.0)
        assert wide.load > narrow.load
        # At this heavy load, the 4x resistance reduction wins.
        assert wide.required_time > narrow.required_time

    def test_width_recorded_in_detail(self):
        pin = sink_leaf_solution(Point(0, 0), 0, 10.0, 100.0)
        wide = extend_solution(pin, Point(500, 0), TECH, width=2.0)
        assert wide.detail.width == 2.0

    def test_invalid_width_rejected(self):
        pin = sink_leaf_solution(Point(0, 0), 0, 10.0, 100.0)
        with pytest.raises(ValueError):
            extend_solution(pin, Point(500, 0), TECH, width=0.0)

    def test_default_width_unchanged(self):
        pin = sink_leaf_solution(Point(0, 0), 0, 10.0, 100.0)
        a = extend_solution(pin, Point(500, 0), TECH)
        b = extend_solution(pin, Point(500, 0), TECH, width=1.0)
        assert a.load == b.load and a.required_time == b.required_time


class TestEvaluatorWidthAware:
    def test_evaluator_matches_dp_with_widths(self):
        from repro.net import Net, Sink

        net = Net("w", Point(0, 0),
                  (Sink("a", Point(2000, 0), 60.0, 1000.0),))
        pin = sink_leaf_solution(net.sink(0).position, 0, 60.0, 1000.0)
        sized = extend_solution(pin, net.source, TECH, width=3.0)
        tree = build_tree(net, sized)
        partial = RoutingTree(net=net, root=tree.root.children[0])
        ev = evaluate_tree(partial, TECH)
        assert ev.required_time_at_driver == pytest.approx(
            sized.required_time, abs=1e-6)
        assert ev.driver_load == pytest.approx(sized.load, abs=1e-9)

    def test_simplified_preserves_width(self):
        from repro.net import Net, Sink

        net = Net("w", Point(0, 0),
                  (Sink("a", Point(800, 0), 20.0, 500.0),))
        pin = sink_leaf_solution(net.sink(0).position, 0, 20.0, 500.0)
        sized = extend_solution(pin, net.source, TECH, width=2.0)
        tree = build_tree(net, sized).simplified()
        ev = evaluate_tree(tree, TECH)
        # The width survives simplification: load includes 2x wire cap.
        assert ev.driver_load == pytest.approx(sized.load, abs=1e-9)


class TestSizingInTheDp:
    EXACT = MerlinConfig.test_preset().with_(
        curve=CurveConfig(load_step=0.01, area_step=0.5,
                          max_solutions=100000),
        library_subset=2, max_candidates=5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MerlinConfig(wire_width_options=())
        with pytest.raises(ValueError):
            MerlinConfig(wire_width_options=(1.0, -2.0))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_sizing_never_hurts_at_exact_settings(self, seed):
        net = build_net(4, seed=seed)
        order = tsp_order(net)
        single = bubble_construct(net, order, TECH, config=self.EXACT)
        sized = bubble_construct(
            net, order, TECH,
            config=self.EXACT.with_(wire_width_options=(1.0, 2.0, 4.0)))
        assert sized.solution.required_time >= \
            single.solution.required_time - 1e-9

    def test_sized_tree_reevaluates_identically(self):
        cfg = MerlinConfig.test_preset().with_(
            wire_width_options=(1.0, 3.0))
        net = build_net(4, seed=5)
        result = bubble_construct(net, tsp_order(net), TECH, config=cfg)
        lib = TECH.buffers.subset(cfg.library_subset)
        ev = evaluate_tree(result.tree, TECH.with_buffers(lib))
        assert ev.required_time_at_driver == pytest.approx(
            result.solution.required_time, abs=1e-6)

    def test_wide_wires_used_when_resistance_dominates(self):
        """Widening is selected where it is the only effective lever:
        unbuffered routing (plain PTREE), a resistive wire stack and a
        strong driver.  With buffers available the DP correctly prefers
        repeater insertion over widening in this technology — wire sizing
        is a regime-dependent optimization, not a universal win.
        """
        from repro.baselines.ptree import ptree_route
        from repro.net import Net, Sink
        from repro.tech.technology import Technology
        from repro.tech.wire import WireParasitics

        resistive = Technology(
            wire=WireParasitics(
                resistance_per_um=TECH.wire.resistance_per_um * 20.0,
                capacitance_per_um=TECH.wire.capacitance_per_um),
            buffers=TECH.buffers,
            gate_delay=TECH.gate_delay,
            driver_resistance=0.05,  # strong driver: upstream cap is cheap
        )
        net = Net("heavy", Point(0, 0),
                  (Sink("a", Point(6000.0, 0.0), 70.0, 10000.0),))
        cfg = MerlinConfig.test_preset().with_(
            wire_width_options=(1.0, 4.0),
            curve=CurveConfig(load_step=1.0, area_step=30.0,
                              max_solutions=24))
        sized = ptree_route(net, resistive, config=cfg)
        widths = {node.upstream_width for node in sized.tree.walk()}
        assert 4.0 in widths
        narrow = ptree_route(
            net, resistive,
            config=cfg.with_(wire_width_options=(1.0,)))
        assert sized.solution.required_time > \
            narrow.solution.required_time
