"""Crash-safety proof: SIGKILL closure mid-iteration, resume, compare.

This is the out-of-process version of the resume tests in
``test_journal.py``: a real ``merlin-repro closure --journal`` child is
killed with SIGKILL (no atexit, no flush beyond the journal's own
fsyncs) partway through, then ``--resume`` must replay the completed
iterations bit-identically and finish with the same ClosureResult as an
uninterrupted run on the same seed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

from repro.pipeline.journal import read_journal

#: 12 gates, 3 levels, 4 PIs, 3 POs; with --batch 1 this closes in ~7
#: iterations — wide enough to kill mid-run deterministically.
CIRCUIT = "12:3:4:3"


def _closure_cmd(extra):
    return [sys.executable, "-m", "repro", "closure",
            "--circuit", CIRCUIT, "--seed", "3", "--preset", "test",
            "--workers", "1", "--batch", "1", "--json"] + extra


def _env():
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_closure_json(extra):
    proc = subprocess.run(_closure_cmd(extra), env=_env(),
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return _strip_walltimes(json.loads(proc.stdout))


def _strip_walltimes(report):
    report.pop("runtime_s", None)
    for iteration in report.get("iterations", []):
        iteration.pop("wall_s", None)
    return report


def _journal_lines(path):
    try:
        with open(path, "rb") as handle:
            return handle.read().count(b"\n")
    except OSError:
        return 0


def test_sigkill_mid_closure_then_resume_is_bit_identical(tmp_path):
    baseline = _run_closure_json([])
    assert len(baseline["iterations"]) >= 4  # room to die mid-run

    journal = str(tmp_path / "closure.jsonl")
    victim = subprocess.Popen(_closure_cmd(["--journal", journal]),
                              env=_env(), stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    try:
        # Kill as soon as the journal holds the header plus at least one
        # completed iteration — mid-run, with work both behind and ahead.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _journal_lines(journal) >= 2 or victim.poll() is not None:
                break
            time.sleep(0.005)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup
            victim.kill()
            victim.wait()
    assert victim.returncode == -signal.SIGKILL  # died, did not finish

    replay = read_journal(journal)  # journal is valid after the kill...
    completed = len(replay.records)
    assert completed < len(baseline["iterations"])  # ...and incomplete

    resumed = _run_closure_json(["--resume", journal])
    assert resumed == baseline

    # The resumed run extended the same journal to the full run length.
    healed = read_journal(journal)
    assert healed.records[:completed] == replay.records
    assert len(healed.records) == len(baseline["iterations"])
    assert healed.stopped
