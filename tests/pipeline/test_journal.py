"""The write-ahead closure journal: durability contract and resume.

Covers the record format directly (checksums, torn tails, mid-file
corruption, index continuity) and the closure integration: a journaled
run resumed from a truncated journal must reproduce the uninterrupted
result bit-identically.  The out-of-process SIGKILL version of that
proof is ``test_journal_chaos.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import MerlinConfig
from repro.instrument.recorder import Recorder
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.pipeline import ClosureConfig, run_closure
from repro.pipeline.journal import (
    JOURNAL_VERSION,
    ClosureJournal,
    read_journal,
)
from repro.resilience.errors import JournalCorruptError, MerlinInputError

CFG = MerlinConfig.test_preset()
SPEC = CircuitSpec(name="journal", primary_inputs=4, primary_outputs=3,
                   logic_gates=10, levels=3, max_fanout=4, seed=3)

HEADER = {"circuit": "journal-test", "target": 1.0}


def _journal_with(path, iterations, stop_last=False):
    with ClosureJournal.create(str(path), dict(HEADER)) as journal:
        for index in range(iterations):
            journal.append_iteration(
                index, {"delays": {"n": [float(index)]}},
                {"iteration": index}, stop_last and index == iterations - 1)
    return str(path)


# ----------------------------------------------------------------------
# Record format
# ----------------------------------------------------------------------

def test_round_trip_recovers_header_and_records(tmp_path):
    path = _journal_with(tmp_path / "j.jsonl", 3, stop_last=True)
    replay = read_journal(path)
    assert replay.header["circuit"] == "journal-test"
    assert replay.header["version"] == JOURNAL_VERSION
    assert [r["index"] for r in replay.records] == [0, 1, 2]
    assert replay.last_index == 2
    assert replay.stopped is True
    assert replay.torn == 0
    assert replay.valid_bytes == os.path.getsize(path)


def test_every_line_is_checksummed_canonical_json(tmp_path):
    path = _journal_with(tmp_path / "j.jsonl", 1)
    with open(path, "rb") as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 2
    for line in lines:
        record = json.loads(line)
        assert "checksum" in record and len(record["checksum"]) == 64


def test_torn_final_line_is_discarded_not_fatal(tmp_path):
    path = _journal_with(tmp_path / "j.jsonl", 2)
    whole = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(whole - 10)  # tear the last record mid-write
    recorder = Recorder()
    replay = read_journal(path, recorder)
    assert replay.last_index == 0  # iteration 1 was torn away
    assert replay.torn == 1
    assert replay.valid_bytes < whole - 10
    assert recorder.report()["counters"]["pipeline.journal.torn"] == 1


def test_mid_file_corruption_is_refused(tmp_path):
    path = _journal_with(tmp_path / "j.jsonl", 3)
    with open(path, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    lines[1] = lines[1][:20] + b"X" + lines[1][21:]  # flip a byte
    with open(path, "wb") as handle:
        handle.writelines(lines)
    with pytest.raises(JournalCorruptError, match="mid-file corruption"):
        read_journal(path)


def test_missing_header_and_index_gaps_are_refused(tmp_path):
    headerless = tmp_path / "no-header.jsonl"
    with ClosureJournal.create(str(headerless), dict(HEADER)) as journal:
        journal.append_iteration(0, {}, {}, False)
    with open(headerless, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    with open(headerless, "wb") as handle:
        handle.writelines(lines[1:])  # drop the header line
    with pytest.raises(JournalCorruptError, match="header"):
        read_journal(str(headerless))

    gapped = _journal_with(tmp_path / "gapped.jsonl", 3)
    with open(gapped, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    with open(gapped, "wb") as handle:
        handle.writelines(lines[:2] + lines[3:])  # drop iteration 1
    with pytest.raises(JournalCorruptError, match="missing or reordered"):
        read_journal(gapped)

    with pytest.raises(MerlinInputError):
        read_journal(str(tmp_path / "nope.jsonl"))  # unreadable path


def test_resume_truncates_the_torn_tail_before_appending(tmp_path):
    path = _journal_with(tmp_path / "j.jsonl", 2)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 10)
    replay = read_journal(path)
    with ClosureJournal.resume(path, replay) as journal:
        journal.append_iteration(replay.last_index + 1, {}, {}, True)
    healed = read_journal(path)
    assert healed.torn == 0
    assert [r["index"] for r in healed.records] == [0, 1]
    assert healed.stopped


# ----------------------------------------------------------------------
# Closure integration: journaled + resumed runs are bit-identical
# ----------------------------------------------------------------------

def _closure_dict(outcome):
    data = outcome.to_dict()
    data.pop("runtime_s", None)
    for iteration in data.get("iterations", []):
        iteration.pop("wall_s", None)
    return data


def _run(journal_path=None, resume=False):
    outcome = run_closure(generate_circuit(SPEC), config=CFG,
                          closure=ClosureConfig(batch_size=1), workers=1,
                          journal_path=journal_path, resume=resume)
    return _closure_dict(outcome)


def test_journaled_run_matches_plain_run(tmp_path):
    plain = _run()
    journaled = _run(journal_path=str(tmp_path / "c.jsonl"))
    assert journaled == plain
    replay = read_journal(str(tmp_path / "c.jsonl"))
    assert replay.stopped
    assert len(replay.records) == len(plain["iterations"])


def test_resume_from_complete_journal_replays_bit_identically(tmp_path):
    path = str(tmp_path / "c.jsonl")
    first = _run(journal_path=path)
    resumed = _run(journal_path=path, resume=True)
    assert resumed == first


def test_resume_from_truncated_journal_continues_the_run(tmp_path):
    path = str(tmp_path / "c.jsonl")
    full = _run(journal_path=path)
    assert len(full["iterations"]) >= 3  # enough to crash mid-run

    # Simulate a crash after iteration 0: keep header + first record.
    with open(path, "rb") as handle:
        lines = handle.read().splitlines(keepends=True)
    with open(path, "wb") as handle:
        handle.writelines(lines[:2])

    resumed = _run(journal_path=path, resume=True)
    assert resumed == full
    # The resumed run extended the same journal back to full length.
    assert len(read_journal(path).records) == len(full["iterations"])


def test_resume_refuses_a_journal_for_a_different_run(tmp_path):
    path = str(tmp_path / "c.jsonl")
    _run(journal_path=path)
    other = CircuitSpec(name="other", primary_inputs=4, primary_outputs=3,
                        logic_gates=12, levels=3, max_fanout=4, seed=4)
    with pytest.raises(MerlinInputError, match="journal"):
        run_closure(generate_circuit(other), config=CFG,
                    closure=ClosureConfig(batch_size=1), workers=1,
                    journal_path=path, resume=True)


def test_resume_requires_a_journal_path():
    with pytest.raises(MerlinInputError):
        run_closure(generate_circuit(SPEC), config=CFG,
                    closure=ClosureConfig(), workers=1, resume=True)
