"""Tests for the timing-closure driver (`repro.pipeline.closure`)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import MerlinConfig
from repro.instrument import Recorder
from repro.instrument import names as metric
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.pipeline import ClosureConfig, run_closure
from repro.resilience.errors import MerlinInputError
from repro.routing.validate import validate_tree
from repro.service import OptimizationService, ResultCache
from repro.tech.technology import default_technology

TECH = default_technology()
CFG = MerlinConfig.test_preset()

SPEC = CircuitSpec(name="closure", primary_inputs=4, primary_outputs=3,
                   logic_gates=12, levels=3, max_fanout=4, seed=3)

#: The ordering-equivalence circuit: under batch_size=1 the policies
#: genuinely diverge here — criticality closes in fewer iterations than
#: fanout (found by a seed sweep; pinned, deterministic).
COMPARE_SPEC = CircuitSpec(name="s31", primary_inputs=5, primary_outputs=4,
                           logic_gates=18, levels=4, max_fanout=5, seed=31)


@pytest.fixture(scope="module")
def result():
    return run_closure(generate_circuit(SPEC), config=CFG,
                       closure=ClosureConfig(), workers=1)


class TestConvergence:
    def test_converges(self, result):
        assert result.converged
        assert 1 <= result.iterations_to_converge <= 10

    def test_worst_slack_is_non_decreasing_across_iterations(self, result):
        slacks = [it.worst_slack for it in result.iterations]
        assert all(slacks[i] <= slacks[i + 1] + 1e-6
                   for i in range(len(slacks) - 1))

    def test_critical_delay_is_monotone_non_increasing(self, result):
        delays = [it.critical_delay for it in result.iterations]
        assert all(delays[i] >= delays[i + 1] - 1e-6
                   for i in range(len(delays) - 1))

    def test_closure_beats_the_star_estimate(self, result):
        assert result.critical_delay < result.estimate_delay

    def test_target_derivation(self, result):
        assert result.target == pytest.approx(0.88 * result.estimate_delay)

    def test_every_final_tree_is_valid(self, result):
        assert result.trees
        for tree in result.trees.values():
            validate_tree(tree)

    def test_all_multi_sink_nets_get_optimized_with_full_batches(
            self, result):
        circuit = generate_circuit(SPEC)
        multi = sum(1 for n in circuit.nets if len(n.sinks) >= 2)
        assert result.nets_optimized == multi

    def test_area_accounting(self, result):
        circuit = generate_circuit(SPEC)
        assert result.gate_area == pytest.approx(circuit.gate_area)
        assert result.total_area == pytest.approx(
            result.gate_area + result.buffer_area)

    def test_batched_runs_take_multiple_iterations(self):
        outcome = run_closure(
            generate_circuit(SPEC), config=CFG, workers=1,
            closure=ClosureConfig(batch_size=2))
        assert outcome.converged
        assert outcome.iterations_to_converge >= 2
        delays = [it.critical_delay for it in outcome.iterations]
        assert all(delays[i] >= delays[i + 1] - 1e-6
                   for i in range(len(delays) - 1))

    def test_deterministic_across_runs(self, result):
        again = run_closure(generate_circuit(SPEC), config=CFG,
                            closure=ClosureConfig(), workers=1)
        assert again.signatures() == result.signatures()
        assert again.critical_delay == result.critical_delay
        assert again.iterations_to_converge == result.iterations_to_converge


class TestOrderingPolicyEquivalence:
    """Acceptance criterion: every policy closes validly, and ordering
    genuinely matters — criticality beats fanout on iterations-to-
    converge for the pinned COMPARE_SPEC circuit."""

    @pytest.fixture(scope="class")
    def by_policy(self):
        outcomes = {}
        for order in ("criticality", "fanout", "slack_weighted", "learned"):
            outcomes[order] = run_closure(
                generate_circuit(COMPARE_SPEC), config=CFG, workers=1,
                closure=ClosureConfig(order=order, batch_size=1,
                                      max_iterations=14))
        return outcomes

    def test_every_policy_reaches_valid_closure(self, by_policy):
        for order, outcome in by_policy.items():
            assert outcome.converged, f"{order} did not converge"
            assert outcome.policy == order
            for tree in outcome.trees.values():
                validate_tree(tree)
            slacks = [it.worst_slack for it in outcome.iterations]
            assert all(slacks[i] <= slacks[i + 1] + 1e-6
                       for i in range(len(slacks) - 1)), order

    def test_criticality_beats_fanout_on_iterations(self, by_policy):
        assert (by_policy["criticality"].iterations_to_converge
                < by_policy["fanout"].iterations_to_converge)


class TestServiceIntegration:
    def test_shared_service_caches_across_closure_runs(self):
        with OptimizationService(tech=TECH, config=CFG,
                                 cache=ResultCache(), workers=1) as service:
            first = run_closure(generate_circuit(SPEC), service=service,
                                closure=ClosureConfig())
            second = run_closure(generate_circuit(SPEC), service=service,
                                 closure=ClosureConfig())
        assert first.signatures() == second.signatures()
        assert sum(it.cache_hits for it in first.iterations) == 0
        # Same circuit, same canonical nets: the rerun is all cache hits.
        assert (sum(it.cache_hits for it in second.iterations)
                == second.nets_optimized)

    def test_service_conflicts_with_explicit_knobs(self):
        with OptimizationService(tech=TECH, config=CFG,
                                 workers=1) as service:
            with pytest.raises(MerlinInputError, match="service"):
                run_closure(generate_circuit(SPEC), tech=TECH,
                            service=service)

    def test_recorder_sees_pipeline_metrics(self):
        recorder = Recorder()
        run_closure(generate_circuit(SPEC), config=CFG, workers=1,
                    closure=ClosureConfig(batch_size=3), recorder=recorder)
        report = recorder.report()
        assert report["counters"][metric.PIPELINE_ITERATIONS] >= 2
        assert report["counters"][metric.PIPELINE_NETS_REOPTIMIZED] >= 3
        events = report["events"].get(metric.EVENT_CLOSURE_ITERATION, [])
        assert len(events) == report["counters"][metric.PIPELINE_ITERATIONS]
        assert events[0]["policy"] == "criticality"


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"target_scale": 0.0},
        {"target_scale": 1.5},
        {"min_sinks": 0},
        {"max_iterations": 0},
        {"batch_size": 0},
        {"retime_tolerance_ps": -1.0},
    ])
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(MerlinInputError):
            ClosureConfig(**kwargs)

    def test_unknown_order_raises_at_run(self):
        with pytest.raises(MerlinInputError, match="unknown ordering"):
            run_closure(generate_circuit(SPEC), config=CFG,
                        closure=ClosureConfig(order="bogus"), workers=1)


class TestReport:
    def test_to_dict_is_json_serializable(self, result):
        body = result.to_dict()
        json.dumps(body)
        assert body["converged"] is True
        assert body["iterations_to_converge"] == len(body["iterations"])
        assert sorted(body["signatures"]) == sorted(result.trees)

    def test_include_trees_round_trips(self, result):
        body = result.to_dict(include_trees=True)
        json.dumps(body)
        assert sorted(body["trees"]) == sorted(result.trees)

    def test_iteration_reports_are_complete(self, result):
        for it in result.iterations:
            body = it.to_dict()
            assert body["reoptimized"] <= len(body["selected"])
            assert body["wall_s"] >= 0.0
            assert body["rolled_back"] is False
