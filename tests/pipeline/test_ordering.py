"""Tests for the pluggable net-ordering policy registry."""

from __future__ import annotations

import pytest

from repro.core.config import MerlinConfig
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.netlist.placement import place_netlist
from repro.netlist.sta import run_sta
from repro.pipeline import learned
from repro.pipeline.ordering import (
    FEATURE_NAMES,
    ORDERING_POLICIES,
    NetFeatures,
    OrderingPolicy,
    available_orderings,
    build_context,
    get_ordering,
    net_features,
    register_ordering,
)
from repro.resilience.errors import MerlinInputError
from repro.tech.technology import default_technology

TECH = default_technology()
SPEC = CircuitSpec(name="ordering", primary_inputs=5, primary_outputs=4,
                   logic_gates=16, levels=4, max_fanout=5, seed=13)


@pytest.fixture(scope="module")
def context():
    netlist = generate_circuit(SPEC)
    place_netlist(netlist)
    estimate = run_sta(netlist, TECH)
    sta = run_sta(netlist, TECH, target=0.88 * estimate.critical_delay)
    candidates = [n for n in netlist.nets if len(n.sinks) >= 2]
    assert len(candidates) >= 4, "spec too small for ranking tests"
    return build_context(netlist, sta, candidates)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"criticality", "fanout", "slack_weighted",
                "learned"} <= set(available_orderings())

    def test_get_ordering_returns_named_singletons(self):
        for name in available_orderings():
            policy = get_ordering(name)
            assert policy.name == name
            assert policy is ORDERING_POLICIES[name]
            assert policy.describe  # every policy documents itself

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(MerlinInputError, match="criticality"):
            get_ordering("bogus")  # staticcheck: ignore[REG-DANGLING-KEY]

    def test_duplicate_registration_raises(self):
        with pytest.raises(MerlinInputError, match="already registered"):
            @register_ordering("fanout")
            class Impostor(OrderingPolicy):
                def score(self, features):
                    return 0.0

    def test_same_class_reregistration_is_a_noop(self):
        # `python -m repro.pipeline.learned` executes the module twice
        # (once as itself, once as __main__); the second registration of
        # the *same* class must not explode or replace the singleton.
        before = ORDERING_POLICIES["fanout"]
        cls = type(before)
        register_ordering("fanout")(cls)
        assert ORDERING_POLICIES["fanout"] is before


class TestFeatures:
    def test_feature_vector_matches_declared_order(self, context):
        record = next(iter(context.features.values()))
        vector = record.vector()
        assert len(vector) == len(FEATURE_NAMES)
        assert vector[FEATURE_NAMES.index("fanout")] == record.fanout
        assert vector[FEATURE_NAMES.index("span")] == record.span

    def test_features_reflect_the_netlist(self, context):
        for name in context.candidates:
            net = next(n for n in context.netlist.nets if n.name == name)
            record = context.features[name]
            assert record.fanout == len(net.sinks)
            assert record.span >= 0.0
            assert record.total_sink_load > 0.0
            assert record.driver_resistance > 0.0
            assert record.min_sink_slack >= record.driver_slack - 1e9

    def test_net_features_standalone_matches_context(self, context):
        net = next(n for n in context.netlist.nets
                   if n.name == context.candidates[0])
        assert net_features(context.netlist, net,
                            context.sta) == context.features[net.name]


class TestRanking:
    @pytest.mark.parametrize("name", ["criticality", "fanout",
                                      "slack_weighted", "learned"])
    def test_rank_is_a_deterministic_permutation(self, context, name):
        policy = get_ordering(name)
        first = policy.rank(context)
        assert sorted(first) == sorted(context.candidates)
        assert policy.rank(context) == first

    def test_criticality_puts_the_latest_driver_first(self, context):
        ranked = get_ordering("criticality").rank(context)
        slacks = [context.features[n].driver_slack for n in ranked]
        # Most negative slack first; the tiny fanout tie-break may swap
        # nets whose slacks agree to float noise, hence the tolerance.
        assert all(slacks[i] <= slacks[i + 1] + 1e-3
                   for i in range(len(slacks) - 1))

    def test_fanout_orders_by_sink_count(self, context):
        ranked = get_ordering("fanout").rank(context)
        fanouts = [context.features[n].fanout for n in ranked]
        assert fanouts == sorted(fanouts, reverse=True)

    def test_ties_break_on_net_name(self):
        features = {
            name: NetFeatures(name=name, fanout=3, driver_slack=-5.0,
                              min_sink_slack=-1.0, span=100.0,
                              total_sink_load=30.0, driver_resistance=8.0)
            for name in ("z_net", "a_net", "m_net")
        }
        from repro.pipeline.ordering import OrderingContext

        ctx = OrderingContext(netlist=None, sta=None,
                              candidates=list(features), features=features)
        assert get_ordering("fanout").rank(ctx) == \
            ["a_net", "m_net", "z_net"]


class TestLearnedModel:
    def test_load_weights_falls_back_on_missing_file(self, tmp_path):
        weights = learned.load_weights(str(tmp_path / "missing.json"))
        assert weights.features == tuple(FEATURE_NAMES)

    def test_from_dict_rejects_wrong_version(self):
        record = learned.load_weights().to_dict()
        record["version"] = 999
        with pytest.raises(ValueError, match="incompatible"):
            learned.LearnedWeights.from_dict(record)

    def test_committed_weights_load_and_round_trip(self):
        weights = learned.load_weights()
        again = learned.LearnedWeights.from_dict(weights.to_dict())
        assert again == weights

    def test_train_recovers_a_linear_model(self):
        # Labels generated by a known linear rule must be fit (almost)
        # exactly — ridge lambda is tiny and the system is well-posed.
        true_coef = [2.0, -1.0, 0.5, 3.0, 0.0, 1.5]
        samples = [[float((i * (j + 3)) % 7) + (0.1 * j if i == j else 0.0)
                    for j in range(6)] for i in range(40)]
        labels = [10.0 + sum(c * x for c, x in zip(true_coef, row))
                  for row in samples]
        weights = learned.train(samples, labels)
        for row, label in zip(samples, labels):
            assert weights.predict(row) == pytest.approx(label, abs=1e-3)

    def test_train_rejects_misaligned_input(self):
        with pytest.raises(ValueError):
            learned.train([[1.0] * 6], [])

    def test_solve_raises_on_singular_system(self):
        with pytest.raises(ValueError, match="singular"):
            learned._solve([[1.0, 2.0], [2.0, 4.0]], [1.0, 2.0])

    def test_save_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "weights.json")
        weights = learned.load_weights()
        learned.save_weights(weights, path)
        assert learned.load_weights(path) == weights

    def test_learned_policy_scores_with_lateness_boost(self, context):
        policy = get_ordering("learned")
        record = next(iter(context.features.values()))
        base = policy.weights.predict(record.vector())
        import dataclasses

        late = dataclasses.replace(record, driver_slack=record.driver_slack)
        assert policy.score(late) == pytest.approx(
            base + max(0.0, -record.driver_slack))
