"""Chaos coverage for the closure pipeline: faults mid-closure.

The closure driver inherits the service's resilience story; these tests
prove the *pipeline-level* consequences:

* a **killed worker** mid-closure is retried by the service — closure
  converges to the same trees as a clean run;
* a **hung worker** (every job timing out) leaves the nets on their
  star estimates — closure still terminates with a valid, empty-tree
  result instead of spinning on the failing nets;
* an **exhausted budget** degrades nets down the ladder — closure
  accepts the degraded trees (tagged in ``degraded_nets``) and the
  service never caches them, so a later iteration (or run) recomputes
  at full quality rather than replaying the fallback.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.config import MerlinConfig
from repro.instrument import names as metric
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.pipeline import ClosureConfig, run_closure
from repro.resilience.faults import FaultPlan, FaultSpec, use_fault_plan
from repro.routing.validate import validate_tree
from repro.service import OptimizationService, ResultCache
from repro.tech.technology import default_technology

TECH = default_technology()
CFG = MerlinConfig.test_preset()
SPEC = CircuitSpec(name="chaos_closure", primary_inputs=4,
                   primary_outputs=3, logic_gates=10, levels=3,
                   max_fanout=4, seed=3)

FORK = multiprocessing.get_start_method() == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="pool-path chaos relies on fork inheritance")


def _service(**kwargs):
    kwargs.setdefault("tech", TECH)
    kwargs.setdefault("config", CFG)
    kwargs.setdefault("cache", ResultCache())
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("pool_retry_backoff_s", 0.0)
    return OptimizationService(**kwargs)


@needs_fork
def test_killed_worker_mid_closure_still_converges_clean(tmp_path):
    clean = run_closure(generate_circuit(SPEC), config=CFG,
                        closure=ClosureConfig(), workers=1)

    plan = FaultPlan(seed=1, specs=(
        FaultSpec(site="service.worker", kind="crash", times=1,
                  ledger=str(tmp_path / "closure.ledger")),
    ))
    with use_fault_plan(plan):
        with _service(workers=2) as service:
            chaotic = run_closure(generate_circuit(SPEC), service=service,
                                  closure=ClosureConfig())
            stats = service.stats()

    assert chaotic.converged
    assert not chaotic.degraded_nets
    assert chaotic.signatures() == clean.signatures()
    assert chaotic.critical_delay == clean.critical_delay
    assert stats["counters"][metric.RESILIENCE_POOL_REBUILDS] >= 1


@needs_fork
def test_hung_workers_mid_closure_terminate_with_a_valid_result():
    # Every job hangs past the service timeout: all optimizations fail,
    # the nets keep their star estimates, and closure must converge
    # (the failed attempts are recorded, so nothing is retried forever).
    plan = FaultPlan(seed=4, specs=(
        FaultSpec(site="service.worker", kind="hang", hang_s=0.5,
                  times=None),
    ))
    with use_fault_plan(plan):
        with _service(workers=2, job_timeout_s=0.05) as service:
            outcome = run_closure(generate_circuit(SPEC), service=service,
                                  closure=ClosureConfig())

    assert outcome.converged
    assert outcome.nets_optimized == 0
    assert not outcome.trees
    # With nothing optimized the final delay is the star estimate.
    assert outcome.critical_delay == pytest.approx(outcome.estimate_delay)
    failed = {name for it in outcome.iterations for name in it.failed}
    assert failed  # the failures were reported, not swallowed
    assert outcome.iterations_to_converge <= 2


def test_budget_exhaustion_degrades_and_is_never_cached():
    with _service(budget_ops=1) as service:
        outcome = run_closure(generate_circuit(SPEC), service=service,
                              closure=ClosureConfig())
        stats = service.stats()

    assert outcome.converged
    for tree in outcome.trees.values():
        validate_tree(tree)
    delays = [it.critical_delay for it in outcome.iterations]
    assert all(delays[i] >= delays[i + 1] - 1e-6
               for i in range(len(delays) - 1))
    # Every optimized net rode the ladder, and none of those degraded
    # payloads went into the cache — a later iteration or run recomputes
    # them at full quality instead of replaying the fallback.
    if outcome.trees:
        assert outcome.degraded_nets == set(outcome.trees)
    assert stats["cache"]["size"] == 0
    assert stats["counters"][metric.RESILIENCE_DEGRADED] >= 1


def test_degraded_nets_are_recomputed_at_full_quality_later():
    cache = ResultCache()
    with _service(cache=cache, budget_ops=1) as tight:
        degraded_run = run_closure(generate_circuit(SPEC), service=tight,
                                   closure=ClosureConfig())
    with _service(cache=cache) as full:
        clean_run = run_closure(generate_circuit(SPEC), service=full,
                                closure=ClosureConfig())

    assert not clean_run.degraded_nets
    # The degraded run left nothing in the shared cache, so the clean
    # run computed everything fresh (zero hits) at full quality.
    assert sum(it.cache_hits for it in clean_run.iterations) == 0
    if degraded_run.trees and clean_run.trees:
        assert degraded_run.signatures() != clean_run.signatures()
