"""Tests for repro.routing.tree."""

import pytest

from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    SteinerNode,
)
from repro.tech.buffer import Buffer

BUF = Buffer("B", input_cap=5.0, drive_resistance=2.0,
             intrinsic_delay=40.0, area=30.0)


def two_sink_net():
    return Net("n", Point(0, 0), (
        Sink("a", Point(100, 0), load=10.0, required_time=100.0),
        Sink("b", Point(0, 100), load=20.0, required_time=200.0),
    ))


def build_sample_tree():
    """source -> buffer at (50,0) -> {sink a, steiner -> sink b}."""
    net = two_sink_net()
    root = SourceNode(Point(0, 0))
    buffer_node = BufferNode(Point(50, 0), BUF)
    root.add_child(buffer_node)
    buffer_node.add_child(SinkNode(Point(100, 0), 0))
    steiner = SteinerNode(Point(50, 50))
    buffer_node.add_child(steiner)
    steiner.add_child(SinkNode(Point(0, 100), 1))
    return RoutingTree(net=net, root=root)


class TestTreeStructure:
    def test_walk_preorder(self):
        tree = build_sample_tree()
        kinds = [node.kind for node in tree.walk()]
        assert kinds == ["SourceNode", "BufferNode", "SinkNode",
                         "SteinerNode", "SinkNode"]

    def test_edge_length_is_manhattan(self):
        tree = build_sample_tree()
        root = tree.root
        assert root.edge_length(root.children[0]) == 50.0

    def test_sink_nodes_are_leaves(self):
        node = SinkNode(Point(0, 0), 0)
        with pytest.raises(TypeError):
            node.add_child(SteinerNode(Point(1, 1)))

    def test_buffer_nodes_and_sink_nodes_listed(self):
        tree = build_sample_tree()
        assert len(tree.buffer_nodes) == 1
        assert {n.sink_index for n in tree.sink_nodes} == {0, 1}


class TestTreeMetrics:
    def test_buffer_area(self):
        assert build_sample_tree().buffer_area == 30.0

    def test_wire_length(self):
        tree = build_sample_tree()
        # 50 (src->buf) + 50 (buf->a) + 50 (buf->steiner) + 100 (steiner->b)
        assert tree.wire_length == 250.0


class TestSimplified:
    def test_pass_through_steiner_collapsed(self):
        net = two_sink_net()
        root = SourceNode(Point(0, 0))
        passthrough = SteinerNode(Point(0, 0))  # same position, one child
        root.add_child(passthrough)
        passthrough.add_child(SinkNode(Point(100, 0), 0))
        steiner2 = SteinerNode(Point(0, 0))
        root.add_child(steiner2)
        steiner2.add_child(SinkNode(Point(0, 100), 1))
        tree = RoutingTree(net=net, root=root).simplified()
        # Both zero-length pass-through Steiner nodes are gone.
        kinds = [n.kind for n in tree.walk()]
        assert kinds == ["SourceNode", "SinkNode", "SinkNode"]

    def test_simplified_preserves_metrics(self):
        tree = build_sample_tree()
        simplified = tree.simplified()
        assert simplified.wire_length == tree.wire_length
        assert simplified.buffer_area == tree.buffer_area

    def test_simplified_is_a_copy(self):
        tree = build_sample_tree()
        simplified = tree.simplified()
        assert simplified.root is not tree.root
