"""Tests for repro.routing.evaluate — hand-computed Elmore references."""

import pytest

from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.evaluate import evaluate_tree
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    SteinerNode,
)
from repro.tech.buffer import Buffer
from repro.tech.delay import LinearGateDelay
from repro.tech.library import make_library
from repro.tech.technology import Technology
from repro.tech.wire import WireParasitics

#: Round-number parasitics so delays are hand-checkable.
TECH = Technology(
    wire=WireParasitics(resistance_per_um=1e-3, capacitance_per_um=0.1),
    buffers=make_library(4),
    gate_delay=LinearGateDelay(),
    driver_resistance=2.0,
    driver_intrinsic=50.0,
)
BUF = Buffer("B", input_cap=5.0, drive_resistance=1.0,
             intrinsic_delay=20.0, area=30.0)


def single_sink_tree(length=100.0, load=10.0, req=1000.0):
    net = Net("n", Point(0, 0),
              (Sink("a", Point(length, 0), load=load, required_time=req),))
    root = SourceNode(Point(0, 0))
    root.add_child(SinkNode(Point(length, 0), 0))
    return net, RoutingTree(net=net, root=root)


class TestSingleWire:
    def test_hand_computed_arrival(self):
        """driver: 50 + 2*(10 + 10) = 90; wire: 0.1*(5 + 10) = 1.5."""
        net, tree = single_sink_tree()
        ev = evaluate_tree(tree, TECH)
        assert ev.driver_load == pytest.approx(20.0)   # 10 fF wire + 10 sink
        assert ev.sink_arrivals[0] == pytest.approx(91.5)
        assert ev.required_time_at_driver == pytest.approx(1000.0 - 91.5)
        assert ev.delay == pytest.approx(91.5)

    def test_zero_length_wire(self):
        net = Net("n", Point(0, 0),
                  (Sink("a", Point(0, 0), load=10.0, required_time=100.0),))
        root = SourceNode(Point(0, 0))
        root.add_child(SinkNode(Point(0, 0), 0))
        ev = evaluate_tree(RoutingTree(net=net, root=root), TECH)
        # Only the driver delay: 50 + 2*10 = 70.
        assert ev.sink_arrivals[0] == pytest.approx(70.0)


class TestBufferedPath:
    def test_buffer_decouples_downstream_load(self):
        """source -> 100um -> buffer -> 100um -> sink."""
        net = Net("n", Point(0, 0),
                  (Sink("a", Point(200, 0), load=10.0, required_time=1000.0),))
        root = SourceNode(Point(0, 0))
        buffer_node = BufferNode(Point(100, 0), BUF)
        root.add_child(buffer_node)
        buffer_node.add_child(SinkNode(Point(200, 0), 0))
        ev = evaluate_tree(RoutingTree(net=net, root=root), TECH)
        # Driver sees wire (10 fF) + buffer input (5 fF) = 15 fF.
        assert ev.driver_load == pytest.approx(15.0)
        # driver 50 + 2*15 = 80; wire1 0.1*(5+5) = 1; buffer 20 + 1*20 = 40
        # (buffer load: 10 fF wire + 10 fF sink); wire2 0.1*(5+10) = 1.5.
        assert ev.sink_arrivals[0] == pytest.approx(80 + 1 + 40 + 1.5)
        assert ev.buffer_count == 1
        assert ev.buffer_area == 30.0


class TestBranching:
    def test_two_branch_steiner(self):
        net = Net("n", Point(0, 0), (
            Sink("a", Point(100, 50), load=10.0, required_time=500.0),
            Sink("b", Point(100, -50), load=20.0, required_time=800.0),
        ))
        root = SourceNode(Point(0, 0))
        steiner = SteinerNode(Point(100, 0))
        root.add_child(steiner)
        steiner.add_child(SinkNode(Point(100, 50), 0))
        steiner.add_child(SinkNode(Point(100, -50), 1))
        ev = evaluate_tree(RoutingTree(net=net, root=root), TECH)
        # Trunk load: 10 (wire) + [5 + 10] + [5 + 20] = 50 fF.
        assert ev.driver_load == pytest.approx(50.0)
        # Arrivals differ only in the leaf wires' Elmore terms.
        trunk = 50 + 2 * 50 + 0.1 * (5 + 40)
        assert ev.sink_arrivals[0] == pytest.approx(trunk + 0.05 * (2.5 + 10))
        assert ev.sink_arrivals[1] == pytest.approx(trunk + 0.05 * (2.5 + 20))
        # Required time limited by the tighter sink (a).
        assert ev.required_time_at_driver == pytest.approx(
            500.0 - ev.sink_arrivals[0])

    def test_missing_sink_detected(self):
        net = Net("n", Point(0, 0), (
            Sink("a", Point(100, 0), load=10.0, required_time=500.0),
            Sink("b", Point(0, 100), load=10.0, required_time=500.0),
        ))
        root = SourceNode(Point(0, 0))
        root.add_child(SinkNode(Point(100, 0), 0))
        with pytest.raises(ValueError, match="does not reach"):
            evaluate_tree(RoutingTree(net=net, root=root), TECH)


class TestDriverOverrides:
    def test_net_driver_params_override_technology(self):
        net, tree = single_sink_tree()
        strong = Net(net.name, net.source, net.sinks,
                     driver_resistance=0.5, driver_intrinsic=10.0)
        fast = evaluate_tree(RoutingTree(net=strong, root=tree.root), TECH)
        slow = evaluate_tree(tree, TECH)
        assert fast.sink_arrivals[0] < slow.sink_arrivals[0]

    def test_delay_is_max_req_minus_driver_req(self):
        net, tree = single_sink_tree()
        ev = evaluate_tree(tree, TECH)
        assert ev.delay == pytest.approx(
            net.max_required_time - ev.required_time_at_driver)
