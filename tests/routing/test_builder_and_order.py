"""Tests for repro.routing.builder, sink_order, validate, export."""

import pytest

from repro.curves.ops import (
    buffer_solution,
    extend_solution,
    join_solutions,
)
from repro.curves.solution import DriverArm, Solution, sink_leaf_solution
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.builder import build_tree
from repro.routing.evaluate import evaluate_tree
from repro.routing.export import tree_to_dict, tree_to_dot
from repro.routing.sink_order import extract_sink_order
from repro.routing.tree import BufferNode, SinkNode, SourceNode
from repro.routing.validate import TreeValidationError, validate_tree
from repro.tech.technology import default_technology

TECH = default_technology()


def two_sink_net():
    return Net("n", Point(0, 0), (
        Sink("a", Point(100, 0), load=10.0, required_time=500.0),
        Sink("b", Point(0, 100), load=20.0, required_time=800.0),
    ))


def joined_solution(net):
    """Join both sinks at the source point (manually composed)."""
    a = sink_leaf_solution(net.sink(0).position, 0, 10.0, 500.0)
    b = sink_leaf_solution(net.sink(1).position, 1, 20.0, 800.0)
    a_at_src = extend_solution(a, net.source, TECH)
    b_at_src = extend_solution(b, net.source, TECH)
    return join_solutions(a_at_src, b_at_src)


class TestBuildTree:
    def test_builds_source_rooted_tree(self):
        net = two_sink_net()
        tree = build_tree(net, joined_solution(net))
        assert isinstance(tree.root, SourceNode)
        assert tree.root.position == net.source
        validate_tree(tree)

    def test_join_order_preserved_left_to_right(self):
        net = two_sink_net()
        tree = build_tree(net, joined_solution(net))
        assert extract_sink_order(tree) == [0, 1]

    def test_buffered_solution_materializes_buffer_node(self):
        net = two_sink_net()
        solution = buffer_solution(joined_solution(net),
                                   TECH.buffers.smallest, TECH)
        tree = build_tree(net, solution)
        assert len(tree.buffer_nodes) == 1
        assert tree.buffer_nodes[0].buffer.name == TECH.buffers.smallest.name

    def test_driver_arm_detail(self):
        net = two_sink_net()
        inner = joined_solution(net)
        final = Solution(net.source, inner.load, inner.required_time - 50,
                         inner.area, DriverArm(inner, 0.0))
        tree = build_tree(net, final)
        assert isinstance(tree.root, SourceNode)
        validate_tree(tree)

    def test_dp_attributes_match_evaluator(self):
        """The DP's (load, required time) must equal Elmore re-evaluation."""
        net = two_sink_net()
        inner = joined_solution(net)
        delay = TECH.driver_delay(inner.load)
        final = Solution(net.source, inner.load,
                         inner.required_time - delay, inner.area,
                         DriverArm(inner, 0.0))
        tree = build_tree(net, final)
        ev = evaluate_tree(tree, TECH)
        assert ev.required_time_at_driver == pytest.approx(
            final.required_time)
        assert ev.driver_load == pytest.approx(final.load)


class TestSinkOrder:
    def test_missing_sink_rejected(self):
        net = two_sink_net()
        root = SourceNode(net.source)
        root.add_child(SinkNode(net.sink(0).position, 0))
        from repro.routing.tree import RoutingTree

        with pytest.raises(ValueError, match="not a permutation"):
            extract_sink_order(RoutingTree(net=net, root=root))

    def test_duplicate_sink_rejected(self):
        net = two_sink_net()
        root = SourceNode(net.source)
        root.add_child(SinkNode(net.sink(0).position, 0))
        root.add_child(SinkNode(net.sink(0).position, 0))
        from repro.routing.tree import RoutingTree

        with pytest.raises(ValueError, match="not a permutation"):
            extract_sink_order(RoutingTree(net=net, root=root))


class TestValidate:
    def test_wrong_sink_position_detected(self):
        net = two_sink_net()
        root = SourceNode(net.source)
        root.add_child(SinkNode(Point(5, 5), 0))  # pin is at (100, 0)
        root.add_child(SinkNode(net.sink(1).position, 1))
        from repro.routing.tree import RoutingTree

        with pytest.raises(TreeValidationError, match="placed at"):
            validate_tree(RoutingTree(net=net, root=root))

    def test_missing_coverage_detected(self):
        net = two_sink_net()
        root = SourceNode(net.source)
        root.add_child(SinkNode(net.sink(0).position, 0))
        from repro.routing.tree import RoutingTree

        with pytest.raises(TreeValidationError, match="coverage"):
            validate_tree(RoutingTree(net=net, root=root))

    def test_fanout_bound_checked(self):
        net = Net("n", Point(0, 0), tuple(
            Sink(f"s{i}", Point(10.0 * (i + 1), 0), 10.0, 100.0)
            for i in range(5)))
        root = SourceNode(net.source)
        for i in range(5):
            root.add_child(SinkNode(net.sink(i).position, i))
        from repro.routing.tree import RoutingTree

        tree = RoutingTree(net=net, root=root)
        validate_tree(tree)  # unconstrained: fine
        with pytest.raises(TreeValidationError, match="alpha"):
            validate_tree(tree, max_buffer_fanout=4)


class TestExport:
    def test_tree_to_dict_roundtrips_structure(self):
        net = two_sink_net()
        tree = build_tree(net, joined_solution(net))
        data = tree_to_dict(tree)
        assert data["net"] == "n"
        assert data["root"]["kind"] == "SourceNode"
        assert "children" in data["root"]

    def test_tree_to_dict_is_json_serializable(self):
        import json

        net = two_sink_net()
        tree = build_tree(net, joined_solution(net))
        json.dumps(tree_to_dict(tree))

    def test_tree_to_dot_mentions_all_sinks(self):
        net = two_sink_net()
        solution = buffer_solution(joined_solution(net),
                                   TECH.buffers.smallest, TECH)
        dot = tree_to_dot(build_tree(net, solution))
        assert dot.startswith("digraph")
        assert "a" in dot and "b" in dot
        assert TECH.buffers.smallest.name in dot
