"""Tests for repro.tech.delay and repro.tech.wire."""

import pytest

from repro.tech.buffer import Buffer
from repro.tech.delay import (
    FourParameterGateDelay,
    LinearGateDelay,
    elmore_wire_delay,
)
from repro.tech.wire import WireParasitics

BUF = Buffer("B", input_cap=5.0, drive_resistance=2.0,
             intrinsic_delay=40.0, area=30.0)


class TestWireParasitics:
    def test_linear_scaling(self):
        wire = WireParasitics(resistance_per_um=1e-4, capacitance_per_um=0.2)
        assert wire.resistance(100.0) == pytest.approx(1e-2)
        assert wire.capacitance(100.0) == pytest.approx(20.0)

    def test_negative_parasitics_rejected(self):
        with pytest.raises(ValueError):
            WireParasitics(resistance_per_um=-1.0)


class TestElmoreWireDelay:
    WIRE = WireParasitics(resistance_per_um=1e-4, capacitance_per_um=0.2)

    def test_hand_computed_value(self):
        # R = 0.01 kOhm, C = 20 fF, downstream 10 fF:
        # d = 0.01 * (10 + 10) = 0.2 ps
        delay = elmore_wire_delay(self.WIRE, 100.0, 10.0)
        assert delay == pytest.approx(0.2)

    def test_zero_length_is_free(self):
        assert elmore_wire_delay(self.WIRE, 0.0, 100.0) == 0.0

    def test_quadratic_in_length_at_zero_load(self):
        d1 = elmore_wire_delay(self.WIRE, 100.0, 0.0)
        d2 = elmore_wire_delay(self.WIRE, 200.0, 0.0)
        assert d2 == pytest.approx(4.0 * d1)

    def test_monotone_in_downstream_load(self):
        d_small = elmore_wire_delay(self.WIRE, 50.0, 1.0)
        d_large = elmore_wire_delay(self.WIRE, 50.0, 100.0)
        assert d_large > d_small

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            elmore_wire_delay(self.WIRE, -1.0, 0.0)
        with pytest.raises(ValueError):
            elmore_wire_delay(self.WIRE, 1.0, -0.5)


class TestLinearGateDelay:
    MODEL = LinearGateDelay()

    def test_buffer_delay_formula(self):
        assert self.MODEL.buffer_delay(BUF, 10.0) == pytest.approx(60.0)

    def test_driver_delay_formula(self):
        assert self.MODEL.driver_delay(3.0, 50.0, 10.0) == pytest.approx(80.0)

    def test_zero_load(self):
        assert self.MODEL.buffer_delay(BUF, 0.0) == pytest.approx(40.0)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            self.MODEL.buffer_delay(BUF, -1.0)


class TestFourParameterGateDelay:
    def test_reduces_to_linear_at_zero_slew(self):
        model = FourParameterGateDelay(nominal_slew=0.0)
        linear = LinearGateDelay()
        assert model.buffer_delay(BUF, 25.0) == \
            pytest.approx(linear.buffer_delay(BUF, 25.0))

    def test_slew_terms_add_delay(self):
        fast = FourParameterGateDelay(nominal_slew=0.0)
        slow = FourParameterGateDelay(nominal_slew=100.0)
        assert slow.buffer_delay(BUF, 25.0) > fast.buffer_delay(BUF, 25.0)

    def test_affine_in_load(self):
        """The DP's precomputed coefficients rely on affinity in the load."""
        model = FourParameterGateDelay()
        d0 = model.buffer_delay(BUF, 0.0)
        d1 = model.buffer_delay(BUF, 1.0)
        slope = d1 - d0
        for load in (3.0, 17.5, 240.0):
            assert model.buffer_delay(BUF, load) == \
                pytest.approx(d0 + slope * load)

    def test_monotone_in_load(self):
        model = FourParameterGateDelay()
        assert model.buffer_delay(BUF, 50.0) > model.buffer_delay(BUF, 5.0)

    def test_negative_slew_rejected(self):
        with pytest.raises(ValueError):
            FourParameterGateDelay(nominal_slew=-1.0)

    def test_driver_delay_uses_same_form(self):
        model = FourParameterGateDelay()
        base = model.driver_delay(2.0, 60.0, 0.0)
        loaded = model.driver_delay(2.0, 60.0, 10.0)
        assert loaded > base
