"""Tests for repro.tech.buffer."""

import pytest

from repro.tech.buffer import Buffer, BufferLibrary


def make_buffer(name="B", cap=5.0, res=2.0, intrinsic=40.0, area=30.0):
    return Buffer(name=name, input_cap=cap, drive_resistance=res,
                  intrinsic_delay=intrinsic, area=area)


class TestBuffer:
    def test_valid_buffer(self):
        b = make_buffer()
        assert b.input_cap == 5.0

    @pytest.mark.parametrize("field,value", [
        ("input_cap", 0.0),
        ("input_cap", -1.0),
        ("drive_resistance", 0.0),
        ("intrinsic_delay", -0.1),
        ("area", 0.0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(name="B", input_cap=5.0, drive_resistance=2.0,
                      intrinsic_delay=40.0, area=30.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            Buffer(**kwargs)


class TestBufferLibrary:
    def test_sorted_by_area(self):
        lib = BufferLibrary([
            make_buffer("big", area=100),
            make_buffer("small", area=10),
            make_buffer("mid", area=50),
        ])
        assert [b.name for b in lib] == ["small", "mid", "big"]

    def test_smallest_largest(self):
        lib = BufferLibrary([make_buffer("a", area=10),
                             make_buffer("b", area=99)])
        assert lib.smallest.name == "a"
        assert lib.largest.name == "b"

    def test_by_name(self):
        lib = BufferLibrary([make_buffer("x")])
        assert lib.by_name("x").name == "x"
        with pytest.raises(KeyError):
            lib.by_name("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            BufferLibrary([make_buffer("dup"), make_buffer("dup")])

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            BufferLibrary([])

    def test_indexing(self):
        lib = BufferLibrary([make_buffer("a", area=10),
                             make_buffer("b", area=20)])
        assert lib[0].name == "a"
        assert len(lib) == 2


class TestSubset:
    def make_lib(self, n=10):
        return BufferLibrary([make_buffer(f"b{i}", area=10.0 * (i + 1))
                              for i in range(n)])

    def test_subset_keeps_extremes(self):
        lib = self.make_lib()
        sub = lib.subset(4)
        assert len(sub) == 4
        assert sub.smallest.name == lib.smallest.name
        assert sub.largest.name == lib.largest.name

    def test_subset_larger_than_library_is_identity(self):
        lib = self.make_lib(3)
        assert len(lib.subset(10)) == 3

    def test_subset_of_one_picks_middle(self):
        lib = self.make_lib(9)
        sub = lib.subset(1)
        assert len(sub) == 1
        assert sub[0].name == "b4"

    def test_subset_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self.make_lib().subset(0)
