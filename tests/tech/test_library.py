"""Tests for repro.tech.library and repro.tech.technology."""

import pytest

from repro.tech.library import make_library
from repro.tech.technology import Technology, default_technology
from repro.tech.wire import WireParasitics
from repro.tech.delay import LinearGateDelay


class TestMakeLibrary:
    def test_default_size_is_34(self):
        """The paper's industrial library contains 34 buffers."""
        assert len(make_library()) == 34

    def test_strength_scaling_laws(self):
        lib = make_library(10)
        small, large = lib.smallest, lib.largest
        assert large.input_cap > small.input_cap
        assert large.drive_resistance < small.drive_resistance
        assert large.area > small.area
        assert large.intrinsic_delay >= small.intrinsic_delay

    def test_strength_range_is_30x(self):
        lib = make_library(34)
        ratio = lib.largest.input_cap / lib.smallest.input_cap
        assert ratio == pytest.approx(30.0, rel=1e-6)

    def test_unique_names(self):
        lib = make_library(34)
        names = [b.name for b in lib]
        assert len(set(names)) == 34

    def test_single_cell_library(self):
        lib = make_library(1)
        assert len(lib) == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_library(0)

    def test_bigger_buffers_drive_big_loads_faster(self):
        """The whole point of sizing: at large loads, big cells win."""
        lib = make_library(10)
        model = LinearGateDelay()
        heavy_load = 500.0
        assert model.buffer_delay(lib.largest, heavy_load) < \
            model.buffer_delay(lib.smallest, heavy_load)

    def test_small_buffers_win_at_tiny_loads(self):
        lib = make_library(10)
        model = LinearGateDelay()
        assert model.buffer_delay(lib.smallest, 1.0) < \
            model.buffer_delay(lib.largest, 1.0)


class TestTechnology:
    def test_default_technology_composition(self):
        tech = default_technology()
        assert len(tech.buffers) == 34
        assert tech.wire.resistance_per_um > 0

    def test_wire_helpers(self):
        tech = default_technology()
        assert tech.wire_cap(100.0) == pytest.approx(
            tech.wire.capacitance_per_um * 100.0)
        assert tech.wire_delay(0.0, 50.0) == 0.0

    def test_driver_delay_overrides(self):
        tech = default_technology()
        default = tech.driver_delay(10.0)
        stronger = tech.driver_delay(10.0, drive_resistance=0.1,
                                     intrinsic=0.0)
        assert stronger < default

    def test_with_buffers_replaces_library_only(self):
        tech = default_technology()
        thinner = tech.with_buffers(tech.buffers.subset(5))
        assert len(thinner.buffers) == 5
        assert thinner.wire is tech.wire
        assert len(tech.buffers) == 34  # original untouched
