"""Canonical-key semantics: what must collide, what must not."""

from __future__ import annotations

import json

import pytest

from tests.conftest import build_net
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.net import Net, Sink, make_net, net_from_dict, net_to_dict
from repro.service.canonical import (
    canonical_key,
    canonical_net_dict,
    canonical_request,
    technology_fingerprint,
)
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()


def _key(net, config=CONFIG, tech=TECH, objective=None):
    return canonical_key(net, tech, config, objective)


def test_identical_net_same_key():
    assert _key(build_net(4, seed=1)) == _key(build_net(4, seed=1))


def test_translation_equivalent_nets_collide():
    net = build_net(4, seed=3)
    moved = Net(
        name=net.name,
        source=net.source.translated(1234.5, -67.25),
        sinks=tuple(
            Sink(s.name, s.position.translated(1234.5, -67.25), s.load,
                 s.required_time)
            for s in net.sinks
        ),
    )
    assert _key(net) == _key(moved)


def test_rename_equivalent_nets_collide():
    net = build_net(3, seed=9, name="alpha")
    renamed = Net(
        name="omega",
        source=net.source,
        sinks=tuple(
            Sink(f"zz{i}", s.position, s.load, s.required_time)
            for i, s in enumerate(net.sinks)
        ),
    )
    assert _key(net) == _key(renamed)


def test_json_round_trip_collides_with_original():
    """Int-coordinate nets and their float twins share one key."""
    net = make_net("ints", (10, 0), [(901, 300, 12, 900)])
    round_tripped = net_from_dict(json.loads(json.dumps(net_to_dict(net))))
    assert _key(net) == _key(round_tripped)


def test_sink_attribute_changes_split_the_key():
    base = build_net(3, seed=2)
    def tweak(**changes):
        first = base.sinks[0]
        sink = Sink(
            name=first.name,
            position=changes.get("position", first.position),
            load=changes.get("load", first.load),
            required_time=changes.get("required_time",
                                      first.required_time),
        )
        return Net(name=base.name, source=base.source,
                   sinks=(sink,) + base.sinks[1:])

    assert _key(base) != _key(tweak(load=base.sinks[0].load + 1.0))
    assert _key(base) != _key(tweak(required_time=0.0))
    assert _key(base) != _key(
        tweak(position=base.sinks[0].position.translated(1.0, 0.0)))


def test_sink_order_is_part_of_the_key():
    base = build_net(3, seed=2)
    reordered = Net(name=base.name, source=base.source,
                    sinks=base.sinks[::-1])
    assert _key(base) != _key(reordered)


def test_driver_overrides_split_the_key():
    base = build_net(3, seed=2)
    driven = Net(name=base.name, source=base.source, sinks=base.sinks,
                 driver_resistance=0.5)
    assert _key(base) != _key(driven)


def test_config_knobs_split_the_key():
    net = build_net(3, seed=2)
    assert _key(net, config=CONFIG) != \
        _key(net, config=CONFIG.with_(alpha=CONFIG.alpha + 1))
    assert _key(net, config=CONFIG) != \
        _key(net, config=CONFIG.with_(max_iterations=99))


def test_scheduling_knobs_do_not_split_the_key():
    """workers/recorder/backend are not part of the problem."""
    net = build_net(3, seed=2)
    assert _key(net, config=CONFIG) == \
        _key(net, config=CONFIG.with_(workers=8))
    assert _key(net, config=CONFIG) == \
        _key(net, config=CONFIG.with_(backend="numpy"))


def test_technology_splits_the_key():
    net = build_net(3, seed=2)
    thin = TECH.with_buffers(TECH.buffers.subset(2))
    assert _key(net) != _key(net, tech=thin)
    assert technology_fingerprint(TECH) != technology_fingerprint(thin)


def test_objective_splits_the_key():
    net = build_net(3, seed=2)
    assert _key(net, objective=Objective.max_required_time()) != \
        _key(net, objective=Objective.min_area(required_time_floor=0.0))


def test_canonical_request_is_json_serializable():
    net = build_net(3, seed=2)
    request = canonical_request(net, TECH, CONFIG,
                                Objective.max_required_time())
    json.dumps(request)  # must not raise (infinities are stringified)
    assert request["net"] == canonical_net_dict(net)


def test_canonical_net_dict_is_source_relative():
    net = build_net(3, seed=4)
    canonical = canonical_net_dict(net)
    dx = net.sinks[0].position.x - net.source.x
    assert canonical["sinks"][0][0] == pytest.approx(dx, abs=1e-6)
    assert canonical["sinks"][0][0] == round(dx, 6)
