"""HTTP front end: round trips against an in-process server."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from tests.conftest import build_net
from repro.core.config import MerlinConfig
from repro.net import net_to_dict
from repro.routing.export import tree_from_dict, tree_signature
from repro.routing.validate import validate_tree
from repro.service import OptimizationService, ResultCache, make_server
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()


@pytest.fixture()
def server():
    service = OptimizationService(
        tech=TECH, config=CONFIG, cache=ResultCache(), workers=1)
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()
        thread.join(timeout=5)


def _url(httpd, path):
    host, port = httpd.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get_full(httpd, path):
    try:
        with urllib.request.urlopen(_url(httpd, path),
                                    timeout=10) as response:
            return (response.status,
                    json.loads(response.read().decode("utf-8")),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode()), \
            dict(error.headers)


def _get(httpd, path):
    status, body, _ = _get_full(httpd, path)
    return status, body


def _post_full(httpd, path, body):
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        _url(httpd, path), data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return (response.status, json.loads(response.read().decode()),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode()), \
            dict(error.headers)


def _post(httpd, path, body):
    status, payload, _ = _post_full(httpd, path, body)
    return status, payload


def test_healthz(server):
    status, body = _get(server, "/healthz")
    assert status == 200
    assert body == {"status": "ok"}


def test_optimize_round_trip_returns_a_valid_tree(server):
    net = build_net(3, seed=11)
    status, body = _post(server, "/optimize", {"net": net_to_dict(net)})
    assert status == 200
    assert body["ok"] and not body["cached"]
    tree = tree_from_dict(body["tree"], net, TECH.buffers)
    validate_tree(tree)
    assert tree_signature(tree) == body["tree_signature"]


def test_second_post_is_a_cache_hit_with_identical_signature(server):
    net = build_net(3, seed=12)
    payload = {"net": net_to_dict(net)}
    _, cold = _post(server, "/optimize", payload)
    status, warm = _post(server, "/optimize", payload)
    assert status == 200
    assert warm["cached"] is True
    assert warm["tree_signature"] == cold["tree_signature"]
    assert warm["tree"] == cold["tree"]

    _, stats = _get(server, "/stats")
    assert stats["cache"]["hits"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["counters"]["service.cache.hits"] == 1


def test_bare_net_payload_is_accepted(server):
    net = build_net(2, seed=13)
    status, body = _post(server, "/optimize", net_to_dict(net))
    assert status == 200 and body["ok"]


def test_bad_json_is_rejected(server):
    status, body = _post(server, "/optimize", b"{not json")
    assert status == 400
    assert "error" in body


def test_malformed_net_is_rejected(server):
    status, body = _post(server, "/optimize", {"net": {"name": "broken"}})
    assert status == 400
    assert "malformed" in body["error"]


def test_empty_body_is_rejected(server):
    status, _ = _post(server, "/optimize", b"")
    assert status == 400


def test_unknown_paths_are_404_in_the_v1_envelope(server):
    # Even pre-v1 clients hitting a dead path get the structured error
    # (there is no legacy 404 shape worth preserving).
    status, body, headers = _get_full(server, "/nope")
    assert status == 404
    assert headers["Content-Type"] == "application/json"
    assert body["api_version"] == "v1"
    assert body["result"] is None
    assert body["error"]["code"] == "unknown_path"
    assert body["error"]["category"] == "input"
    assert "/nope" in body["error"]["message"]
    status, body = _post(server, "/nope", {})
    assert status == 404
    assert body["error"]["code"] == "unknown_path"


def test_v1_paths_reject_wrong_methods_as_unknown(server):
    status, body, _ = _get_full(server, "/v1/optimize")
    assert status == 404
    assert body["error"]["code"] == "unknown_path"


def test_stats_reports_execution_mode(server):
    status, stats = _get(server, "/stats")
    assert status == 200
    assert stats["execution_mode"] == "serial"
    assert stats["workers"] == 1


def test_every_response_is_json_content_type(server):
    net = build_net(2, seed=14)
    for status, _, headers in (
        _get_full(server, "/healthz"),
        _get_full(server, "/stats"),
        _get_full(server, "/v1/healthz"),
        _post_full(server, "/optimize", {"net": net_to_dict(net)}),
        _post_full(server, "/v1/optimize", b"{not json"),
        _get_full(server, "/nope"),
    ):
        assert headers["Content-Type"] == "application/json"
        assert int(headers["Content-Length"]) > 0


# ----------------------------------------------------------------------
# the v1 surface: envelope goldens and legacy-shim equivalence
# ----------------------------------------------------------------------

ENVELOPE_KEYS = {"api_version", "request_id", "result", "error",
                 "degraded", "timing_ms"}


def _assert_envelope(body):
    assert set(body) == ENVELOPE_KEYS
    assert body["api_version"] == "v1"
    assert isinstance(body["request_id"], str) and body["request_id"]
    assert isinstance(body["timing_ms"], (int, float))
    assert (body["result"] is None) != (body["error"] is None)


def test_v1_optimize_success_envelope(server):
    net = build_net(3, seed=21)
    status, body, headers = _post_full(
        server, "/v1/optimize", {"net": net_to_dict(net)})
    assert status == 200
    assert "Deprecation" not in headers
    _assert_envelope(body)
    assert body["error"] is None and body["degraded"] is False
    result = body["result"]
    assert result["ok"] and not result["cached"]
    tree = tree_from_dict(result["tree"], net, TECH.buffers)
    validate_tree(tree)
    assert tree_signature(tree) == result["tree_signature"]


def test_v1_optimize_error_envelope(server):
    status, body, _ = _post_full(
        server, "/v1/optimize", {"net": {"name": "broken"}})
    assert status == 400
    _assert_envelope(body)
    assert body["result"] is None
    error = body["error"]
    assert set(error) == {"category", "code", "message", "detail"}
    assert error["category"] == "input"
    assert error["code"] == "malformed_net"
    assert error["detail"]["kind"] == "MalformedNetError"


def test_v1_healthz_and_stats_envelopes(server):
    status, body, _ = _get_full(server, "/v1/healthz")
    assert status == 200
    _assert_envelope(body)
    assert body["result"] == {"status": "ok"}
    status, body, _ = _get_full(server, "/v1/stats")
    assert status == 200
    _assert_envelope(body)
    assert body["result"]["workers"] == 1


def test_v1_closure_success_envelope(server):
    status, body, _ = _post_full(
        server, "/v1/closure",
        {"circuit": "b9", "order": "criticality", "batch_size": 4})
    assert status == 200
    _assert_envelope(body)
    assert body["result"]["converged"] is True
    assert body["result"]["circuit"] == "b9"


def test_v1_closure_error_envelope(server):
    status, body, _ = _post_full(server, "/v1/closure",
                                 {"circuit": "nope"})
    assert status == 400
    _assert_envelope(body)
    assert body["error"]["category"] == "input"
    assert "unknown circuit" in body["error"]["message"]


def test_legacy_paths_carry_deprecation_header_and_tick_the_counter(server):
    net = build_net(3, seed=22)
    status, _, headers = _post_full(server, "/optimize",
                                    {"net": net_to_dict(net)})
    assert status == 200
    assert headers["Deprecation"] == "true"
    _, _, headers = _get_full(server, "/healthz")
    assert headers["Deprecation"] == "true"
    _, stats = _get(server, "/stats")
    assert stats["counters"]["service.http.legacy_path"] >= 2


def test_legacy_shim_body_equals_the_v1_result_field(server):
    net = build_net(3, seed=23)
    payload = {"net": net_to_dict(net)}
    _, legacy = _post(server, "/optimize", payload)
    _, enveloped = _post(server, "/v1/optimize", payload)
    # Identical net through both surfaces: the shim body is exactly the
    # envelope's result, modulo the per-call timing and the cache flag
    # (the second call is the hit).
    result = enveloped["result"]
    assert result["cached"] is True
    drop = ("cached", "elapsed_s")
    assert {k: v for k, v in legacy.items() if k not in drop} == \
        {k: v for k, v in result.items() if k not in drop}


def test_legacy_error_shim_matches_the_v1_error_detail(server):
    bad = {"net": {"name": "broken"}}
    _, legacy = _post(server, "/optimize", bad)
    _, enveloped = _post(server, "/v1/optimize", bad)
    assert legacy["error"] == enveloped["error"]["message"]
    assert legacy["error_detail"] == enveloped["error"]["detail"]


# ----------------------------------------------------------------------
# Error-taxonomy status mapping
# ----------------------------------------------------------------------

def _serve(service):
    """Yieldless variant of the server fixture for custom services."""
    httpd = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd, thread


def _stop(httpd, thread, service):
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5)


def test_input_errors_are_400_with_a_field_precise_detail(server):
    net_payload = net_to_dict(build_net(3, seed=15))
    del net_payload["sinks"][1]["load"]
    status, body = _post(server, "/optimize", {"net": net_payload})
    assert status == 400
    assert "invalid net payload" in body["error"]
    detail = body["error_detail"]
    assert detail["category"] == "input"
    assert "sink #1" in detail["message"]
    assert "'load'" in detail["message"]


def _resource_error_runner(job):
    from repro.resilience.errors import PoolUnavailableError

    raise PoolUnavailableError("pool exhausted", stage="pool")


def _internal_error_runner(job):
    from repro.resilience.errors import MerlinInternalError

    raise MerlinInternalError("invariant violated", stage="engine")


def _status_for_runner(runner):
    from repro.service import engine as engine_mod

    service = OptimizationService(
        tech=TECH, config=CONFIG, cache=ResultCache(), workers=1)
    httpd, thread = _serve(service)
    original = engine_mod._JOB_RUNNER
    engine_mod._JOB_RUNNER = runner
    try:
        net = build_net(3, seed=16)
        return _post(httpd, "/optimize", {"net": net_to_dict(net)})
    finally:
        engine_mod._JOB_RUNNER = original
        _stop(httpd, thread, service)


def test_resource_errors_are_503():
    status, body = _status_for_runner(_resource_error_runner)
    assert status == 503
    assert not body["ok"]
    assert body["error_detail"]["category"] == "resource"
    assert body["error_detail"]["kind"] == "PoolUnavailableError"


def test_internal_errors_are_500():
    status, body = _status_for_runner(_internal_error_runner)
    assert status == 500
    assert not body["ok"]
    assert body["error_detail"]["category"] == "internal"


def test_degraded_results_are_200_and_carry_the_degradation_detail():
    from repro.baselines.star import buffered_star

    service = OptimizationService(
        tech=TECH, config=CONFIG, cache=ResultCache(), workers=1,
        budget_ops=1)
    httpd, thread = _serve(service)
    try:
        net = build_net(3, seed=17)
        status, body = _post(httpd, "/optimize", {"net": net_to_dict(net)})
    finally:
        _stop(httpd, thread, service)
    assert status == 200
    assert body["ok"] and body["degraded"]
    assert body["degradation"]["rung"] == "buffered_star"
    assert body["tree_signature"] == tree_signature(buffered_star(net, TECH))


# ----------------------------------------------------------------------
# POST /closure
# ----------------------------------------------------------------------

def test_closure_endpoint_runs_a_named_circuit(server):
    status, body = _post(server, "/closure",
                         {"circuit": "b9", "order": "criticality",
                          "batch_size": 4})
    assert status == 200
    assert body["converged"] is True
    assert body["circuit"] == "b9"
    assert body["policy"] == "criticality"
    assert body["iterations"]
    slacks = [it["worst_slack"] for it in body["iterations"]]
    assert all(slacks[i] <= slacks[i + 1] + 1e-6
               for i in range(len(slacks) - 1))
    assert body["nets_optimized"] == len(body["signatures"])
    assert "trees" not in body  # opt-in via include_trees


def test_closure_endpoint_accepts_an_inline_netlist(server):
    from repro.netlist.generator import CircuitSpec, generate_circuit
    from repro.netlist.io import netlist_to_dict

    spec = CircuitSpec(name="http_inline", primary_inputs=4,
                       primary_outputs=3, logic_gates=10, levels=3,
                       max_fanout=4, seed=7)
    status, body = _post(server, "/closure",
                         {"netlist": netlist_to_dict(generate_circuit(spec)),
                          "include_trees": True})
    assert status == 200
    assert body["circuit"] == "http_inline"
    assert body["converged"] is True
    assert sorted(body["trees"]) == sorted(body["signatures"])


def test_closure_endpoint_rejects_unknown_circuit(server):
    status, body = _post(server, "/closure", {"circuit": "nope"})
    assert status == 400
    assert "unknown circuit" in body["error"]
    assert body["error_detail"]["category"] == "input"


def test_closure_endpoint_rejects_unknown_order(server):
    status, body = _post(server, "/closure",
                         {"circuit": "b9", "order": "bogus"})
    assert status == 400
    assert "unknown ordering policy" in body["error"]


def test_closure_endpoint_rejects_bad_knobs(server):
    status, body = _post(server, "/closure",
                         {"circuit": "b9", "target_scale": 2.0})
    assert status == 400
    assert body["error_detail"]["category"] == "input"
