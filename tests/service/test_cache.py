"""ResultCache: LRU discipline, stats, and the disk tier."""

from __future__ import annotations

import json
import os

import pytest

from repro.service.cache import PAYLOAD_VERSION, ResultCache


def _payload(i):
    return {"cost": float(i), "tree": {"kind": "SourceNode"}}


def test_miss_then_hit():
    cache = ResultCache(capacity=4)
    assert cache.get("k1") is None
    cache.put("k1", _payload(1))
    assert cache.get("k1") == _payload(1)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["size"] == 1


def test_returned_payload_is_a_private_copy():
    cache = ResultCache()
    cache.put("k", _payload(1))
    out = cache.get("k")
    out["cost"] = 999.0
    out["tree"]["kind"] = "corrupted"
    assert cache.get("k") == _payload(1)


def test_lru_evicts_least_recently_used():
    cache = ResultCache(capacity=2)
    cache.put("a", _payload(1))
    cache.put("b", _payload(2))
    assert cache.get("a") is not None  # refresh a; b is now LRU
    cache.put("c", _payload(3))
    assert cache.get("b") is None
    assert cache.get("a") is not None and cache.get("c") is not None
    assert cache.stats()["evictions"] == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)


def test_clear_drops_memory():
    cache = ResultCache()
    cache.put("k", _payload(1))
    cache.clear()
    assert cache.get("k") is None


def test_disk_tier_round_trip(tmp_path):
    disk = str(tmp_path / "cache")
    first = ResultCache(capacity=4, disk_dir=disk)
    first.put("key1", _payload(7))
    # A fresh cache (fresh process, conceptually) warms from disk.
    second = ResultCache(capacity=4, disk_dir=disk)
    assert second.get("key1") == _payload(7)
    stats = second.stats()
    assert stats["disk_hits"] == 1 and stats["hits"] == 1
    # ... and the promoted entry now also hits in memory.
    assert second.get("key1") == _payload(7)
    assert second.stats()["disk_hits"] == 1


def test_disk_entries_survive_memory_eviction(tmp_path):
    disk = str(tmp_path / "cache")
    cache = ResultCache(capacity=1, disk_dir=disk)
    cache.put("a", _payload(1))
    cache.put("b", _payload(2))  # evicts a from memory, not from disk
    assert cache.get("a") == _payload(1)


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    disk = str(tmp_path / "cache")
    cache = ResultCache(disk_dir=disk)
    with open(os.path.join(disk, "bad.json"), "w") as handle:
        handle.write("{not json")
    assert cache.get("bad") is None


def test_stale_payload_version_is_a_miss(tmp_path):
    disk = str(tmp_path / "cache")
    cache = ResultCache(disk_dir=disk)
    with open(os.path.join(disk, "old.json"), "w") as handle:
        json.dump({"version": PAYLOAD_VERSION + 1,
                   "payload": _payload(1)}, handle)
    assert cache.get("old") is None


def test_memory_only_cache_has_no_disk_dir():
    assert ResultCache().stats()["disk_dir"] is None
