"""Graceful drain on both front ends, plus the SIGTERM path end to end.

The drain contract (shared by the sync threading server and the async
sharded tier): new work answers **503 + Retry-After** with the
``server_draining`` code, probes keep answering, in-flight requests run
to completion, and memory-tier cache entries the disk tier has not seen
are flushed before the listener closes.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time

from tests.conftest import build_net
from repro.client import MerlinClient, RetryPolicy
from repro.core.config import MerlinConfig
from repro.net import net_to_dict
from repro.serve.embedded import EmbeddedAsyncServer, EmbeddedSyncServer
from repro.service import OptimizationService, ResultCache
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()
SERVICE_KWARGS = dict(tech=TECH, config=CONFIG, workers=1)


def _client(server):
    client = MerlinClient(server.base_url,
                          retry=RetryPolicy(max_attempts=1))
    assert client.wait_healthy(timeout_s=10)
    return client


def _post_net(client, seed):
    return client.request("POST", "/v1/optimize",
                          {"net": net_to_dict(build_net(3, seed=seed))})


# ----------------------------------------------------------------------
# Sync front end
# ----------------------------------------------------------------------

def test_sync_drain_refuses_work_but_answers_probes(tmp_path):
    cache = ResultCache(disk_dir=str(tmp_path / "cache"))
    service = OptimizationService(cache=cache, **SERVICE_KWARGS)
    with EmbeddedSyncServer(service) as server:
        client = _client(server)
        assert _post_net(client, seed=80).status == 200

        # Hollow out the disk tier so the drain has something to flush.
        disk = str(tmp_path / "cache")
        for name in os.listdir(disk):
            os.unlink(os.path.join(disk, name))

        report = server.drain(timeout_s=5.0)
        assert report["drained"] is True and report["in_flight"] == 0
        assert report["flushed"] == 1  # the memory-only entry

        # New work: structured 503 + Retry-After.  Probes: still alive.
        refused = _post_net(client, seed=81)
        assert refused.status == 503
        assert refused.error["code"] == "server_draining"
        assert int(refused.headers.get("Retry-After", 0)) >= 1
        assert client.healthz() is True
        assert client.stats()["counters"]["serve.drain.refusals"] >= 1
    service.close()


def test_sync_drain_waits_for_in_flight_requests():
    # Gate the compute on an event so the request is *provably* in
    # flight when the drain starts — no timing poll, no flake.
    service = OptimizationService(**SERVICE_KWARGS)
    entered, release = threading.Event(), threading.Event()
    original = service.optimize

    def gated(net, **kwargs):
        entered.set()
        assert release.wait(timeout=60)
        return original(net, **kwargs)

    service.optimize = gated
    with EmbeddedSyncServer(service) as server:
        client = _client(server)
        outcome = {}

        def slow_request():
            outcome["response"] = _post_net(client, seed=82)

        worker = threading.Thread(target=slow_request)
        worker.start()
        assert entered.wait(timeout=30)  # admitted, inside the handler

        drain_box = {}
        drainer = threading.Thread(
            target=lambda: drain_box.update(server.drain(timeout_s=60.0)))
        drainer.start()
        # The drain is now waiting on the gated request, not cutting it
        # off; release the compute and everything unwinds.
        deadline = time.monotonic() + 10.0
        while not server._server.draining and time.monotonic() < deadline:
            time.sleep(0.005)
        release.set()
        drainer.join(timeout=60)
        worker.join(timeout=60)

        assert drain_box["drained"] is True
        assert outcome["response"].status == 200  # finished, not cut off


# ----------------------------------------------------------------------
# Async front end
# ----------------------------------------------------------------------

def test_async_drain_refuses_then_flushes_and_stops(tmp_path):
    disk = str(tmp_path / "cache")
    with EmbeddedAsyncServer(shards=2, disk_dir=disk,
                             **SERVICE_KWARGS) as server:
        client = _client(server)
        assert _post_net(client, seed=83).status == 200
        for name in os.listdir(disk):
            if name.endswith(".json"):
                os.unlink(os.path.join(disk, name))

        # Flip the gate by hand first: the refusal path must answer
        # while the listener is still up.
        server.server._draining = True
        refused = _post_net(client, seed=84)
        assert refused.status == 503
        assert refused.error["code"] == "server_draining"
        assert int(refused.headers.get("Retry-After", 0)) >= 1
        health = client.request("GET", "/v1/healthz").result
        assert health["status"] == "draining"

        report = server.drain(timeout_s=5.0)
        assert report["drained"] is True
        assert report["flushed"] == 1  # re-persisted from the shard LRU

        # The listener is gone: probes now fail at the transport layer.
        assert client.healthz() is False


# ----------------------------------------------------------------------
# SIGTERM end to end (the CLI's blocking sync entry point)
# ----------------------------------------------------------------------

def test_sigterm_drains_the_cli_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.getcwd(), "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--preset", "test", "--workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert match, f"no listen banner: {banner!r}"
        client = MerlinClient(f"http://127.0.0.1:{match.group(1)}",
                              retry=RetryPolicy(max_attempts=1))
        assert client.wait_healthy(timeout_s=30)
        assert _post_net(client, seed=85).status == 200

        proc.send_signal(signal.SIGTERM)
        remainder = proc.stdout.read()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait()
    assert "drained:" in remainder  # the drain report was printed
    assert proc.returncode == 0
