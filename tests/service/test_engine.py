"""OptimizationService: cache semantics, isolation, timeouts, fallback.

Failure injection works by swapping the module-level ``_JOB_RUNNER``
indirection: the pool entry point resolves it at call time, and worker
processes inherit the patched value via fork.  The pool-path injection
tests are skipped on platforms whose default start method is not fork
(the serial-path twins still run everywhere).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from tests.conftest import build_net
from repro.core.config import MerlinConfig
from repro.instrument import names as metric
from repro.net import Net, Sink
from repro.routing.validate import validate_tree
from repro.service import OptimizationService, ResultCache
from repro.service import engine as engine_mod
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()

FORK = multiprocessing.get_start_method() == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="pool-path injection relies on fork inheritance")


def _service(**kwargs):
    kwargs.setdefault("tech", TECH)
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("cache", ResultCache())
    kwargs.setdefault("workers", 1)
    return OptimizationService(**kwargs)


def _poison_runner(job):
    if "poison" in job.net.name:
        raise RuntimeError("injected failure")
    return engine_mod._run_job(job)


def _slow_runner(job):
    if "slow" in job.net.name:
        time.sleep(1.5)
    return engine_mod._run_job(job)


# ----------------------------------------------------------------------
# Cache semantics (the acceptance criterion)
# ----------------------------------------------------------------------

def test_cache_hit_is_bit_identical_to_cold_run():
    with _service() as service:
        net = build_net(3, seed=5)
        cold = service.optimize(net)
        hit = service.optimize(net)
    assert cold.ok and not cold.cached
    assert hit.ok and hit.cached
    assert hit.signature == cold.signature  # bit-identical topology
    assert hit.cost == cold.cost
    assert hit.evaluation == cold.evaluation
    validate_tree(hit.tree)


def test_cache_counters_track_hits_and_misses():
    with _service() as service:
        net = build_net(3, seed=5)
        service.optimize(net)
        service.optimize(net)
        stats = service.stats()
    assert stats["counters"][metric.SERVICE_CACHE_MISSES] == 1
    assert stats["counters"][metric.SERVICE_CACHE_HITS] == 1
    assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1
    assert stats["latency"][metric.SERVICE_REQUEST_LATENCY_S]["count"] == 2


def test_translated_net_hits_and_rebuilds_in_its_own_frame():
    with _service() as service:
        net = build_net(3, seed=6)
        moved = Net(
            name="moved",
            source=net.source.translated(500.0, -250.0),
            sinks=tuple(
                Sink(s.name, s.position.translated(500.0, -250.0),
                     s.load, s.required_time)
                for s in net.sinks
            ),
        )
        cold = service.optimize(net)
        hit = service.optimize(moved)
    assert hit.cached
    # Same topology, shifted frame: signatures differ by the offset but
    # the rebuilt tree is structurally valid for the *new* net ...
    validate_tree(hit.tree)
    assert hit.tree.net is moved
    # ... and translation-invariant metrics are preserved exactly.
    assert hit.evaluation == cold.evaluation
    assert hit.cost == cold.cost


def test_disk_cache_survives_service_restart(tmp_path):
    disk = str(tmp_path / "results")
    net = build_net(3, seed=7)
    with _service(cache=ResultCache(disk_dir=disk)) as first:
        cold = first.optimize(net)
    with _service(cache=ResultCache(disk_dir=disk)) as second:
        warm = second.optimize(net)
    assert warm.cached
    assert warm.signature == cold.signature


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------

def test_optimize_many_returns_results_in_order():
    nets = [build_net(3, seed=s, name=f"net{s}") for s in (1, 2, 3)]
    with _service(workers=2) as service:
        results = service.optimize_many(nets)
    assert [r.net_name for r in results] == ["net1", "net2", "net3"]
    assert all(r.ok for r in results)
    for result in results:
        validate_tree(result.tree)


def test_pool_and_serial_agree():
    nets = [build_net(3, seed=s, name=f"net{s}") for s in (4, 5)]
    with _service(workers=1) as serial:
        inline = serial.optimize_many(nets)
    with _service(workers=2) as pooled:
        warm = pooled.optimize_many(nets)
    assert [r.signature for r in inline] == [r.signature for r in warm]


def test_duplicate_nets_in_one_batch_hit_within_the_batch():
    net = build_net(3, seed=8)
    with _service() as service:
        results = service.optimize_many([net, net])
    assert not results[0].cached and results[1].cached
    assert results[0].signature == results[1].signature


# ----------------------------------------------------------------------
# Error isolation and timeouts
# ----------------------------------------------------------------------

def test_worker_exception_is_isolated_serial(monkeypatch):
    monkeypatch.setattr(engine_mod, "_JOB_RUNNER", _poison_runner)
    nets = [build_net(3, seed=1, name="ok1"),
            build_net(3, seed=2, name="poison"),
            build_net(3, seed=3, name="ok2")]
    with _service() as service:
        results = service.optimize_many(nets)
        stats = service.stats()
    assert [r.ok for r in results] == [True, False, True]
    assert "injected failure" in results[1].error
    assert stats["counters"][metric.SERVICE_JOB_FAILURES] == 1
    assert stats["counters"][metric.SERVICE_ERRORS] == 1


@needs_fork
def test_worker_exception_is_isolated_in_the_pool(monkeypatch):
    monkeypatch.setattr(engine_mod, "_JOB_RUNNER", _poison_runner)
    nets = [build_net(3, seed=1, name="ok1"),
            build_net(3, seed=2, name="poison"),
            build_net(3, seed=3, name="ok2")]
    with _service(workers=2) as service:
        results = service.optimize_many(nets)
    assert [r.ok for r in results] == [True, False, True]
    assert "injected failure" in results[1].error
    for result in (results[0], results[2]):
        validate_tree(result.tree)


@needs_fork
def test_job_timeout_does_not_fail_the_batch(monkeypatch):
    monkeypatch.setattr(engine_mod, "_JOB_RUNNER", _slow_runner)
    nets = [build_net(3, seed=1, name="slow"),
            build_net(3, seed=2, name="fast")]
    with _service(workers=2) as service:
        results = service.optimize_many(nets, timeout_s=0.25)
        stats = service.stats()
    assert not results[0].ok
    assert "timed out" in results[0].error
    assert results[1].ok
    assert stats["counters"][metric.SERVICE_JOB_TIMEOUTS] == 1


def test_failed_jobs_are_not_cached(monkeypatch):
    monkeypatch.setattr(engine_mod, "_JOB_RUNNER", _poison_runner)
    net = build_net(3, seed=2, name="poison")
    with _service() as service:
        first = service.optimize(net)
        monkeypatch.setattr(engine_mod, "_JOB_RUNNER", engine_mod._run_job)
        second = service.optimize(net)
    assert not first.ok
    assert second.ok and not second.cached  # the failure never cached


# ----------------------------------------------------------------------
# Degradation and lifecycle
# ----------------------------------------------------------------------

def test_serial_fallback_when_pool_unavailable():
    with _service(workers=4) as service:
        service._pool_disabled = "forced by test"
        results = service.optimize_many(
            [build_net(3, seed=s) for s in (1, 2)])
        stats = service.stats()
    assert all(r.ok for r in results)
    assert stats["execution_mode"] == "serial"
    assert stats["pool_disabled_reason"] == "forced by test"


def test_workers_default_comes_from_config():
    service = _service(config=CONFIG.with_(workers=3), workers=None)
    assert service.workers == 3
    service.close()


def test_workers_validation():
    with pytest.raises(ValueError):
        _service(workers=0)


def test_close_is_idempotent():
    service = _service(workers=2)
    service.optimize(build_net(3, seed=1))
    service.close()
    service.close()


def test_one_shot_optimize_many_helper():
    from repro.service import optimize_many

    nets = [build_net(3, seed=s, name=f"n{s}") for s in (1, 2)]
    results = optimize_many(nets, tech=TECH, config=CONFIG, workers=2)
    assert [r.net_name for r in results] == ["n1", "n2"]
    assert all(r.ok for r in results)
