"""The v1 wire protocol: codes, statuses, envelopes, path routing.

These are the schema goldens both front ends inherit — the sync server
and the async sharded server render through this module, so pinning the
shapes here pins them everywhere.
"""

from __future__ import annotations

import pytest

from repro.resilience.errors import (
    AdmissionRejectedError,
    MerlinInputError,
    UnknownPathError,
)
from repro.service.protocol import (
    API_VERSION,
    ENDPOINTS,
    LEGACY_PATHS,
    MAX_BODY_BYTES,
    EndpointOutcome,
    envelope,
    error_body,
    error_code,
    legacy_body,
    new_request_id,
    parse_json_bytes,
    split_path,
    status_for,
)


# ----------------------------------------------------------------------
# error codes and status mapping
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind, code", [
    ("MalformedNetError", "malformed_net"),
    ("MerlinInputError", "merlin_input"),
    ("PoolUnavailableError", "pool_unavailable"),
    ("JobTimeoutError", "job_timeout"),
    ("AdmissionRejectedError", "admission_rejected"),
    ("UnknownPathError", "unknown_path"),
    ("ShardUnavailableError", "shard_unavailable"),
])
def test_error_code_is_snake_case_without_suffix(kind, code):
    assert error_code(kind) == code


def test_status_follows_category_with_kind_overrides():
    assert status_for(MerlinInputError("x", stage="t").record) == 400
    assert status_for(
        AdmissionRejectedError("full", stage="t").record) == 429
    assert status_for(UnknownPathError("gone", stage="t").record) == 404


# ----------------------------------------------------------------------
# envelope / legacy rendering
# ----------------------------------------------------------------------

def test_success_envelope_golden_shape():
    outcome = EndpointOutcome(200, {"answer": 42})
    body = envelope(outcome, "rid-1", 1.23456)
    assert body == {
        "api_version": API_VERSION,
        "request_id": "rid-1",
        "result": {"answer": 42},
        "error": None,
        "degraded": False,
        "timing_ms": 1.235,
    }


def test_error_envelope_nulls_result_even_when_outcome_kept_one():
    record = MerlinInputError("bad sink", stage="net").record
    # Failed service jobs keep their legacy body in outcome.result; the
    # v1 renderer must still null it so result/error stay exclusive.
    outcome = EndpointOutcome(400, {"ok": False}, record)
    body = envelope(outcome, "rid-2", 0.5)
    assert body["result"] is None
    assert body["error"] == error_body(record)
    assert set(body["error"]) == {"category", "code", "message", "detail"}
    assert body["error"]["category"] == "input"
    assert body["error"]["code"] == "merlin_input"
    assert body["error"]["detail"] == record.to_dict()


def test_legacy_body_is_the_result_verbatim_or_the_old_error_shape():
    assert legacy_body(EndpointOutcome(200, {"ok": True})) == {"ok": True}
    record = MerlinInputError("nope", stage="http").record
    body = legacy_body(EndpointOutcome(400, None, record))
    assert body == {"error": "nope", "error_detail": record.to_dict()}


def test_exactly_one_of_result_and_error_is_non_null():
    ok = envelope(EndpointOutcome(200, {"x": 1}), "r", 0.0)
    bad = envelope(EndpointOutcome(
        400, None, MerlinInputError("no", stage="t").record), "r", 0.0)
    assert (ok["result"] is None) != (ok["error"] is None)
    assert (bad["result"] is None) != (bad["error"] is None)


# ----------------------------------------------------------------------
# path classification
# ----------------------------------------------------------------------

def test_split_path_classifies_all_three_surfaces():
    assert split_path("/v1/optimize") == (True, "optimize", False)
    assert split_path("/v1/healthz") == (True, "healthz", False)
    assert split_path("/v1/nope") == (True, None, False)
    for path in LEGACY_PATHS:
        is_v1, endpoint, is_legacy = split_path(path)
        assert (is_v1, is_legacy) == (False, True)
        assert ("POST", endpoint) in ENDPOINTS or \
            ("GET", endpoint) in ENDPOINTS
    assert split_path("/nowhere") == (False, None, False)


# ----------------------------------------------------------------------
# body parsing
# ----------------------------------------------------------------------

def test_parse_json_bytes_accepts_json_and_names_each_rejection():
    assert parse_json_bytes(b'{"a": 1}') == {"a": 1}
    with pytest.raises(MerlinInputError, match="empty request body"):
        parse_json_bytes(b"")
    with pytest.raises(MerlinInputError, match="exceeds"):
        parse_json_bytes(b"x" * (MAX_BODY_BYTES + 1))
    with pytest.raises(MerlinInputError, match="not valid JSON"):
        parse_json_bytes(b"{broken")


def test_request_ids_are_unique_and_process_tagged():
    import os

    ids = {new_request_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(rid.startswith(f"{os.getpid():x}-") for rid in ids)
