"""Tests for repro.core.grouping (χ structures, SINK_SET, bubble out)."""

import pytest

from repro.core.grouping import (
    Group,
    child_sizes,
    enumerate_groups,
    level_plan,
    make_group,
    stretch,
)


class TestStretch:
    def test_figure_10_values(self):
        assert stretch(0) == 0
        assert stretch(1) == 1
        assert stretch(2) == 1
        assert stretch(3) == 2

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            stretch(4)


class TestMakeGroup:
    def test_chi0_members_are_contiguous(self):
        group = make_group(r=5, size=3, e=0, n=10)
        assert group.member_positions == (3, 4, 5)
        assert group.left_hole is None and group.right_hole is None

    def test_chi1_right_bubble(self):
        """Figure 13 case 1: skip s_{R-1}."""
        group = make_group(r=5, size=3, e=1, n=10)
        assert group.span_left == 2
        assert group.member_positions == (2, 3, 5)
        assert group.right_hole == 4

    def test_chi2_left_bubble(self):
        """Figure 13 case 2: skip s_{R-L'+2}."""
        group = make_group(r=5, size=3, e=2, n=10)
        assert group.span_left == 2
        assert group.member_positions == (2, 4, 5)
        assert group.left_hole == 3

    def test_chi3_both_bubbles(self):
        """Figure 13 case 3: skip both border-adjacent positions."""
        group = make_group(r=5, size=2, e=3, n=10)
        assert group.span_left == 2
        assert group.member_positions == (2, 5)
        assert group.left_hole == 3 and group.right_hole == 4

    def test_single_sink_chi1_spans_two_positions(self):
        """The adjacent-swap mechanism: {s_r} occupying [r-1, r]."""
        group = make_group(r=4, size=1, e=1, n=10)
        assert group.member_positions == (4,)
        assert group.right_hole == 3

    def test_single_sink_chi3_invalid(self):
        """χ3 with one sink would need two colliding holes."""
        assert make_group(r=4, size=1, e=3, n=10) is None

    def test_span_out_of_range_invalid(self):
        assert make_group(r=1, size=3, e=0, n=10) is None
        assert make_group(r=12, size=3, e=0, n=10) is None
        assert make_group(r=2, size=2, e=3, n=10) is None  # span_left < 0

    def test_member_count_equals_size(self):
        for e in range(4):
            for size in range(1, 5):
                group = make_group(r=7, size=size, e=e, n=12)
                if group is not None:
                    assert len(group.member_positions) == size


class TestEnumerateGroups:
    def test_all_valid(self):
        for group in enumerate_groups(8, 3):
            assert group.span_left >= 0
            assert group.r < 8
            assert len(group.member_positions) == 3

    def test_bubbling_disabled_restricts_to_chi0(self):
        groups = enumerate_groups(8, 3, enable_bubbling=False)
        assert all(g.e == 0 for g in groups)
        assert len(groups) == 6  # r in 2..7

    def test_full_size_group_only_chi0(self):
        groups = enumerate_groups(5, 5)
        assert len(groups) == 1
        assert groups[0].e == 0 and groups[0].r == 4


class TestChildSizes:
    def test_alpha_bound(self):
        """Level fanout = (L - l) sinks + 1 virtual leaf <= alpha."""
        sizes = child_sizes(parent_size=7, alpha=4)
        assert list(sizes) == [4, 5, 6]
        for l in sizes:
            assert (7 - l) + 1 <= 4

    def test_small_parent_allows_single_sink_child(self):
        assert list(child_sizes(3, alpha=4)) == [1, 2]


class TestLevelPlan:
    def test_plain_nesting(self):
        parent = make_group(r=5, size=4, e=0, n=10)   # positions 2..5
        child = make_group(r=4, size=2, e=0, n=10)    # positions 3..4
        plan = level_plan(parent, child)
        assert plan is not None
        assert plan.leaves == (("sink", 2), ("group", None), ("sink", 5))

    def test_right_bubble_out(self):
        """Figure 5: the hole sink re-appears right after the group."""
        parent = make_group(r=5, size=4, e=0, n=10)   # positions 2..5
        child = make_group(r=4, size=2, e=1, n=10)    # span 2..4, hole at 3
        plan = level_plan(parent, child)
        assert plan is not None
        assert plan.leaves == (("group", None), ("sink", 3), ("sink", 5))

    def test_left_bubble_out(self):
        parent = make_group(r=5, size=4, e=0, n=10)   # positions 2..5
        child = make_group(r=5, size=2, e=2, n=10)    # span 3..5, hole at 4
        plan = level_plan(parent, child)
        assert plan is not None
        assert plan.leaves == (("sink", 2), ("sink", 4), ("group", None))

    def test_child_escaping_parent_span_rejected(self):
        parent = make_group(r=5, size=3, e=0, n=10)   # 3..5
        child = make_group(r=6, size=2, e=0, n=10)    # 5..6: escapes right
        assert level_plan(parent, child) is None

    def test_child_member_not_in_parent_rejected(self):
        """Figure 12: incompatible grouping structures are skipped."""
        parent = make_group(r=5, size=3, e=1, n=10)   # members 2,3,5 hole 4
        child = make_group(r=4, size=2, e=0, n=10)    # members 3,4
        assert level_plan(parent, child) is None      # 4 not in parent

    def test_child_as_large_as_parent_rejected(self):
        parent = make_group(r=5, size=3, e=0, n=10)
        child = make_group(r=5, size=3, e=0, n=10)
        assert level_plan(parent, child) is None

    def test_shared_hole_bubbles_out_twice(self):
        """A child hole that is also a parent hole defers to the
        grandparent level and is not routed here."""
        parent = make_group(r=5, size=3, e=1, n=10)   # members 2,3,5 hole 4
        child = make_group(r=5, size=2, e=1, n=10)    # members 3,5 hole 4
        plan = level_plan(parent, child)
        assert plan is not None
        # position 4 belongs to neither: it bubbles past both borders.
        assert plan.leaves == (("sink", 2), ("group", None))

    def test_adjacent_swap_via_single_sink_chi1(self):
        """The l=1, χ1 construction that realizes plain adjacent swaps."""
        parent = make_group(r=4, size=2, e=0, n=10)   # positions 3..4
        child = make_group(r=4, size=1, e=1, n=10)    # member 4, hole 3
        plan = level_plan(parent, child)
        assert plan is not None
        assert plan.leaves == (("group", None), ("sink", 3))

    def test_virtual_index(self):
        parent = make_group(r=5, size=4, e=0, n=10)
        child = make_group(r=4, size=2, e=0, n=10)
        plan = level_plan(parent, child)
        assert plan.virtual_index == 1
        assert plan.sink_positions == (2, 5)
