"""Tests for repro.core.star_ptree (the buffered P-Tree kernel)."""

import pytest

from repro.core.star_ptree import PTreeContext
from repro.curves.curve import CurveConfig
from repro.curves.solution import check_solution
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.builder import build_tree
from repro.routing.evaluate import evaluate_tree
from repro.routing.sink_order import extract_sink_order
from repro.tech.technology import default_technology

TECH = default_technology().with_buffers(default_technology().buffers.subset(3))
FINE = CurveConfig(load_step=0.5, area_step=10.0, max_solutions=32)


def make_context(candidates, relocation_rounds=1, use_buffers=True):
    return PTreeContext(candidates, TECH, FINE, relocation_rounds,
                        use_buffers)


def net_and_context(n=3, seed=0):
    from tests.conftest import build_net
    from repro.geometry.candidates import generate_candidates

    net = build_net(n, seed=seed)
    candidates = generate_candidates(net.source, net.sink_positions)
    if net.source not in candidates:
        candidates.append(net.source)
    return net, make_context(candidates)


class TestContextConstruction:
    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            make_context([])

    def test_negative_relocation_rejected(self):
        with pytest.raises(ValueError):
            PTreeContext([Point(0, 0)], TECH, FINE, relocation_rounds=-1)

    def test_wire_matrices_symmetric_zero_diagonal(self):
        ctx = make_context([Point(0, 0), Point(100, 0), Point(0, 200)])
        for i in range(ctx.k):
            assert ctx.wire_res[i][i] == 0.0
            for j in range(ctx.k):
                assert ctx.wire_res[i][j] == ctx.wire_res[j][i]
                assert ctx.wire_cap[i][j] == ctx.wire_cap[j][i]

    def test_unbuffered_mode_has_no_buffers(self):
        ctx = PTreeContext([Point(0, 0)], TECH, FINE, use_buffers=False)
        assert ctx.buffers == []


class TestSinkBaseCurves:
    def test_every_candidate_gets_solutions(self):
        net, ctx = net_and_context()
        sink = net.sink(0)
        curves = ctx.sink_base_curves(0, sink.position, sink.load,
                                      sink.required_time)
        assert len(curves) == ctx.k
        assert all(curves[c] for c in range(ctx.k))

    def test_candidate_at_pin_has_pin_solution(self):
        net, ctx = net_and_context()
        sink = net.sink(0)
        pin_index = ctx.candidates.index(sink.position) \
            if sink.position in ctx.candidates else None
        curves = ctx.sink_base_curves(0, sink.position, sink.load,
                                      sink.required_time)
        if pin_index is not None:
            loads = [s.load for s in curves[pin_index]]
            assert any(abs(l - sink.load) < 1e-9 for l in loads)

    def test_buffered_and_unbuffered_options_coexist(self):
        net, ctx = net_and_context()
        sink = net.sink(0)
        curves = ctx.sink_base_curves(0, sink.position, sink.load,
                                      sink.required_time)
        all_areas = {s.area for c in curves for s in c}
        assert 0.0 in all_areas            # unbuffered kept
        assert any(a > 0 for a in all_areas)  # buffered kept

    def test_solutions_structurally_valid(self):
        net, ctx = net_and_context()
        sink = net.sink(1)
        curves = ctx.sink_base_curves(1, sink.position, sink.load,
                                      sink.required_time)
        for per_candidate in curves:
            for solution in per_candidate:
                check_solution(solution)


class TestRun:
    def run_over(self, net, ctx):
        leaves = []
        for i, sink in enumerate(net.sinks):
            leaves.append(ctx.sink_base_curves(i, sink.position, sink.load,
                                               sink.required_time))
        return ctx.run(leaves)

    def test_zero_leaves_rejected(self):
        _, ctx = net_and_context()
        with pytest.raises(ValueError):
            ctx.run([])

    def test_single_leaf_passthrough(self):
        net, ctx = net_and_context(n=1)
        curves = self.run_over(net, ctx)
        assert len(curves) == ctx.k
        assert any(curves)

    def test_all_solutions_drive_all_sinks(self):
        net, ctx = net_and_context(n=3)
        curves = self.run_over(net, ctx)
        found = False
        for curve in curves:
            for solution in curve:
                tree = build_tree(net, solution)
                assert sorted(extract_sink_order(tree)) == [0, 1, 2]
                found = True
        assert found

    def test_dp_attributes_match_evaluator(self):
        """Every *PTREE solution re-evaluates to its stored attributes."""
        net, ctx = net_and_context(n=3, seed=5)
        curves = self.run_over(net, ctx)
        checked = 0
        for curve in curves:
            for solution in list(curve)[:4]:
                tree = build_tree(net, solution)
                # Evaluate WITHOUT driver: compare partial-tree semantics by
                # rebasing the root at the solution's candidate point.
                from repro.routing.tree import RoutingTree

                partial = RoutingTree(net=net, root=tree.root.children[0])
                ev = evaluate_tree(partial, TECH)
                assert ev.required_time_at_driver == pytest.approx(
                    solution.required_time, abs=1e-6)
                assert ev.buffer_area == pytest.approx(solution.area)
                checked += 1
        assert checked > 0

    def test_sink_order_respected(self):
        """Leaf order is the DFS order of every produced structure."""
        net, ctx = net_and_context(n=4, seed=8)
        leaves = []
        permutation = [2, 0, 3, 1]
        for i in permutation:
            sink = net.sink(i)
            leaves.append(ctx.sink_base_curves(i, sink.position, sink.load,
                                               sink.required_time))
        curves = ctx.run(leaves)
        for curve in curves:
            for solution in list(curve)[:3]:
                order = extract_sink_order(build_tree(net, solution))
                assert order == permutation

    def test_curves_are_non_inferior_sets(self):
        net, ctx = net_and_context(n=3, seed=2)
        for curve in self.run_over(net, ctx):
            assert curve.is_non_inferior_set()

    def test_unbuffered_mode_produces_zero_area(self):
        from repro.geometry.candidates import generate_candidates
        from tests.conftest import build_net

        net = build_net(3, seed=0)
        candidates = generate_candidates(net.source, net.sink_positions)
        ctx = make_context(candidates, use_buffers=False)
        for curve in self.run_over(net, ctx):
            assert all(s.area == 0.0 for s in curve)


class TestRelocation:
    def test_relocation_never_hurts_best_required_time(self):
        from repro.geometry.candidates import generate_candidates
        from tests.conftest import build_net

        net = build_net(3, seed=4)
        candidates = generate_candidates(net.source, net.sink_positions)

        def best_req(rounds):
            ctx = make_context(candidates, relocation_rounds=rounds)
            leaves = [ctx.sink_base_curves(i, s.position, s.load,
                                           s.required_time)
                      for i, s in enumerate(net.sinks)]
            curves = ctx.run(leaves)
            return max(s.required_time for c in curves for s in c)

        assert best_req(1) >= best_req(0) - 1e-9
