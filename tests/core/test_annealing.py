"""Tests for repro.core.annealing (the SA extension)."""

import pytest

from repro.core.annealing import annealed_merlin
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


class TestAnnealedMerlin:
    def test_produces_valid_tree(self):
        net = build_net(4, seed=1)
        result = annealed_merlin(net, TECH, config=CFG, iterations=3,
                                 seed=7)
        validate_tree(result.best.tree)
        assert result.iterations == 3
        assert len(result.cost_trace) == 4  # initial + 3 proposals

    def test_deterministic_in_seed(self):
        net = build_net(4, seed=2)
        a = annealed_merlin(net, TECH, config=CFG, iterations=3, seed=5)
        b = annealed_merlin(net, TECH, config=CFG, iterations=3, seed=5)
        assert a.cost_trace == b.cost_trace

    def test_best_tracks_minimum_cost(self):
        net = build_net(4, seed=3)
        objective = Objective.max_required_time()
        result = annealed_merlin(net, TECH, config=CFG,
                                 objective=objective, iterations=4, seed=1)
        assert objective.cost(result.best.solution) == \
            pytest.approx(min(result.cost_trace))

    def test_not_worse_than_single_descent_start(self):
        """SA starts from the same first BUBBLE_CONSTRUCT run, so its best
        can never be worse than that starting point."""
        net = build_net(5, seed=4)
        result = annealed_merlin(net, TECH, config=CFG, iterations=4,
                                 seed=2)
        assert min(result.cost_trace) == \
            pytest.approx(-result.best.solution.required_time)
        assert -result.best.solution.required_time <= \
            result.cost_trace[0] + 1e-9

    def test_acceptance_counters_consistent(self):
        net = build_net(4, seed=5)
        result = annealed_merlin(net, TECH, config=CFG, iterations=5,
                                 seed=3)
        assert 0 <= result.uphill_moves <= result.accepted_moves <= 5

    def test_parameter_validation(self):
        net = build_net(3, seed=6)
        with pytest.raises(ValueError):
            annealed_merlin(net, TECH, config=CFG, iterations=0)
        with pytest.raises(ValueError):
            annealed_merlin(net, TECH, config=CFG, cooling=0.0)
        with pytest.raises(ValueError):
            annealed_merlin(net, TECH, config=CFG, start_temperature=-1.0)

    def test_comparable_to_greedy_merlin(self):
        """On small nets both searches should find similar quality; SA is
        allowed a modest deficit because its budget is tiny here."""
        net = build_net(5, seed=7)
        greedy = merlin(net, TECH, config=CFG)
        annealed = annealed_merlin(net, TECH, config=CFG, iterations=4,
                                   seed=9)
        greedy_req = greedy.best.solution.required_time
        sa_req = annealed.best.solution.required_time
        scale = abs(greedy_req) + 100.0
        assert sa_req >= greedy_req - 0.5 * scale
