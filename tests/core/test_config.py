"""Tests for repro.core.config."""

import pytest

from repro.core.config import MerlinConfig
from repro.geometry.candidates import CandidateStrategy


class TestMerlinConfig:
    def test_default_preset_is_valid(self):
        cfg = MerlinConfig()
        assert cfg.alpha >= 2
        assert cfg.curve.max_solutions >= 3

    def test_paper_preset_matches_table1_setup(self):
        cfg = MerlinConfig.paper_preset()
        assert cfg.alpha == 15
        assert cfg.candidate_strategy is CandidateStrategy.FULL_HANAN
        assert cfg.max_candidates is None
        assert cfg.library_subset is None  # all 34 buffers

    def test_test_preset_is_smaller_than_default(self):
        test, default = MerlinConfig.test_preset(), MerlinConfig()
        assert test.alpha <= default.alpha
        assert test.curve.max_solutions <= default.curve.max_solutions

    def test_alpha_below_two_rejected(self):
        with pytest.raises(ValueError):
            MerlinConfig(alpha=1)

    def test_negative_relocation_rejected(self):
        with pytest.raises(ValueError):
            MerlinConfig(relocation_rounds=-1)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            MerlinConfig(max_iterations=0)

    def test_with_replaces_fields(self):
        cfg = MerlinConfig().with_(alpha=6, enable_bubbling=False)
        assert cfg.alpha == 6
        assert not cfg.enable_bubbling
        assert MerlinConfig().alpha == 4  # original defaults untouched

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            MerlinConfig().alpha = 9
