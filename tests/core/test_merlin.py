"""Tests for repro.core.merlin — the outer search loop (Theorem 7)."""

import pytest

from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.orders.heuristics import random_order
from repro.orders.neighborhood import in_neighborhood
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()


@pytest.fixture(scope="module")
def cfg():
    return MerlinConfig.test_preset()


class TestConvergence:
    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_terminates_and_validates(self, cfg, seed):
        net = build_net(5, seed=seed)
        result = merlin(net, TECH, config=cfg)
        assert 1 <= result.iterations <= cfg.max_iterations
        validate_tree(result.tree)

    def test_cost_trace_length_matches_iterations(self, cfg):
        net = build_net(5, seed=2)
        result = merlin(net, TECH, config=cfg)
        assert len(result.cost_trace) == result.iterations
        assert len(result.order_trace) == result.iterations

    @pytest.mark.parametrize("seed", [5, 7, 12])
    def test_theorem7_cost_strictly_decreases_until_last(self, cfg, seed):
        """Theorem 7: the best cost strictly decreases during the loop,
        except possibly on the final visit."""
        net = build_net(6, seed=seed)
        result = merlin(net, TECH, config=cfg.with_(max_iterations=6))
        for earlier, later in zip(result.cost_trace[:-1],
                                  result.cost_trace[1:-1]):
            assert later < earlier
        # The reported best equals the minimum of the trace.
        assert min(result.cost_trace) == pytest.approx(
            -result.best.solution.required_time)

    def test_iteration_cap_respected(self):
        cfg = MerlinConfig.test_preset().with_(max_iterations=1)
        net = build_net(5, seed=3)
        result = merlin(net, TECH, config=cfg)
        assert result.iterations == 1

    def test_consecutive_orders_are_neighbors(self, cfg):
        """Each move steps to a member of the previous neighborhood."""
        net = build_net(6, seed=8)
        result = merlin(net, TECH, config=cfg.with_(max_iterations=5))
        for previous, current in zip(result.order_trace,
                                     result.order_trace[1:]):
            assert in_neighborhood(current, previous)


class TestInitialOrders:
    def test_explicit_initial_order_used(self, cfg):
        net = build_net(5, seed=6)
        order = random_order(net, seed=123)
        result = merlin(net, TECH, config=cfg, initial_order=order)
        assert result.order_trace[0].seq == order.seq

    def test_different_seeds_converge_to_similar_quality(self):
        """The paper: initial orders have small effect on final quality.

        Needs (near-)exact curves — with coarse quantization the landscape
        itself is noisy and the claim does not apply.  With the exact
        configuration, most random seeds reach the identical local optimum
        and the rest land within a few percent.
        """
        from repro.curves.curve import CurveConfig

        exact = MerlinConfig.test_preset().with_(
            curve=CurveConfig(load_step=0.01, area_step=0.5,
                              max_solutions=100000),
            library_subset=2, max_candidates=5, max_iterations=6)
        net = build_net(5, seed=10)
        reqs = [
            merlin(net, TECH, config=exact,
                   initial_order=random_order(net, seed=s)
                   ).best.solution.required_time
            for s in (1, 2, 3, 4)
        ]
        delays = [net.max_required_time - r for r in reqs]
        spread = max(delays) - min(delays)
        assert spread / min(delays) < 0.05
        # And most seeds reach the very same optimum.
        rounded = [round(r, 6) for r in reqs]
        assert max(rounded.count(v) for v in rounded) >= 3


class TestObjectivePlumbing:
    def test_min_area_objective_tracked(self, cfg):
        net = build_net(4, seed=2)
        unconstrained = merlin(net, TECH, config=cfg)
        floor = unconstrained.best.solution.required_time - 100.0
        result = merlin(net, TECH, config=cfg,
                        objective=Objective.min_area(floor))
        assert result.best.solution.area <= \
            unconstrained.best.solution.area + 1e-9
        # Cost trace is in area units for variant II.
        assert min(result.cost_trace) == pytest.approx(
            result.best.solution.area)
