"""Tests for repro.core.objective (the two problem variants)."""

import math

import pytest

from repro.core.objective import Objective
from repro.curves.solution import SinkLeaf, Solution
from repro.geometry.point import Point

P = Point(0, 0)


def sol(load=10.0, req=100.0, area=0.0):
    return Solution(P, load, req, area, SinkLeaf(0))


class TestVariantI:
    """Maximize required time subject to an area budget."""

    def test_picks_best_required_time(self):
        objective = Objective.max_required_time()
        best = objective.select([sol(req=100), sol(req=300), sol(req=200)])
        assert best.required_time == 300

    def test_area_budget_filters(self):
        objective = Objective.max_required_time(area_budget=50)
        best = objective.select([sol(req=300, area=100), sol(req=100, area=20)])
        assert best.required_time == 100

    def test_no_feasible_returns_none(self):
        objective = Objective.max_required_time(area_budget=5)
        assert objective.select([sol(area=100)]) is None

    def test_tie_breaks_on_smaller_area(self):
        objective = Objective.max_required_time()
        best = objective.select([sol(req=100, area=50), sol(req=100, area=10)])
        assert best.area == 10

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Objective.max_required_time(area_budget=-1)

    def test_cost_is_negated_required_time(self):
        objective = Objective.max_required_time()
        assert objective.cost(sol(req=123)) == -123


class TestVariantII:
    """Minimize area subject to a required-time floor."""

    def test_picks_min_area_above_floor(self):
        objective = Objective.min_area(required_time_floor=150)
        best = objective.select([
            sol(req=100, area=10),   # infeasible
            sol(req=200, area=80),
            sol(req=160, area=40),
        ])
        assert best.area == 40

    def test_no_feasible_returns_none(self):
        objective = Objective.min_area(required_time_floor=1000)
        assert objective.select([sol(req=100)]) is None

    def test_tie_breaks_on_better_required_time(self):
        objective = Objective.min_area(required_time_floor=0)
        best = objective.select([sol(req=10, area=40), sol(req=90, area=40)])
        assert best.required_time == 90

    def test_cost_is_area(self):
        objective = Objective.min_area(required_time_floor=0)
        assert objective.cost(sol(area=55)) == 55


class TestBestTradeoff:
    """The paper's extraction rule: near-best required time, least area."""

    def test_picks_cheapest_within_tolerance(self):
        objective = Objective.best_tradeoff(tolerance=20.0)
        best = objective.select([
            sol(req=100, area=500),   # best req, expensive
            sol(req=85, area=50),     # within 20 ps, much cheaper
            sol(req=50, area=0),      # too slow
        ])
        assert best.area == 50

    def test_zero_tolerance_degenerates_to_max_req(self):
        objective = Objective.best_tradeoff(tolerance=0.0)
        best = objective.select([sol(req=100, area=500), sol(req=85, area=0)])
        assert best.required_time == 100

    def test_everything_is_feasible(self):
        objective = Objective.best_tradeoff()
        assert objective.feasible(sol(req=-1e9, area=1e9))

    def test_pairwise_better_undefined(self):
        objective = Objective.best_tradeoff()
        with pytest.raises(ValueError, match="whole-curve"):
            objective.better(sol(), sol())

    def test_select_empty_returns_none(self):
        assert Objective.best_tradeoff().select([]) is None

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            Objective.best_tradeoff(tolerance=-1.0)

    def test_cost_is_negated_required_time(self):
        objective = Objective.best_tradeoff()
        assert objective.cost(sol(req=77)) == -77


class TestGenericBehaviour:
    def test_select_empty_returns_none(self):
        assert Objective.max_required_time().select([]) is None

    def test_unbounded_budget_accepts_everything(self):
        objective = Objective.max_required_time()
        assert objective.feasible(sol(area=1e12))
