"""Tests for repro.core.bubble_construct — the paper's lemmas, empirically.

The heavyweight checks (neighborhood containment, bubbling superiority,
evaluator agreement) run on small nets with the test preset so the whole
module stays fast.
"""

import pytest

from repro.core.bubble_construct import bubble_construct, make_context
from repro.core.config import MerlinConfig
from repro.curves.curve import CurveConfig
from repro.core.objective import Objective
from repro.orders.neighborhood import in_neighborhood
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.routing.evaluate import evaluate_tree
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()


@pytest.fixture(scope="module")
def cfg():
    return MerlinConfig.test_preset()


def run_bc(net, cfg, order=None, **kwargs):
    order = order or tsp_order(net)
    return bubble_construct(net, order, TECH, config=cfg, **kwargs)


class TestBasics:
    def test_single_sink_net(self, cfg):
        net = build_net(1, seed=0)
        result = run_bc(net, cfg)
        validate_tree(result.tree)
        assert list(result.order_out) == [0]

    def test_two_sink_net(self, cfg):
        net = build_net(2, seed=1)
        result = run_bc(net, cfg)
        validate_tree(result.tree)
        assert sorted(result.order_out) == [0, 1]

    def test_tree_is_valid_and_complete(self, cfg):
        net = build_net(5, seed=3)
        result = run_bc(net, cfg)
        validate_tree(result.tree)

    def test_order_size_mismatch_rejected(self, cfg):
        net = build_net(3, seed=2)
        with pytest.raises(ValueError):
            bubble_construct(net, Order.identity(4), TECH, config=cfg)

    def test_final_curve_is_non_inferior(self, cfg):
        net = build_net(4, seed=5)
        result = run_bc(net, cfg)
        finals = result.final_solutions
        for i, a in enumerate(finals):
            for j, b in enumerate(finals):
                if i != j:
                    assert not a.dominates(b) or a.key() == b.key()

    def test_deterministic(self, cfg):
        net = build_net(4, seed=9)
        a = run_bc(net, cfg)
        b = run_bc(net, cfg)
        assert a.solution.required_time == b.solution.required_time
        assert list(a.order_out) == list(b.order_out)


class TestLemma5NeighborhoodContainment:
    """Any order BUBBLE_CONSTRUCT realizes is in N(initial order)."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_order_out_in_neighborhood(self, cfg, seed):
        net = build_net(5, seed=seed)
        order = tsp_order(net)
        result = run_bc(net, cfg, order=order)
        assert in_neighborhood(result.order_out, order)

    def test_every_final_solution_in_neighborhood(self, cfg):
        """Not just the winner: every curve point's order qualifies."""
        from repro.routing.builder import build_tree
        from repro.routing.sink_order import extract_sink_order

        net = build_net(4, seed=7)
        order = tsp_order(net)
        result = run_bc(net, cfg, order=order)
        for solution in result.final_solutions:
            tree = build_tree(net, solution)
            realized = Order.from_sequence(extract_sink_order(tree))
            assert in_neighborhood(realized, order)


class TestDpMatchesEvaluator:
    """The DP's bookkeeping equals independent Elmore re-evaluation."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_required_time_and_area_agree(self, cfg, seed):
        net = build_net(4, seed=seed)
        result = run_bc(net, cfg)
        # Evaluate with the same thinned library technology the DP used.
        lib = TECH.buffers.subset(cfg.library_subset)
        ev = evaluate_tree(result.tree, TECH.with_buffers(lib))
        assert ev.required_time_at_driver == pytest.approx(
            result.solution.required_time, abs=1e-6)
        assert ev.buffer_area == pytest.approx(result.solution.area)


class TestBubblingSubsumption:
    """With bubbling, the optimum can only improve (χ0 space ⊂ full).

    Strict subsumption only holds for (near-)exact curves: coarse
    quantization keeps per-bucket incumbents whose *raw* loads differ, so
    downstream results are not monotone in the search space.  These tests
    therefore run a fine-bucket, no-thinning configuration on small nets
    (fast, because the tiny library bounds curve growth).
    """

    EXACT = MerlinConfig.test_preset().with_(
        curve=CurveConfig(load_step=0.01, area_step=0.5,
                          max_solutions=100000),
        library_subset=2,
        max_candidates=5,
    )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_bubbling_not_worse(self, seed):
        net = build_net(4, seed=seed)
        order = tsp_order(net)
        off = bubble_construct(net, order, TECH,
                               config=self.EXACT.with_(enable_bubbling=False))
        on = bubble_construct(net, order, TECH, config=self.EXACT)
        assert on.solution.required_time >= \
            off.solution.required_time - 1e-9

    def test_bubbling_strictly_improves_somewhere(self):
        """The neighborhood must beat the fixed order on some seeds
        (seeds 3 and 4 do with the exact configuration)."""
        improved = 0
        for seed in range(6):
            net = build_net(4, seed=seed)
            order = tsp_order(net)
            off = bubble_construct(
                net, order, TECH,
                config=self.EXACT.with_(enable_bubbling=False))
            on = bubble_construct(net, order, TECH, config=self.EXACT)
            if on.solution.required_time > off.solution.required_time + 1e-9:
                improved += 1
        assert improved >= 1


class TestObjectiveVariants:
    def test_area_budget_respected(self, cfg):
        net = build_net(4, seed=13)
        unconstrained = run_bc(net, cfg)
        budget = max(0.0, unconstrained.solution.area / 2)
        constrained = run_bc(
            net, cfg,
            objective=Objective.max_required_time(area_budget=budget))
        if constrained.constraint_met:
            assert constrained.solution.area <= budget + 1e-9

    def test_min_area_variant_reduces_area(self, cfg):
        net = build_net(4, seed=13)
        best_delay = run_bc(net, cfg)
        floor = best_delay.solution.required_time - 200.0
        min_area = run_bc(net, cfg,
                          objective=Objective.min_area(floor))
        assert min_area.solution.area <= best_delay.solution.area + 1e-9
        if min_area.constraint_met:
            assert min_area.solution.required_time >= floor - 1e-9

    def test_unconstrained_objective_maximizes_required_time(self, cfg):
        net = build_net(4, seed=17)
        result = run_bc(net, cfg)
        best = max(s.required_time for s in result.final_solutions)
        assert result.solution.required_time == pytest.approx(best)


class TestStats:
    def test_stats_populated(self, cfg):
        net = build_net(4, seed=3)
        result = run_bc(net, cfg)
        assert result.stats["cells"] > 0
        assert result.stats["ranges"] > 0
        assert result.stats["levels"] > 0

    def test_range_memo_shares_across_iterations(self, cfg):
        """Reusing the context makes later runs cheaper (Lemma 7 sharing)."""
        net = build_net(5, seed=3)
        context = make_context(net, TECH, cfg)
        order = tsp_order(net)
        first = bubble_construct(net, order, TECH, config=cfg,
                                 context=context)
        second = bubble_construct(net, order, TECH, config=cfg,
                                  context=context)
        assert second.stats["ranges"] <= first.stats["ranges"]


class TestGammaMemo:
    """Cross-iteration Γ-cell reuse keyed on leaf-content fingerprints."""

    def test_unchanged_net_reuses_every_parent_cell(self, cfg):
        net = build_net(5, seed=3)
        context = make_context(net, TECH, cfg)
        order = tsp_order(net)
        first = bubble_construct(net, order, TECH, config=cfg,
                                 context=context)
        second = bubble_construct(net, order, TECH, config=cfg,
                                  context=context)
        # Every multi-sink cell comes from the memo; only the single-sink
        # initialization cells are (re)counted as computed.
        assert second.stats["gamma_memo_hits"] > 0
        assert second.stats["cells"] + second.stats["gamma_memo_hits"] \
            == first.stats["cells"]
        assert second.solution.required_time == first.solution.required_time
        assert list(second.order_out) == list(first.order_out)

    def test_single_leaf_change_invalidates_only_its_cells(self, cfg):
        """Changing exactly one sink's required time must recompute the
        cells whose member set contains that sink — and only those —
        while producing bit-identical results to a cold context."""
        from dataclasses import replace

        from repro.net import Net

        net = build_net(5, seed=3)
        order = tsp_order(net)
        context = make_context(net, TECH, cfg)
        first = bubble_construct(net, order, TECH, config=cfg,
                                 context=context)
        warm_same = bubble_construct(net, order, TECH, config=cfg,
                                     context=context)
        full_hits = warm_same.stats["gamma_memo_hits"]

        # Same geometry (the candidate set is unchanged), one sink's
        # timing perturbed: its fingerprint — and only its — changes.
        sinks = list(net.sinks)
        sinks[2] = replace(sinks[2],
                           required_time=sinks[2].required_time - 150.0)
        changed = Net(name=net.name, source=net.source, sinks=tuple(sinks))

        warm = bubble_construct(changed, order, TECH, config=cfg,
                                context=context)
        # Cells not containing sink 2 still hit the memo...
        assert warm.stats["gamma_memo_hits"] > 0
        # ...while every cell containing it misses and recomputes.
        assert warm.stats["gamma_memo_hits"] < full_hits
        recomputed = full_hits - warm.stats["gamma_memo_hits"]
        assert recomputed > 0

        # Invalidation is sound: the warm result equals a cold run.
        cold = bubble_construct(changed, order, TECH, config=cfg,
                                context=make_context(changed, TECH, cfg))
        assert warm.solution.required_time == cold.solution.required_time
        assert warm.solution.load == cold.solution.load
        assert warm.solution.area == cold.solution.area
        assert list(warm.order_out) == list(cold.order_out)
        assert [(s.load, s.required_time, s.area)
                for s in warm.final_solutions] \
            == [(s.load, s.required_time, s.area)
                for s in cold.final_solutions]

        # And the perturbed entries stay: re-running the changed net
        # warm again is a full reuse.
        again = bubble_construct(changed, order, TECH, config=cfg,
                                 context=context)
        assert again.stats["gamma_memo_hits"] == full_hits
