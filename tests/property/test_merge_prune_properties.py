"""Property-based invariants for merge (join) + prune in repro.curves.

The satellite contract behind every DP step: after any combination of
merging (cross-product join at a shared root) and pruning, the surviving
set is mutually non-inferior, and pruning never removes the
best-required-time solution of what was inserted (Lemma 9).  These run
through the *public* curve/ops API, the same path the engines use.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import kernels
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.ops import (
    buffer_solution,
    buffered_options,
    extend_solution,
    join_curves,
    join_solutions,
)
from repro.curves.solution import SinkLeaf, Solution
from repro.geometry.point import Point
from repro.tech.technology import default_technology

P = Point(0, 0)
TECH = default_technology()
SMALL_TECH = TECH.with_buffers(TECH.buffers.subset(3))

# Integer-valued attributes keep bucket rounding out of the equality
# arguments (the paper's "capacitances mapped to integers" assumption).
attr = st.integers(min_value=0, max_value=60).map(float)
req_attr = st.integers(min_value=-60, max_value=60).map(float)
solutions = st.builds(
    lambda load, req, area: Solution(P, load, req, area, SinkLeaf(0)),
    attr, req_attr, attr)
solution_lists = st.lists(solutions, min_size=1, max_size=12)

#: A curve config with fine buckets and a generous cap: pruning decisions
#: below are driven by dominance, not quantization.
FINE = CurveConfig(load_step=0.5, area_step=0.5, max_solutions=10 ** 6)
#: A realistic config: coarse buckets plus a tight cap.
COARSE = CurveConfig(load_step=4.0, area_step=50.0, max_solutions=6)

#: Every merge/prune property must hold identically on both curve-kernel
#: backends (bit-identity contract of the vectorized kernels).
BACKENDS = (
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not kernels.numpy_available(), reason="NumPy not installed")),
)


def _with_backend(config: CurveConfig, backend: str) -> CurveConfig:
    return dataclasses.replace(config, backend=backend)


def _pruned_curve(sols, config, backend: str = "python") -> SolutionCurve:
    curve = SolutionCurve(P, _with_backend(config, backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    return curve


def _curve_contents(curve: SolutionCurve):
    """Bucket keys and attribute triples, in dict (insertion) order."""
    return [(key, s.load, s.required_time, s.area)
            for key, s in curve._by_bucket.items()]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=150, deadline=None)
@given(lefts=solution_lists, rights=solution_lists)
def test_merge_then_prune_is_non_inferior(backend, lefts, rights):
    """Joined-and-pruned sets contain no dominated solution."""
    merged = list(join_curves(lefts, rights))
    for config in (FINE, COARSE):
        assert _pruned_curve(merged, config, backend).is_non_inferior_set()


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=150, deadline=None)
@given(lefts=solution_lists, rights=solution_lists)
def test_merge_then_prune_keeps_best_required_time(backend, lefts, rights):
    """Pruning a merged set never loses its required-time optimum."""
    merged = list(join_curves(lefts, rights))
    best = max(s.required_time for s in merged)
    for config in (FINE, COARSE):
        curve = _pruned_curve(merged, config, backend)
        assert max(s.required_time for s in curve) == best


@pytest.mark.skipif(not kernels.numpy_available(),
                    reason="NumPy not installed")
@settings(max_examples=150, deadline=None)
@given(lefts=solution_lists, rights=solution_lists)
def test_backends_agree_on_curve_contents(lefts, rights):
    """The numpy backend's pruned curve is *identical* to python's —
    same buckets, same solutions, same dict order."""
    merged = list(join_curves(lefts, rights))
    for config in (FINE, COARSE):
        py = _pruned_curve(merged, config, "python")
        np_ = _pruned_curve(merged, config, "numpy")
        assert _curve_contents(py) == _curve_contents(np_)


@settings(max_examples=150, deadline=None)
@given(solutions, solutions)
def test_join_arithmetic(a, b):
    """Loads/areas add, required time is the binding (minimum) branch."""
    joined = join_solutions(a, b)
    assert joined.load == a.load + b.load
    assert joined.area == a.area + b.area
    assert joined.required_time == min(a.required_time, b.required_time)
    assert joined.root == a.root


@settings(max_examples=150, deadline=None)
@given(solution_lists, solution_lists)
def test_join_is_commutative_on_attributes(lefts, rights):
    """A ⋈ B and B ⋈ A produce the same attribute multiset."""
    ab = sorted((s.load, s.required_time, s.area)
                for s in join_curves(lefts, rights))
    ba = sorted((s.load, s.required_time, s.area)
                for s in join_curves(rights, lefts))
    assert ab == ba


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(sol=solutions)
def test_buffered_options_then_prune_non_inferior(backend, sol):
    """Offering the library at a root and pruning stays non-inferior and
    keeps the best achievable required time."""
    options = buffered_options(sol, SMALL_TECH)
    best = max(s.required_time for s in options)
    curve = _pruned_curve(options, FINE, backend)
    assert curve.is_non_inferior_set()
    assert max(s.required_time for s in curve) == best


@settings(max_examples=100, deadline=None)
@given(solutions)
def test_buffer_decouples_load(sol):
    """A buffered solution presents exactly the buffer's input cap."""
    buffer = SMALL_TECH.buffers[0]
    buffered = buffer_solution(sol, buffer, SMALL_TECH)
    assert buffered.load == buffer.input_cap
    assert buffered.area == sol.area + buffer.area
    assert buffered.required_time < sol.required_time  # delay is positive


@settings(max_examples=100, deadline=None)
@given(solutions,
       st.integers(min_value=0, max_value=2000).map(float),
       st.integers(min_value=0, max_value=2000).map(float))
def test_extend_monotone_and_identity(sol, dx, dy):
    """Wire extension only degrades: load grows, required time shrinks;
    zero-length extension is the exact identity."""
    assert extend_solution(sol, sol.root, TECH) is sol
    moved = extend_solution(sol, Point(sol.root.x + dx, sol.root.y + dy),
                            TECH)
    if dx == 0 and dy == 0:
        assert moved is sol
    else:
        assert moved.load > sol.load
        assert moved.required_time < sol.required_time
        assert moved.area == sol.area


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(a=solution_lists, b=solution_lists, c=solution_lists)
def test_merge_prune_merge_keeps_feasible_best(backend, a, b, c):
    """Pruning between joins cannot beat-or-lose the direct optimum:
    the best required time of (A ⋈ B ⋈ C) survives staged pruning."""
    direct_best = max(s.required_time
                      for s in join_curves(join_curves(a, b), c))
    staged = _pruned_curve(join_curves(a, b), FINE, backend)
    final = _pruned_curve(join_curves(staged.solutions, c), FINE, backend)
    assert max(s.required_time for s in final) == direct_best
