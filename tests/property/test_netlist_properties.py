"""Property-based tests for the netlist substrate (hypothesis).

The circuit-level invariants the closure pipeline leans on:

* STA is *monotone*: inflating any net's delay can only worsen (never
  improve) the circuit's worst slack under a fixed target;
* the pre-optimization ``star_net_delay`` estimate is monotone in sink
  distance — moving a sink farther from its driver never speeds it up;
* generation + placement is deterministic in the spec (same seed, same
  circuit, same coordinates) and re-placement is idempotent;
* the canonical cache identity of a netlist-derived optimization net is
  invariant under renaming and rigid translation — the properties the
  service's cross-net result cache depends on for correctness.
"""

from __future__ import annotations

import dataclasses

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.geometry.point import Point
from repro.net import Sink
from repro.netlist.flow_runner import _to_routing_net
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.netlist.placement import place_netlist
from repro.netlist.sta import run_sta, star_net_delay
from repro.service.canonical import canonical_key
from repro.tech.technology import default_technology

TECH = default_technology()
CFG = MerlinConfig.test_preset()

#: Small-but-varied circuit shapes; every draw is a fresh deterministic
#: circuit, so examples shrink nicely.
specs = st.builds(
    lambda gates, levels, fanout, seed: CircuitSpec(
        name=f"prop_{gates}_{levels}_{fanout}_{seed}",
        primary_inputs=4, primary_outputs=3, logic_gates=gates,
        levels=levels, max_fanout=fanout, seed=seed),
    gates=st.integers(min_value=8, max_value=18),
    levels=st.integers(min_value=2, max_value=4),
    fanout=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)


def _placed(spec: CircuitSpec):
    netlist = generate_circuit(spec)
    place_netlist(netlist)
    return netlist


def _multi_sink_net(netlist, index: int):
    nets = [n for n in netlist.nets if len(n.sinks) >= 2]
    assume(nets)
    return nets[index % len(nets)]


@settings(max_examples=30, deadline=None)
@given(spec=specs, net_index=st.integers(min_value=0, max_value=50),
       delta=st.floats(min_value=0.0, max_value=5_000.0))
def test_inflating_a_net_delay_never_improves_worst_slack(
        spec, net_index, delta):
    netlist = _placed(spec)
    slowed = _multi_sink_net(netlist, net_index)
    star = star_net_delay(netlist, TECH)
    baseline = run_sta(netlist, TECH)  # target = its own critical delay

    def inflated(net, sink_name):
        extra = delta if net.name == slowed.name else 0.0
        return star(net, sink_name) + extra

    worse = run_sta(netlist, TECH, net_delay=inflated,
                    target=baseline.target)
    assert worse.worst_slack <= baseline.worst_slack + 1e-9
    assert worse.critical_delay >= baseline.critical_delay - 1e-9


@settings(max_examples=30, deadline=None)
@given(spec=specs, net_index=st.integers(min_value=0, max_value=50),
       sink_index=st.integers(min_value=0, max_value=50),
       scale=st.integers(min_value=2, max_value=6))
def test_star_delay_is_monotone_in_sink_distance(
        spec, net_index, sink_index, scale):
    netlist = _placed(spec)
    net = _multi_sink_net(netlist, net_index)
    sink_name = net.sinks[sink_index % len(net.sinks)]
    driver = netlist.gates[net.driver].position
    sink_gate = netlist.gates[sink_name]
    original = sink_gate.position
    assume(abs(original.x - driver.x) + abs(original.y - driver.y) > 0)

    near = star_net_delay(netlist, TECH)(net, sink_name)
    # Move the sink `scale`x farther along the same displacement.
    sink_gate.position = Point(
        driver.x + scale * (original.x - driver.x),
        driver.y + scale * (original.y - driver.y))
    far = star_net_delay(netlist, TECH)(net, sink_name)
    assert far >= near - 1e-9


@settings(max_examples=25, deadline=None)
@given(spec=specs)
def test_generation_and_placement_are_deterministic(spec):
    first = _placed(spec)
    second = _placed(spec)
    assert sorted(first.gates) == sorted(second.gates)
    for name, gate in first.gates.items():
        assert second.gates[name].position == gate.position
    # Re-placement of an already placed netlist is a no-op.
    before = {name: g.position for name, g in first.gates.items()}
    place_netlist(first)
    assert {name: g.position for name, g in first.gates.items()} == before


@settings(max_examples=25, deadline=None)
@given(spec=specs, net_index=st.integers(min_value=0, max_value=50),
       dx=st.integers(min_value=-40_000, max_value=40_000),
       dy=st.integers(min_value=-40_000, max_value=40_000),
       suffix=st.text(alphabet="abcxyz", min_size=1, max_size=6))
def test_canonical_key_is_rename_and_translation_invariant(
        spec, net_index, dx, dy, suffix):
    netlist = _placed(spec)
    circuit_net = _multi_sink_net(netlist, net_index)
    estimate = run_sta(netlist, TECH)
    sta = run_sta(netlist, TECH, target=0.88 * estimate.critical_delay)
    net = _to_routing_net(netlist, circuit_net, sta)
    objective = Objective.min_area(
        required_time_floor=sta.arrival[circuit_net.driver])
    key = canonical_key(net, TECH, CFG, objective)

    moved = dataclasses.replace(
        net,
        name=f"{net.name}_{suffix}",
        source=Point(net.source.x + dx, net.source.y + dy),
        sinks=tuple(
            dataclasses.replace(
                s, name=f"{s.name}_{suffix}",
                position=Point(s.position.x + dx, s.position.y + dy))
            for s in net.sinks),
    )
    assert canonical_key(moved, TECH, CFG, objective) == key

    # A *different problem* must not collide: tightening one sink's
    # required time changes the canonical identity.
    tightened = dataclasses.replace(
        net,
        sinks=tuple(
            dataclasses.replace(s, required_time=s.required_time - 123.0)
            if i == 0 else s
            for i, s in enumerate(net.sinks)),
    )
    assert canonical_key(tightened, TECH, CFG, objective) != key
