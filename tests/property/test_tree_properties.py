"""Property-based consistency: DP arithmetic == Elmore re-evaluation.

Hypothesis composes random solution structures from the three DP
combinators (extend / join / buffer) over random sink sets, then asserts
that the incremental ``(load, required_time, area)`` bookkeeping agrees
exactly with independent evaluation of the materialized tree — the
strongest internal-consistency invariant the library has.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.curves.ops import (
    buffer_solution,
    extend_solution,
    join_solutions,
)
from repro.curves.solution import sink_leaf_solution
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.builder import build_tree
from repro.routing.evaluate import evaluate_tree
from repro.routing.sink_order import extract_sink_order
from repro.routing.tree import RoutingTree
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology

TECH = default_technology()

coords = st.floats(min_value=0.0, max_value=3000.0, allow_nan=False)
loads = st.floats(min_value=1.0, max_value=80.0, allow_nan=False)
reqs = st.floats(min_value=200.0, max_value=1500.0, allow_nan=False)


@st.composite
def random_structures(draw):
    """A net plus a randomly composed solution driving all its sinks."""
    n = draw(st.integers(min_value=1, max_value=6))
    sinks = tuple(
        Sink(f"s{i}", Point(draw(coords), draw(coords)), draw(loads),
             draw(reqs))
        for i in range(n)
    )
    net = Net("prop", Point(0.0, 0.0), sinks)

    # Start with one solution per sink (at its own pin), then repeatedly
    # merge the first two via extend-to-a-common-point + join, with an
    # optional buffer after each merge.
    pool = [
        sink_leaf_solution(s.position, i, s.load, s.required_time)
        for i, s in enumerate(sinks)
    ]
    while len(pool) > 1:
        meet = Point(draw(coords), draw(coords))
        a = extend_solution(pool.pop(0), meet, TECH)
        b = extend_solution(pool.pop(0), meet, TECH)
        merged = join_solutions(a, b)
        if draw(st.booleans()):
            buffer = TECH.buffers[draw(st.integers(0, len(TECH.buffers) - 1))]
            merged = buffer_solution(merged, buffer, TECH)
        pool.insert(0, merged)
    solution = extend_solution(pool[0], net.source, TECH)
    return net, solution


@settings(max_examples=120, deadline=None)
@given(random_structures())
def test_dp_arithmetic_matches_evaluator(net_and_solution):
    net, solution = net_and_solution
    tree = build_tree(net, solution)
    validate_tree(tree)
    # Evaluate the structure without the driver stage (the solution has no
    # DriverArm): root the partial tree at the solution's root.
    partial = RoutingTree(net=net, root=tree.root.children[0]) \
        if tree.root.children else tree
    ev = evaluate_tree(partial, TECH)
    assert ev.required_time_at_driver == pytest.approx(
        solution.required_time, rel=1e-9, abs=1e-6)
    assert ev.buffer_area == pytest.approx(solution.area)
    assert ev.driver_load == pytest.approx(solution.load, rel=1e-9,
                                           abs=1e-6)


@settings(max_examples=120, deadline=None)
@given(random_structures())
def test_sink_order_is_construction_order(net_and_solution):
    """DFS visits sinks in the left-to-right construction order."""
    net, solution = net_and_solution
    tree = build_tree(net, solution)
    order = extract_sink_order(tree)
    assert sorted(order) == list(range(len(net)))


@settings(max_examples=120, deadline=None)
@given(random_structures())
def test_operations_never_improve_required_time(net_and_solution):
    """Wires and buffers only cost time; the root required time can never
    exceed the laziest sink's requirement."""
    net, solution = net_and_solution
    assert solution.required_time <= net.max_required_time + 1e-9
