"""Property-based tests for orders and neighborhoods (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orders.neighborhood import (
    in_neighborhood,
    neighborhood_size,
    swap_decomposition,
)
from repro.orders.order import Order

orders = st.integers(min_value=1, max_value=9).flatmap(
    lambda n: st.permutations(list(range(n)))).map(Order.from_sequence)

small_orders = st.integers(min_value=2, max_value=7).flatmap(
    lambda n: st.permutations(list(range(n)))).map(Order.from_sequence)


@settings(max_examples=150, deadline=None)
@given(orders)
def test_positions_inverse_roundtrip(order):
    positions = order.positions
    for sink_index in range(len(order)):
        assert order[positions[sink_index]] == sink_index


@settings(max_examples=150, deadline=None)
@given(small_orders, st.data())
def test_swap_is_involutive(order, data):
    position = data.draw(st.integers(0, len(order) - 2))
    assert order.swapped(position).swapped(position).seq == order.seq


@settings(max_examples=150, deadline=None)
@given(small_orders, st.data())
def test_disjoint_swaps_stay_in_neighborhood(order, data):
    """Applying any set of disjoint adjacent swaps lands in N(Π)."""
    n = len(order)
    swaps = []
    position = 0
    while position < n - 1:
        if data.draw(st.booleans()):
            swaps.append(position)
            position += 2
        else:
            position += 1
    perturbed = order
    for p in swaps:
        perturbed = perturbed.swapped(p)
    assert in_neighborhood(perturbed, order)
    assert swap_decomposition(perturbed, order) == swaps


@settings(max_examples=150, deadline=None)
@given(small_orders)
def test_neighborhood_membership_symmetric(order):
    """Definition 1 symmetry on sampled neighbors."""
    reversed_order = order.reversed()
    assert in_neighborhood(order, reversed_order) == \
        in_neighborhood(reversed_order, order)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=15))
def test_neighborhood_size_recurrence(n):
    """size(n) = size(n-1) + size(n-2) (the Fibonacci recurrence)."""
    if n >= 3:
        assert neighborhood_size(n) == \
            neighborhood_size(n - 1) + neighborhood_size(n - 2)


@settings(max_examples=150, deadline=None)
@given(small_orders)
def test_displacement_triangle_property(order):
    """Displacement from self is zero; from a neighbor at most one."""
    assert order.displacement_from(order) == [0] * len(order)
    swapped = order.swapped(0)
    assert max(swapped.displacement_from(order)) == 1
