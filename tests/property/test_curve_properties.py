"""Property-based tests for the solution-curve machinery (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import kernels
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import SinkLeaf, Solution
from repro.geometry.point import Point

P = Point(0, 0)

#: Every pruning property must hold identically on both curve-kernel
#: backends (bit-identity contract of the vectorized kernels).
BACKENDS = (
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not kernels.numpy_available(), reason="NumPy not installed")),
)

# Integer-valued attributes: the exactness property below compares the
# bucketed curve against an un-bucketed reference, which is only a fair
# comparison when every attribute difference exceeds the bucket width
# (exactly the paper's "capacitances mapped to integers" assumption).
attr = st.integers(min_value=0, max_value=60).map(float)
req_attr = st.integers(min_value=-60, max_value=60).map(float)
solutions = st.builds(
    lambda load, req, area: Solution(P, load, req, area, SinkLeaf(0)),
    attr, req_attr, attr)
solution_lists = st.lists(solutions, min_size=1, max_size=60)


def brute_force_pareto(sols):
    """Reference: triples that are not dominated by a distinct triple."""
    triples = {(s.load, s.required_time, s.area) for s in sols}
    kept = set()
    for t in triples:
        dominated = any(
            o != t and o[0] <= t[0] and o[1] >= t[1] and o[2] <= t[2]
            for o in triples)
        if not dominated:
            kept.add(t)
    return kept


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=200, deadline=None)
@given(sols=solution_lists)
def test_prune_leaves_exactly_the_pareto_front(backend, sols):
    """With fine buckets and no cap, prune == brute-force Pareto."""
    curve = SolutionCurve(P, CurveConfig(load_step=0.5, area_step=0.5,
                                         max_solutions=10 ** 6,
                                         backend=backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    kept = {(s.load, s.required_time, s.area) for s in curve}
    assert kept == brute_force_pareto(sols)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(sols=solution_lists)
def test_pruned_curve_is_mutually_non_inferior(backend, sols):
    curve = SolutionCurve(P, CurveConfig(load_step=2.0, area_step=30.0,
                                         max_solutions=16,
                                         backend=backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    assert curve.is_non_inferior_set()


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(sols=solution_lists)
def test_best_required_time_never_lost(backend, sols):
    """Lemma 9-flavored: pruning (even with cap) keeps the req optimum."""
    curve = SolutionCurve(P, CurveConfig(load_step=5.0, area_step=50.0,
                                         max_solutions=4,
                                         backend=backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    best_kept = max(s.required_time for s in curve)
    assert best_kept == max(s.required_time for s in sols)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(sols=solution_lists)
def test_min_area_never_lost(backend, sols):
    """The area optimum survives for the variant II objective."""
    curve = SolutionCurve(P, CurveConfig(load_step=5.0, area_step=50.0,
                                         max_solutions=4,
                                         backend=backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    # Bucketing keeps the best-req representative per (load, area) bucket,
    # so the minimum surviving area is within one bucket of the true one.
    assert min(s.area for s in curve) <= min(s.area for s in sols) + 50.0


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(sols=solution_lists)
def test_capacity_cap_respected(backend, sols):
    curve = SolutionCurve(P, CurveConfig(load_step=1e-6, area_step=1e-6,
                                         max_solutions=5,
                                         backend=backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    assert len(curve) <= 5


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=100, deadline=None)
@given(sols=solution_lists)
def test_prune_idempotent(backend, sols):
    curve = SolutionCurve(P, CurveConfig(load_step=3.0, area_step=40.0,
                                         max_solutions=8,
                                         backend=backend))
    for s in sols:
        curve.add(s)
    curve.prune()
    first = sorted(s.key() for s in curve)
    curve.prune()
    assert sorted(s.key() for s in curve) == first


@settings(max_examples=150, deadline=None)
@given(solutions, solutions)
def test_dominance_is_antisymmetric_up_to_ties(a, b):
    if a.dominates(b) and b.dominates(a):
        assert (a.load, a.required_time, a.area) == \
            (b.load, b.required_time, b.area)


@settings(max_examples=150, deadline=None)
@given(solutions, solutions, solutions)
def test_dominance_is_transitive(a, b, c):
    if a.dominates(b) and b.dominates(c):
        assert a.dominates(c)
