"""Property-based tests for the Manhattan geometry substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.hanan import hanan_points, snap_to_grid
from repro.geometry.point import Point, centroid, median_point

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)
point_lists = st.lists(points, min_size=1, max_size=12)


@settings(max_examples=200, deadline=None)
@given(points, points, points)
def test_manhattan_triangle_inequality(a, b, c):
    assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c) + 1e-6


@settings(max_examples=200, deadline=None)
@given(points, points)
def test_manhattan_symmetry_and_identity(a, b):
    assert a.manhattan_to(b) == b.manhattan_to(a)
    assert a.manhattan_to(a) == 0.0


@settings(max_examples=100, deadline=None)
@given(point_lists)
def test_bbox_contains_all_points(pts):
    box = BoundingBox.of_points(pts)
    for p in pts:
        assert box.contains(p)


@settings(max_examples=100, deadline=None)
@given(point_lists)
def test_centroid_and_median_inside_bbox(pts):
    # Epsilon-expanded: summing floats can overshoot the exact mean by one
    # ulp (e.g. (1.9 * 3) / 3 > 1.9).
    box = BoundingBox.of_points(pts).expanded(1e-6)
    assert box.contains(centroid(pts))
    assert box.contains(median_point(pts))


@settings(max_examples=60, deadline=None)
@given(st.lists(points, min_size=1, max_size=7))
def test_hanan_points_contain_terminals_and_close_under_projection(pts):
    grid = hanan_points(pts)
    grid_set = set(grid)
    for p in pts:
        assert p in grid_set
    # The grid is the full cross product: projecting any two grid points
    # onto each other's axes stays in the grid.
    for a in grid[:5]:
        for b in grid[:5]:
            assert Point(a.x, b.y) in grid_set


@settings(max_examples=100, deadline=None)
@given(st.lists(points, min_size=1, max_size=6), points)
def test_snap_to_grid_returns_nearest_grid_point(pts, query):
    from repro.geometry.hanan import hanan_grid_lines

    xs, ys = hanan_grid_lines(pts)
    snapped = snap_to_grid(query, xs, ys)
    grid = hanan_points(pts)
    best = min(grid, key=lambda g: g.manhattan_to(query))
    assert snapped.manhattan_to(query) <= best.manhattan_to(query) + 1e-9
