"""Property tests for the curve-kernel contract (:mod:`repro.curves.contract`).

Two families of guarantees:

* **Registry** — backends register like staticcheck rules, resolve by
  name, and degrade gracefully when NumPy is absent.
* **Bit-identity** — for every registered backend, the block-level
  ``merge / join / add_buffer / prune / freeze / traceback`` pipeline
  must equal a solution-object reference path written directly against
  :class:`~repro.curves.curve.SolutionCurve` (no kernels involved), on
  random curves.  The reference here is deliberately naive — the point
  is that neither the deferred SoA entries nor the shadow-table skips
  may change a single surviving solution, its attributes, or its
  traceback topology.
"""

from __future__ import annotations

import random

import pytest

from repro.curves import contract
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import Buffered, Extend, Join, SinkLeaf, Solution
from repro.geometry.point import Point
from repro.tech.technology import default_technology

P = Point(0, 0)


def _sig(s: Solution) -> tuple:
    """Structural signature: attributes plus the full traceback tree.

    Solutions compare by identity (they are ``__slots__`` hot-path
    objects), so bit-identity across independently materialized paths is
    asserted on this recursive value instead.
    """
    d = s.detail
    if isinstance(d, SinkLeaf):
        tail = ("sink", d.sink_index)
    elif isinstance(d, Extend):
        tail = ("extend", d.length, d.width, _sig(d.child))
    elif isinstance(d, Join):
        tail = ("join", _sig(d.left), _sig(d.right))
    elif isinstance(d, Buffered):
        tail = ("buffered", d.buffer.name, _sig(d.child))
    else:  # pragma: no cover - DriverArm never appears below the root
        tail = ("driver", _sig(d.child))
    return (s.root, s.load, s.required_time, s.area, tail)


def _sigs(solutions) -> list:
    return [_sig(s) for s in solutions]

BACKENDS = ["python", "numpy"] if contract.numpy_available() else ["python"]


def _random_solutions(rng, n, span=30):
    """Integer-valued attributes force heavy bucket collisions."""
    return [
        Solution(P, float(rng.randint(0, span)),
                 float(rng.randint(-span, span)),
                 float(rng.randint(0, span)), SinkLeaf(i))
        for i in range(n)
    ]


def _buffer_params(n=6):
    """Affine (buffer, input_cap, area, d0, slope) tuples from the
    default library — including repeated-cap cells so the shadow table
    is non-trivial when quantization is coarse."""
    tech = default_technology()
    bufs = list(tech.buffers)[:n]
    return [(b, b.input_cap, b.area, b.intrinsic_delay, b.drive_resistance)
            for b in bufs]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_builtin_backends_are_registered():
    names = contract.kernel_names()
    assert "python" in names
    if contract.numpy_available():
        assert "numpy" in names
    for name in names:
        kernel = contract.get_kernel(name)
        assert isinstance(kernel, contract.CurveKernel)
        assert kernel.name == name


def test_get_kernel_is_idempotent_singleton():
    assert contract.get_kernel("python") is contract.get_kernel("python")


def test_get_kernel_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown curve kernel"):
        contract.get_kernel("fortran")  # staticcheck: ignore[REG-DANGLING-KEY]


def test_register_kernel_requires_a_name():
    with pytest.raises(ValueError, match="non-empty name"):
        @contract.register_kernel
        class Nameless(contract.CurveKernel):
            pass


def test_numpy_request_degrades_without_numpy(monkeypatch):
    from repro.curves import kernels
    monkeypatch.setattr(kernels, "_np", None)
    monkeypatch.setattr(kernels, "_fallback_logged", True)
    assert contract.get_kernel("numpy").name == "python"


def test_library_shadow_table_marks_same_bucket_predecessors():
    params = _buffer_params(6)
    coarse = CurveConfig(load_step=1e9)  # every cap lands in bucket 0
    lib = contract.KernelLibrary(params, coarse)
    assert lib.has_shadows
    assert lib.shadows[0] == ()
    assert all(lib.shadows[j] == tuple(range(j))
               for j in range(len(params)))

    fine = CurveConfig(load_step=1e-6)  # every cap in its own bucket
    lib = contract.KernelLibrary(params, fine)
    assert not lib.has_shadows
    assert all(s == () for s in lib.shadows)


# ----------------------------------------------------------------------
# Block pipeline vs solution-object reference
# ----------------------------------------------------------------------

def _ref_join(curve: SolutionCurve, lefts, rights) -> None:
    for a in lefts:
        for b in rights:
            load = a.load + b.load
            req = min(a.required_time, b.required_time)
            area = a.area + b.area
            key = curve.accept_key(load, req, area)
            if key is not None:
                curve.add_keyed(key, Solution(curve.root, load, req, area,
                                              Join(a, b)))


def _ref_buffer(curve: SolutionCurve, params) -> None:
    for s in list(curve):
        for buffer, input_cap, buf_area, d0, slope in params:
            req = s.required_time - d0 - slope * s.load
            area = s.area + buf_area
            key = curve.accept_key(input_cap, req, area)
            if key is not None:
                curve.add_keyed(key, Solution(curve.root, input_cap, req,
                                              area, Buffered(s, buffer)))


def _reference(lefts, rights, params, config) -> list:
    """The whole pipeline on materialized Solution objects only."""
    def folded(sols):
        c = SolutionCurve(P, config)
        for s in sols:
            c.add(s)
        c.prune()
        return c.solutions

    curve = SolutionCurve(P, config)
    _ref_join(curve, folded(lefts), folded(rights))
    curve.prune()
    _ref_buffer(curve, params)
    curve.prune()
    merged = SolutionCurve(P, config)
    merged.extend(curve.solutions)
    merged.prune()
    return merged.solutions


def _block_of(kernel, sols, config):
    curve = kernel.new_curve(P, config)
    for s in sols:
        curve.add(s)
    kernel.prune(curve)
    return kernel.freeze(curve)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_block_pipeline_matches_solution_reference(backend, seed):
    """join -> prune -> add_buffer -> prune -> freeze -> merge ->
    traceback on kernel blocks == the naive Solution-object path.

    Sizes are drawn to straddle the scalar/vector dispatch thresholds,
    and the coarse load step makes several buffers share a load bucket,
    so the Li & Shi shadow skip actually fires on at least one seed.
    """
    rng = random.Random(seed)
    config = CurveConfig(load_step=2.0, area_step=3.0, max_solutions=24,
                         backend=backend)
    lefts = _random_solutions(rng, rng.randint(2, 40))
    rights = _random_solutions(rng, rng.randint(2, 40))
    params = _buffer_params()

    kernel = contract.get_kernel(backend)
    library = kernel.make_library(params, config)
    curve = kernel.new_curve(P, config)
    kernel.join(curve, _block_of(kernel, lefts, config),
                _block_of(kernel, rights, config))
    kernel.prune(curve)
    kernel.add_buffer(curve, library)
    kernel.prune(curve)
    merged = kernel.new_curve(P, config)
    kernel.merge(merged, kernel.freeze(curve))
    kernel.prune(merged)
    got = kernel.traceback(kernel.freeze(merged))

    want = _reference(lefts, rights, params,
                      CurveConfig(load_step=2.0, area_step=3.0,
                                  max_solutions=24))
    # Attributes AND the traceback topology (Join/Buffered trees)
    # must match, in curve order.
    assert _sigs(got) == _sigs(want)


@pytest.mark.parametrize("backend", BACKENDS)
def test_thaw_round_trips_the_live_curve(backend):
    rng = random.Random(11)
    config = CurveConfig(load_step=2.0, area_step=3.0, max_solutions=16,
                         backend=backend)
    kernel = contract.get_kernel(backend)
    curve = kernel.new_curve(P, config)
    for s in _random_solutions(rng, 60):
        curve.add(s)
    kernel.prune(curve)
    thawed = kernel.thaw(curve)
    assert isinstance(thawed, SolutionCurve)
    assert _sigs(thawed.solutions) == \
        _sigs(kernel.traceback(kernel.freeze(curve)))


@pytest.mark.parametrize("backend", BACKENDS)
def test_shadow_skip_never_changes_the_curve(backend):
    """With a huge load step every buffer shares one load bucket — the
    adversarial case for the predecessor skip.  The surviving curve must
    equal the no-shadow reference exactly."""
    rng = random.Random(17)
    config = CurveConfig(load_step=500.0, area_step=3.0, max_solutions=24,
                         backend=backend)
    params = _buffer_params()
    sources = _random_solutions(rng, 30)

    kernel = contract.get_kernel(backend)
    library = kernel.make_library(params, config)
    assert library.has_shadows
    curve = kernel.new_curve(P, config)
    for s in sources:
        curve.add(s)
    kernel.prune(curve)
    pruned_sources = kernel.traceback(kernel.freeze(curve))
    kernel.add_buffer(curve, library)
    kernel.prune(curve)
    got = kernel.traceback(kernel.freeze(curve))

    ref = SolutionCurve(P, CurveConfig(load_step=500.0, area_step=3.0,
                                       max_solutions=24))
    for s in pruned_sources:
        ref.add(s)
    ref.prune()
    _ref_buffer(ref, params)
    ref.prune()
    assert _sigs(got) == _sigs(ref.solutions)
