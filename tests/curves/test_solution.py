"""Tests for repro.curves.solution."""

import pytest

from repro.curves.solution import (
    Buffered,
    Extend,
    Join,
    SinkLeaf,
    Solution,
    check_solution,
    sink_leaf_solution,
)
from repro.geometry.point import Point
from repro.tech.buffer import Buffer

P = Point(0, 0)
BUF = Buffer("B", input_cap=5.0, drive_resistance=2.0,
             intrinsic_delay=40.0, area=30.0)


def sol(load=10.0, req=100.0, area=0.0):
    return Solution(P, load, req, area, SinkLeaf(0))


class TestDominance:
    """Definition 6: σ1 dominates σ2 iff no worse on all three axes."""

    def test_strictly_better_dominates(self):
        assert sol(5, 200, 0).dominates(sol(10, 100, 30))

    def test_equal_attributes_dominate(self):
        assert sol().dominates(sol())

    def test_better_req_worse_load_is_incomparable(self):
        a = sol(load=5, req=100)
        b = sol(load=10, req=200)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_area_axis_matters(self):
        cheap = sol(area=0)
        pricey = sol(area=100)
        assert cheap.dominates(pricey)
        assert not pricey.dominates(cheap)

    def test_key_orders_by_load_then_req_desc(self):
        a, b = sol(load=1, req=5), sol(load=1, req=9)
        assert b.key() < a.key()


class TestDetails:
    def test_sink_leaf_solution(self):
        s = sink_leaf_solution(P, 3, 12.0, 900.0)
        assert isinstance(s.detail, SinkLeaf)
        assert s.detail.sink_index == 3
        assert s.area == 0.0

    def test_detail_nesting(self):
        inner = sink_leaf_solution(P, 0, 5.0, 100.0)
        wired = Solution(Point(10, 0), 6.0, 90.0, 0.0, Extend(inner, 10.0))
        buffered = Solution(Point(10, 0), BUF.input_cap, 50.0, BUF.area,
                            Buffered(wired, BUF))
        assert buffered.detail.child is wired
        assert wired.detail.child is inner

    def test_join_detail_holds_both_children(self):
        a = sink_leaf_solution(P, 0, 5.0, 100.0)
        b = sink_leaf_solution(P, 1, 7.0, 120.0)
        joined = Solution(P, 12.0, 100.0, 0.0, Join(a, b))
        assert joined.detail.left is a
        assert joined.detail.right is b


class TestCheckSolution:
    def test_valid_passes(self):
        check_solution(sol())

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            check_solution(Solution(P, -1.0, 0.0, 0.0, SinkLeaf(0)))

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            check_solution(Solution(P, 1.0, 0.0, -5.0, SinkLeaf(0)))

    def test_bogus_detail_rejected(self):
        with pytest.raises(ValueError):
            check_solution(Solution(P, 1.0, 0.0, 0.0, "not a detail"))
