"""Tests for repro.curves.curve (pruning per Definition 6 / Lemma 9)."""

import pytest

from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import SinkLeaf, Solution
from repro.geometry.point import Point

P = Point(0, 0)


def sol(load, req, area=0.0):
    return Solution(P, load, req, area, SinkLeaf(0))


def fine_curve(max_solutions=1000):
    return SolutionCurve(P, CurveConfig(load_step=0.001, area_step=0.001,
                                        max_solutions=max_solutions))


class TestCurveConfig:
    def test_bucket(self):
        cfg = CurveConfig(load_step=2.0, area_step=50.0)
        assert cfg.bucket(sol(3.0, 0.0, 120.0)) == (2, 2)

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            CurveConfig(load_step=0.0)
        with pytest.raises(ValueError):
            CurveConfig(area_step=-1.0)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            CurveConfig(max_solutions=2)


class TestAdd:
    def test_add_keeps_new_solution(self):
        curve = fine_curve()
        assert curve.add(sol(1, 10))
        assert len(curve) == 1

    def test_same_bucket_keeps_better_required_time(self):
        curve = SolutionCurve(P, CurveConfig(load_step=10, area_step=10))
        curve.add(sol(1, 10))
        assert not curve.add(sol(1.1, 5))   # same bucket, worse req
        assert curve.add(sol(1.2, 20))      # same bucket, better req
        assert len(curve) == 1
        assert next(iter(curve)).required_time == 20

    def test_wrong_root_rejected(self):
        curve = fine_curve()
        with pytest.raises(ValueError):
            curve.add(Solution(Point(1, 1), 1, 1, 0, SinkLeaf(0)))

    def test_accept_key_matches_add(self):
        curve = fine_curve()
        curve.add(sol(1, 10))
        assert curve.accept_key(1, 5, 0) is None or True  # different bucket ok
        # exact same attributes: rejected (incumbent as good)
        assert curve.accept_key(1.0, 10.0, 0.0) is None
        assert curve.accept_key(1.0, 11.0, 0.0) is not None

    def test_extend_counts_kept(self):
        curve = fine_curve()
        kept = curve.extend([sol(1, 10), sol(2, 20), sol(1.0, 5.0)])
        # The third shares the first's bucket with a worse required time.
        assert kept == 2


class TestPrune:
    def test_dominated_solutions_removed(self):
        curve = fine_curve()
        curve.add(sol(10, 100, 50))
        curve.add(sol(5, 200, 10))   # dominates the first
        curve.prune()
        remaining = list(curve)
        assert len(remaining) == 1
        assert remaining[0].required_time == 200

    def test_incomparable_solutions_survive(self):
        curve = fine_curve()
        curve.add(sol(5, 100, 0))
        curve.add(sol(10, 200, 0))
        curve.add(sol(1, 50, 0))
        curve.prune()
        assert len(curve) == 3
        assert curve.is_non_inferior_set()

    def test_prune_is_idempotent(self):
        curve = fine_curve()
        for i in range(20):
            curve.add(sol(i, 100 - i, i % 3))
        curve.prune()
        first = sorted(s.key() for s in curve)
        curve.prune()
        assert sorted(s.key() for s in curve) == first

    def test_three_axis_tradeoffs_kept(self):
        """A solution worse in req/load but cheaper in area must survive."""
        curve = fine_curve()
        curve.add(sol(5, 200, 100))
        curve.add(sol(6, 150, 0))
        curve.prune()
        assert len(curve) == 2

    def test_capacity_cap_enforced(self):
        curve = SolutionCurve(P, CurveConfig(load_step=0.001,
                                             area_step=0.001,
                                             max_solutions=5))
        # A genuine 20-point Pareto front (load up, req up).
        for i in range(20):
            curve.add(sol(float(i), float(i), 0.0))
        curve.prune()
        assert len(curve) == 5

    def test_cap_keeps_extreme_points(self):
        curve = SolutionCurve(P, CurveConfig(load_step=0.001,
                                             area_step=0.001,
                                             max_solutions=5))
        for i in range(30):
            curve.add(sol(float(i), float(i), 30.0 - i))
        curve.prune()
        reqs = [s.required_time for s in curve]
        loads = [s.load for s in curve]
        areas = [s.area for s in curve]
        assert max(reqs) == 29.0     # best required time survived
        assert min(loads) == 0.0     # min load survived
        assert min(areas) == 1.0     # min area survived


class TestQueries:
    def test_best_required_time(self):
        curve = fine_curve()
        assert curve.best_required_time() is None
        curve.add(sol(1, 10))
        curve.add(sol(2, 30))
        assert curve.best_required_time().required_time == 30

    def test_solutions_sorted_by_load(self):
        curve = fine_curve()
        curve.add(sol(5, 1))
        curve.add(sol(1, 2))
        curve.add(sol(3, 3))
        assert [s.load for s in curve.solutions] == [1, 3, 5]

    def test_bool_and_len(self):
        curve = fine_curve()
        assert not curve
        curve.add(sol(1, 1))
        assert curve and len(curve) == 1
