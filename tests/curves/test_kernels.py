"""Unit tests for the vectorized curve kernels (numpy backend).

The contract under test is *bit-identity*: every kernel must reproduce
the scalar backend's results exactly — same surviving solutions, same
bucket keys, same dict insertion order — so the engine's output is
independent of ``CurveConfig.backend``.  Golden regressions cover the
end-to-end engine; these tests pin the individual kernels against their
scalar references on adversarial random batches.
"""

from __future__ import annotations

import random

import pytest

from repro.curves import kernels
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.curves.solution import Join, SinkLeaf, Solution
from repro.geometry.point import Point

np = pytest.importorskip("numpy")

P = Point(0, 0)


def _random_solutions(rng, n, span=30):
    """Integer-valued attributes force heavy bucket collisions."""
    return [
        Solution(P, float(rng.randint(0, span)),
                 float(rng.randint(-span, span)),
                 float(rng.randint(0, span)), SinkLeaf(i))
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Backend resolution and graceful degradation
# ----------------------------------------------------------------------

def test_resolve_backend_passthrough():
    assert kernels.resolve_backend("python") == "python"
    assert kernels.resolve_backend("numpy") == "numpy"


def test_unknown_backend_rejected_by_config():
    with pytest.raises(ValueError, match="unknown backend"):
        CurveConfig(backend="fortran")


def test_missing_numpy_degrades_with_single_log(monkeypatch, caplog):
    monkeypatch.setattr(kernels, "_np", None)
    monkeypatch.setattr(kernels, "_fallback_logged", False)
    with caplog.at_level("WARNING", logger="repro.curves.kernels"):
        assert kernels.resolve_backend("numpy") == "python"
        assert kernels.resolve_backend("numpy") == "python"
    assert len([r for r in caplog.records
                if "falling back" in r.message.lower()
                or "numpy" in r.message.lower()]) == 1
    # And the config-level resolution degrades the same way.
    assert CurveConfig(backend="numpy").resolved_backend() == "python"


# ----------------------------------------------------------------------
# SoA mirrors
# ----------------------------------------------------------------------

def test_curve_soa_columns_match_solutions():
    rng = random.Random(3)
    sols = _random_solutions(rng, 17)
    soa = kernels.CurveSoA(sols)
    assert list(soa) == sols
    assert len(soa) == len(sols)
    assert soa.loads.tolist() == [s.load for s in sols]
    assert soa.reqs.tolist() == [s.required_time for s in sols]
    assert soa.areas.tolist() == [s.area for s in sols]


def test_buffer_vectors_align_with_params():
    params = [(object(), 2.0, 40.0, 18.0, 0.7),
              (object(), 5.0, 90.0, 11.0, 0.3)]
    vecs = kernels.BufferVectors(params)
    assert len(vecs) == 2
    assert vecs.caps.tolist() == [2.0, 5.0]
    assert vecs.areas.tolist() == [40.0, 90.0]
    assert vecs.d0.tolist() == [18.0, 11.0]
    assert vecs.slope.tolist() == [0.7, 0.3]


# ----------------------------------------------------------------------
# Winner-stream vs sequential scalar insertion
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_winner_stream_matches_sequential_insertion(seed):
    """Grouped argmax == inserting the stream one by one, including the
    dict insertion order of newly created buckets."""
    rng = random.Random(seed)
    n = rng.randint(1, 400)
    loads = np.array([float(rng.randint(0, 25)) for _ in range(n)])
    reqs = np.array([float(rng.randint(-25, 25)) for _ in range(n)])
    areas = np.array([float(rng.randint(0, 25)) for _ in range(n)])
    inv_load, inv_area = 1.0 / 2.0, 1.0 / 3.0

    # Scalar reference: first entry strictly beating the incumbent wins.
    ref = {}
    for i in range(n):
        key = (round(loads[i] * inv_load), round(areas[i] * inv_area))
        cur = ref.get(key)
        if cur is None or reqs[cur] < reqs[i]:
            ref[key] = i

    win, klo, kar, w_loads, w_reqs, w_areas = kernels._winner_stream(
        inv_load, inv_area, loads, reqs, areas)
    got = dict(zip(zip(klo, kar), win))
    assert got == ref
    assert list(got) == list(ref)  # same first-occurrence key order
    assert w_loads == [loads[i] for i in win]
    assert w_reqs == [reqs[i] for i in win]
    assert w_areas == [areas[i] for i in win]


# ----------------------------------------------------------------------
# Vectorized prune vs scalar staircase
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_survivor_indices_match_scalar_staircase(seed):
    rng = random.Random(100 + seed)
    n = rng.randint(1, 500)
    items = []
    for i in range(n):
        entry = (float(rng.randint(0, 30)), float(rng.randint(-30, 30)),
                 float(rng.randint(0, 30)), None, i)
        items.append(((i, i), entry))
    loads = np.array([kv[1][0] for kv in items])
    reqs = np.array([kv[1][1] for kv in items])
    areas = np.array([kv[1][2] for kv in items])

    keep = kernels._survivor_indices(loads, areas, reqs)
    vector = [items[i] for i in keep.tolist()]
    scalar = kernels._pending_prune_scalar(items)
    assert vector == scalar


# ----------------------------------------------------------------------
# PendingCurve vs SolutionCurve (deferred materialization)
# ----------------------------------------------------------------------

def _scalar_join(curve: SolutionCurve, lefts, rights) -> None:
    """The python backend's join loop (left-major), verbatim."""
    for left in lefts:
        for right in rights:
            load = left.load + right.load
            req = min(left.required_time, right.required_time)
            area = left.area + right.area
            key = curve.accept_key(load, req, area)
            if key is not None:
                curve.add_keyed(key, Solution(curve.root, load, req, area,
                                              Join(left, right)))


def _contents(curve: SolutionCurve):
    return [(key, s.load, s.required_time, s.area)
            for key, s in curve._by_bucket.items()]


@pytest.mark.parametrize("n_left,n_right", [(3, 4), (14, 13), (25, 24)])
def test_pending_join_matches_scalar(n_left, n_right):
    """Covers both the scalar dispatch (small) and vector (large) paths."""
    rng = random.Random(n_left * 100 + n_right)
    lefts = _random_solutions(rng, n_left)
    rights = _random_solutions(rng, n_right)
    config = CurveConfig(load_step=2.0, area_step=3.0, max_solutions=24)

    scalar = SolutionCurve(P, config)
    _scalar_join(scalar, lefts, rights)
    scalar.prune()

    pending = kernels.PendingCurve(P, config)
    kernels.pending_join(pending, kernels.CurveSoA(lefts),
                         kernels.CurveSoA(rights))
    pending.prune()

    assert _contents(pending.to_solution_curve()) == _contents(scalar)


@pytest.mark.parametrize("n", [5, 80, 300])
def test_pending_extend_and_prune_match_scalar(n):
    rng = random.Random(n)
    sols = _random_solutions(rng, n)
    config = CurveConfig(load_step=2.0, area_step=3.0, max_solutions=16)

    scalar = SolutionCurve(P, config)
    for s in sols:
        scalar.add(s)
    scalar.prune()

    pending = kernels.PendingCurve(P, config)
    pending.extend(kernels.CurveSoA(sols))
    pending.prune()

    assert _contents(pending.to_solution_curve()) == _contents(scalar)
    # Materialized survivors are the scalar backend's actual solutions.
    assert pending.solutions == scalar.solutions


def test_pending_prune_records_instrumentation():
    from repro.instrument import Recorder, names as metric
    from repro.instrument.recorder import use_recorder

    rng = random.Random(9)
    pending = kernels.PendingCurve(
        P, CurveConfig(load_step=1.0, area_step=1.0, max_solutions=8))
    rec = Recorder()
    with use_recorder(rec):
        pending.extend(kernels.CurveSoA(_random_solutions(rng, 120)))
        pending.prune()
    assert rec.counter(metric.CURVE_PRUNE_CALLS) == 1
    assert rec.counter(metric.CURVE_PRUNE_REMOVED) >= 0


def test_solution_curve_batch_extend_matches_scalar_adds():
    """SolutionCurve.extend with a CurveSoA batch == one-by-one add."""
    rng = random.Random(21)
    sols = _random_solutions(rng, kernels.EXTEND_MIN_ITEMS + 40)
    config_np = CurveConfig(load_step=2.0, area_step=3.0,
                            max_solutions=32, backend="numpy")
    config_py = CurveConfig(load_step=2.0, area_step=3.0,
                            max_solutions=32, backend="python")

    batched = SolutionCurve(P, config_np)
    batched.extend(kernels.CurveSoA(sols))
    sequential = SolutionCurve(P, config_py)
    for s in sols:
        sequential.add(s)

    assert _contents(batched) == _contents(sequential)
