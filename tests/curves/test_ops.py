"""Tests for repro.curves.ops: the three DP combinators."""

import pytest

from repro.curves.ops import (
    buffer_solution,
    buffered_options,
    extend_curve,
    extend_solution,
    join_curves,
    join_solutions,
)
from repro.curves.solution import Buffered, Extend, Join, sink_leaf_solution
from repro.geometry.point import Point
from repro.tech.technology import default_technology

TECH = default_technology()
A = Point(0, 0)
B = Point(100, 0)


def leaf(load=10.0, req=500.0, at=A, idx=0):
    return sink_leaf_solution(at, idx, load, req)


class TestExtend:
    def test_extend_adds_wire_cap_and_delay(self):
        s = extend_solution(leaf(), B, TECH)
        wire_cap = TECH.wire_cap(100.0)
        wire_delay = TECH.wire_delay(100.0, 10.0)
        assert s.root == B
        assert s.load == pytest.approx(10.0 + wire_cap)
        assert s.required_time == pytest.approx(500.0 - wire_delay)
        assert s.area == 0.0
        assert isinstance(s.detail, Extend)
        assert s.detail.length == 100.0

    def test_extend_to_same_point_is_identity(self):
        s = leaf()
        assert extend_solution(s, A, TECH) is s

    def test_extend_never_improves(self):
        s = extend_solution(leaf(), B, TECH)
        assert s.required_time < 500.0
        assert s.load > 10.0

    def test_extend_curve_is_lazy_and_complete(self):
        extended = list(extend_curve([leaf(), leaf(load=20)], B, TECH))
        assert len(extended) == 2
        assert all(e.root == B for e in extended)


class TestJoin:
    def test_join_adds_loads_and_areas_takes_min_req(self):
        a = leaf(load=10, req=500)
        b = leaf(load=20, req=400, idx=1)
        joined = join_solutions(a, b)
        assert joined.load == 30
        assert joined.required_time == 400
        assert isinstance(joined.detail, Join)

    def test_join_requires_same_root(self):
        with pytest.raises(ValueError):
            join_solutions(leaf(at=A), leaf(at=B, idx=1))

    def test_join_curves_cross_product(self):
        lefts = [leaf(load=1), leaf(load=2)]
        rights = [leaf(load=10, idx=1), leaf(load=20, idx=1),
                  leaf(load=30, idx=1)]
        joined = list(join_curves(lefts, rights))
        assert len(joined) == 6
        assert {j.load for j in joined} == {11, 21, 31, 12, 22, 32}


class TestBuffering:
    def test_buffer_collapses_load_to_input_cap(self):
        buf = TECH.buffers.smallest
        s = buffer_solution(leaf(load=300.0), buf, TECH)
        assert s.load == buf.input_cap
        assert s.area == buf.area
        assert s.required_time == pytest.approx(
            500.0 - TECH.buffer_delay(buf, 300.0))
        assert isinstance(s.detail, Buffered)

    def test_buffered_options_includes_original(self):
        options = buffered_options(leaf(), TECH)
        assert len(options) == len(TECH.buffers) + 1
        assert options[0] is not None and options[0].detail.sink_index == 0

    def test_buffered_options_can_exclude_original(self):
        options = buffered_options(leaf(), TECH, include_unbuffered=False)
        assert len(options) == len(TECH.buffers)
        assert all(isinstance(o.detail, Buffered) for o in options)

    def test_buffering_huge_load_pays_off_upstream(self):
        """Decoupling: upstream of a buffer, the load is tiny.

        Driving 500 fF through 12 mm of wire unbuffered costs
        R_wire * (C_wire/2 + 500) ≈ 1260 ps; paying the largest buffer's
        ~240 ps and driving only its ~72 fF input cap costs ≈ 1115 ps.
        """
        heavy = leaf(load=500.0)
        buf = TECH.buffers.largest
        buffered = buffer_solution(heavy, buf, TECH)
        far = Point(12000, 0)
        unbuffered_far = extend_solution(heavy, far, TECH)
        buffered_far = extend_solution(buffered, far, TECH)
        assert buffered_far.required_time > unbuffered_far.required_time
