"""Shared fixtures: deterministic nets, technologies, small configs."""

from __future__ import annotations

import random

import pytest

from repro.core.config import MerlinConfig
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.tech.technology import Technology, default_technology


def build_net(n_sinks: int, seed: int, box: float = 1500.0,
              name: str = "tnet") -> Net:
    """A seeded random net; the workhorse of the DP tests."""
    rng = random.Random(seed)
    sinks = tuple(
        Sink(
            name=f"{name}_s{i}",
            position=Point(rng.uniform(0.0, box), rng.uniform(0.0, box)),
            load=rng.uniform(4.0, 40.0),
            required_time=rng.uniform(700.0, 1100.0),
        )
        for i in range(n_sinks)
    )
    return Net(name=name, source=Point(0.0, 0.0), sinks=sinks)


@pytest.fixture(scope="session")
def tech() -> Technology:
    """Full default technology (34-buffer synthetic library)."""
    return default_technology()


@pytest.fixture(scope="session")
def small_tech() -> Technology:
    """Technology thinned to 4 buffers — faster DP tests."""
    full = default_technology()
    return full.with_buffers(full.buffers.subset(4))


@pytest.fixture()
def test_config() -> MerlinConfig:
    """Smallest meaningful DP knobs (see MerlinConfig.test_preset)."""
    return MerlinConfig.test_preset()


@pytest.fixture()
def tiny_net() -> Net:
    """Two sinks, hand-placed: easy to reason about by hand."""
    return Net(
        name="tiny",
        source=Point(0.0, 0.0),
        sinks=(
            Sink("a", Point(400.0, 0.0), load=10.0, required_time=500.0),
            Sink("b", Point(0.0, 600.0), load=20.0, required_time=650.0),
        ),
    )


@pytest.fixture()
def small_net() -> Net:
    return build_net(4, seed=42)


@pytest.fixture()
def medium_net() -> Net:
    return build_net(6, seed=7)
