"""Tests for repro.baselines.ptree (PTREE of [LCLH96])."""

import pytest

from repro.baselines.ptree import ptree_route
from repro.core.config import MerlinConfig
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.routing.evaluate import evaluate_tree
from repro.routing.sink_order import extract_sink_order
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


class TestPtreeRoute:
    def test_produces_valid_unbuffered_tree(self):
        net = build_net(5, seed=1)
        result = ptree_route(net, TECH, config=CFG)
        validate_tree(result.tree)
        assert result.tree.buffer_nodes == []
        assert result.solution.area == 0.0

    def test_respects_given_order(self):
        net = build_net(5, seed=2)
        order = Order.from_sequence([4, 2, 0, 3, 1])
        result = ptree_route(net, TECH, order=order, config=CFG)
        assert extract_sink_order(result.tree) == list(order)

    def test_default_order_is_tsp(self):
        net = build_net(5, seed=3)
        explicit = ptree_route(net, TECH, order=tsp_order(net), config=CFG)
        default = ptree_route(net, TECH, config=CFG)
        assert extract_sink_order(default.tree) == \
            extract_sink_order(explicit.tree)

    def test_dp_matches_evaluator(self):
        net = build_net(4, seed=4)
        result = ptree_route(net, TECH, config=CFG)
        ev = evaluate_tree(result.tree, TECH)
        assert ev.required_time_at_driver == pytest.approx(
            result.solution.required_time, abs=1e-6)
        assert ev.buffer_area == 0.0

    def test_wrong_order_size_rejected(self):
        net = build_net(3, seed=5)
        with pytest.raises(ValueError):
            ptree_route(net, TECH, order=Order.identity(4), config=CFG)

    def test_single_sink(self):
        net = build_net(1, seed=6)
        result = ptree_route(net, TECH, config=CFG)
        validate_tree(result.tree)

    def test_beats_star_routing_on_clustered_sinks(self):
        """A Steiner tree shares trunk wire that a star pays repeatedly."""
        from repro.geometry.point import Point
        from repro.net import Net, Sink
        from repro.routing.tree import RoutingTree, SinkNode, SourceNode

        sinks = tuple(
            Sink(f"s{i}", Point(2000.0, 100.0 * i), load=10.0,
                 required_time=1000.0)
            for i in range(4)
        )
        net = Net("cluster", Point(0, 0), sinks)
        routed = ptree_route(net, TECH, config=CFG)
        star_root = SourceNode(net.source)
        for i, sink in enumerate(sinks):
            star_root.add_child(SinkNode(sink.position, i))
        star = evaluate_tree(RoutingTree(net=net, root=star_root), TECH)
        tree_ev = evaluate_tree(routed.tree, TECH)
        assert tree_ev.wire_length < star.wire_length
        assert tree_ev.required_time_at_driver > \
            star.required_time_at_driver

    def test_final_curve_sorted_non_inferior(self):
        net = build_net(4, seed=8)
        result = ptree_route(net, TECH, config=CFG)
        finals = result.final_solutions
        for i, a in enumerate(finals):
            for j, b in enumerate(finals):
                if i != j:
                    assert not (a.dominates(b) and a.key() != b.key())
