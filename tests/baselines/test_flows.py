"""Tests for repro.baselines.flows (the three experimental setups)."""

import pytest

from repro.baselines.flows import (
    ALL_FLOWS,
    FLOW_I,
    FLOW_II,
    FLOW_III,
    run_all_flows,
    run_flow,
)
from repro.core.config import MerlinConfig
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


class TestRunFlow:
    @pytest.mark.parametrize("flow", ALL_FLOWS)
    def test_each_flow_produces_valid_evaluated_tree(self, flow):
        net = build_net(5, seed=1)
        result = run_flow(flow, net, TECH, config=CFG)
        validate_tree(result.tree)
        assert result.runtime_s >= 0.0
        assert result.delay > 0.0
        assert result.evaluation.sink_arrivals.keys() == set(range(5))

    def test_unknown_flow_rejected(self):
        net = build_net(3, seed=2)
        with pytest.raises(ValueError, match="unknown flow"):
            run_flow("flow4_magic", net, TECH, config=CFG)

    def test_flow1_embeds_lttree_buffers(self):
        """Flow I's tree must contain the chain buffers it planned."""
        from repro.baselines.lttree import lttree_fanout

        net = build_net(8, seed=3)
        planned = lttree_fanout(net, TECH, config=CFG)
        result = run_flow(FLOW_I, net, TECH, config=CFG)
        assert len(result.tree.buffer_nodes) == planned.root.depth

    def test_flow2_runs_ptree_then_insertion(self):
        net = build_net(5, seed=4)
        result = run_flow(FLOW_II, net, TECH, config=CFG)
        validate_tree(result.tree)

    def test_flow3_reports_loops(self):
        net = build_net(4, seed=5)
        result = run_flow(FLOW_III, net, TECH,
                          config=CFG.with_(max_iterations=3))
        assert 1 <= result.loops <= 3
        assert "cost_trace" in result.extra

    def test_sequential_flows_report_single_loop(self):
        net = build_net(4, seed=6)
        for flow in (FLOW_I, FLOW_II):
            assert run_flow(flow, net, TECH, config=CFG).loops == 1


class TestRunAllFlows:
    def test_returns_all_three(self):
        net = build_net(4, seed=7)
        results = run_all_flows(net, TECH, config=CFG)
        assert set(results) == set(ALL_FLOWS)

    def test_buffered_flows_beat_flow1_on_typical_nets(self):
        """The headline shape: unified/buffered routing beats naive
        LTTREE-then-route on delay, on a majority of nets."""
        wins_ii = wins_iii = total = 0
        for seed in (1, 2, 3):
            net = build_net(6, seed=seed)
            results = run_all_flows(net, TECH, config=CFG)
            total += 1
            if results[FLOW_II].delay < results[FLOW_I].delay:
                wins_ii += 1
            if results[FLOW_III].delay < results[FLOW_I].delay:
                wins_iii += 1
        assert wins_ii >= 2
        assert wins_iii >= 2

    def test_all_flows_drive_all_sinks(self):
        net = build_net(5, seed=9)
        for result in run_all_flows(net, TECH, config=CFG).values():
            assert sorted(result.evaluation.sink_arrivals) == list(range(5))
