"""The buffered-star baseline: validity, determinism, stability."""

from __future__ import annotations

from tests.conftest import build_net
from repro.baselines.star import buffered_star, star_buffer
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.evaluate import evaluate_tree
from repro.routing.export import tree_signature
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology

TECH = default_technology()


def test_star_is_a_valid_tree_covering_every_sink():
    net = build_net(6, seed=31)
    tree = buffered_star(net, TECH)
    validate_tree(tree)
    evaluation = evaluate_tree(tree, TECH)
    assert evaluation.buffer_count == 1
    assert evaluation.buffer_area == star_buffer(TECH).area


def test_star_signature_is_deterministic():
    net = build_net(5, seed=32)
    assert tree_signature(buffered_star(net, TECH)) == \
        tree_signature(buffered_star(net, TECH))


def test_star_buffer_is_the_strongest_driver():
    chosen = star_buffer(TECH)
    assert chosen.drive_resistance == min(
        b.drive_resistance for b in TECH.buffers)


def test_star_handles_a_single_sink():
    net = Net("one", Point(0, 0),
              (Sink("s", Point(700, 100), load=8.0, required_time=500.0),))
    tree = buffered_star(net, TECH)
    validate_tree(tree)
    assert evaluate_tree(tree, TECH).buffer_count == 1


def test_star_never_searches_so_it_cannot_exhaust_a_budget():
    # The ladder-floor contract: construction is a function of (net,
    # tech) alone — no config, no budget, no curves.
    import inspect

    from repro.baselines import star

    signature = inspect.signature(star.buffered_star)
    assert list(signature.parameters) == ["net", "tech"]
