"""Tests for repro.baselines.lttree (LT-Tree type-I fanout optimization)."""

import pytest

from repro.baselines.lttree import FanoutNode, lttree_fanout
from repro.core.config import MerlinConfig
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.orders.heuristics import required_time_order
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


def chain_stages(root: FanoutNode):
    """Walk the buffer chain from the root stage to the tail."""
    stages = [root]
    while stages[-1].child is not None:
        stages.append(stages[-1].child)
    return stages


class TestTopology:
    def test_covers_all_sinks_exactly_once(self):
        net = build_net(6, seed=1)
        result = lttree_fanout(net, TECH, config=CFG)
        assert sorted(result.root.all_sinks()) == list(range(6))

    def test_chain_structure(self):
        """LT-Tree type I: internal nodes form a chain (Lemma 2/3)."""
        net = build_net(8, seed=2)
        result = lttree_fanout(net, TECH, config=CFG)
        for stage in chain_stages(result.root)[1:]:
            assert stage.buffer is not None

    def test_root_stage_has_no_buffer(self):
        net = build_net(5, seed=3)
        result = lttree_fanout(net, TECH, config=CFG)
        assert result.root.buffer is None

    def test_buffer_area_accumulates(self):
        net = build_net(7, seed=4)
        result = lttree_fanout(net, TECH, config=CFG)
        manual = sum(stage.buffer.area
                     for stage in chain_stages(result.root)
                     if stage.buffer is not None)
        assert result.buffer_area == pytest.approx(manual)
        assert result.root.buffer_area == pytest.approx(manual)

    def test_depth_counts_buffers(self):
        net = build_net(6, seed=5)
        result = lttree_fanout(net, TECH, config=CFG)
        assert result.root.depth == len(chain_stages(result.root)) - 1


class TestOptimization:
    def test_heavy_fanout_gets_buffers(self):
        """Driving 30 heavy sinks directly is clearly worse than a chain."""
        sinks = tuple(
            Sink(f"s{i}", Point(0, 0), load=60.0, required_time=1000.0)
            for i in range(30)
        )
        net = Net("heavy", Point(0, 0), sinks)
        result = lttree_fanout(net, TECH, config=CFG)
        assert result.root.depth >= 1
        flat_delay = TECH.driver_delay(net.total_sink_load)
        assert result.required_time > 1000.0 - flat_delay

    def test_light_fanout_stays_flat(self):
        """Two tiny sinks: a buffer can only add delay."""
        sinks = (
            Sink("a", Point(0, 0), load=3.0, required_time=1000.0),
            Sink("b", Point(0, 0), load=3.0, required_time=1000.0),
        )
        net = Net("light", Point(0, 0), sinks)
        result = lttree_fanout(net, TECH, config=CFG)
        assert result.root.depth == 0
        assert result.buffer_area == 0.0

    def test_critical_sinks_close_to_driver(self):
        """Non-critical sinks are pushed deeper down the chain."""
        sinks = (
            Sink("critical", Point(0, 0), load=20.0, required_time=100.0),
            *[Sink(f"slack{i}", Point(0, 0), load=20.0, required_time=2000.0)
              for i in range(12)],
        )
        net = Net("mix", Point(0, 0), sinks)
        result = lttree_fanout(net, TECH, config=CFG)
        stages = chain_stages(result.root)
        if len(stages) > 1:
            critical_depth = next(
                depth for depth, stage in enumerate(stages)
                if 0 in stage.sink_indices)
            slack_depths = [depth for depth, stage in enumerate(stages)
                            for s in stage.sink_indices if s != 0]
            assert critical_depth <= max(slack_depths)

    def test_required_time_is_logic_domain_consistent(self):
        """Recomputing the chain's required time matches the DP's value."""
        net = build_net(5, seed=7)
        result = lttree_fanout(net, TECH, config=CFG)

        def stage_req(stage):
            direct = [net.sink(i) for i in stage.sink_indices]
            load = sum(s.load for s in direct)
            req = min((s.required_time for s in direct),
                      default=float("inf"))
            if stage.child is not None:
                load += stage.child.buffer.input_cap
                req = min(req, stage_req(stage.child))
            if stage.buffer is None:
                return req - TECH.driver_delay(
                    load, net.driver_resistance, net.driver_intrinsic)
            return req - TECH.buffer_delay(stage.buffer, load)

        assert stage_req(result.root) == pytest.approx(
            result.required_time, abs=1e-6)

    def test_custom_order_respected(self):
        net = build_net(5, seed=8)
        order = required_time_order(net)
        result = lttree_fanout(net, TECH, order=order, config=CFG)
        # Sinks appear in criticality order along the chain.
        flattened = result.root.all_sinks()
        positions = {sink: flattened.index(sink) for sink in flattened}
        for earlier, later in zip(list(order), list(order)[1:]):
            assert positions[earlier] < positions[later]

    def test_wrong_order_size_rejected(self):
        net = build_net(4, seed=9)
        from repro.orders.order import Order

        with pytest.raises(ValueError):
            lttree_fanout(net, TECH, order=Order.identity(5), config=CFG)
