"""Tests for repro.baselines.van_ginneken."""

import pytest

from repro.baselines.ptree import ptree_route
from repro.baselines.van_ginneken import van_ginneken_insert, _split_points
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.routing.evaluate import evaluate_tree
from repro.routing.validate import validate_tree
from repro.tech.technology import default_technology
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


def routed(net):
    return ptree_route(net, TECH, config=CFG).tree


class TestInsertion:
    def test_valid_tree_out(self):
        net = build_net(5, seed=1)
        result = van_ginneken_insert(routed(net), TECH, config=CFG)
        validate_tree(result.tree)

    def test_never_worse_than_unbuffered(self):
        """The unbuffered tree is one point of the DP's solution space."""
        net = build_net(5, seed=2)
        tree = routed(net)
        before = evaluate_tree(tree, TECH)
        result = van_ginneken_insert(tree, TECH, config=CFG)
        after = evaluate_tree(result.tree, TECH)
        assert after.required_time_at_driver >= \
            before.required_time_at_driver - 1e-6

    def test_dp_matches_evaluator(self):
        net = build_net(4, seed=3)
        result = van_ginneken_insert(routed(net), TECH, config=CFG)
        lib = TECH.buffers.subset(CFG.library_subset)
        ev = evaluate_tree(result.tree, TECH.with_buffers(lib))
        assert ev.required_time_at_driver == pytest.approx(
            result.solution.required_time, abs=1e-6)
        assert ev.buffer_area == pytest.approx(result.solution.area)

    def test_long_heavy_net_gets_buffers(self):
        sinks = tuple(
            Sink(f"s{i}", Point(9000.0 + 200.0 * i, 0.0), load=80.0,
                 required_time=3000.0)
            for i in range(4)
        )
        net = Net("long", Point(0, 0), sinks)
        result = van_ginneken_insert(routed(net), TECH, config=CFG)
        assert len(result.tree.buffer_nodes) >= 1

    def test_rejects_already_buffered_tree(self):
        net = build_net(4, seed=4)
        result = van_ginneken_insert(routed(net), TECH, config=CFG)
        if result.tree.buffer_nodes:
            with pytest.raises(ValueError, match="unbuffered"):
                van_ginneken_insert(result.tree, TECH, config=CFG)

    def test_parameter_validation(self):
        net = build_net(3, seed=5)
        tree = routed(net)
        with pytest.raises(ValueError):
            van_ginneken_insert(tree, TECH, config=CFG, segment_length=0)
        with pytest.raises(ValueError):
            van_ginneken_insert(tree, TECH, config=CFG,
                                max_segments_per_edge=0)

    def test_area_objective_prefers_fewer_buffers(self):
        net = build_net(5, seed=6)
        tree = routed(net)
        delay_focused = van_ginneken_insert(tree, TECH, config=CFG)
        floor = delay_focused.solution.required_time - 300.0
        area_focused = van_ginneken_insert(
            tree, TECH, config=CFG, objective=Objective.min_area(floor))
        assert area_focused.solution.area <= delay_focused.solution.area


class TestSplitPoints:
    def test_no_points_for_short_edge(self):
        assert _split_points(Point(0, 0), Point(50, 0), 400.0, 4) == []

    def test_points_lie_on_l_path(self):
        points = _split_points(Point(0, 0), Point(300, 400), 100.0, 8)
        assert points, "long edge must split"
        for p in points:
            on_horizontal = p.y == 0.0 and 0.0 <= p.x <= 300.0
            on_vertical = p.x == 300.0 and 0.0 <= p.y <= 400.0
            assert on_horizontal or on_vertical

    def test_segment_cap_respected(self):
        points = _split_points(Point(0, 0), Point(5000, 0), 100.0, 4)
        assert len(points) == 3  # 4 segments -> 3 interior points

    def test_distances_are_even(self):
        points = _split_points(Point(0, 0), Point(800, 0), 400.0, 8)
        xs = [p.x for p in points]
        assert xs == [400.0]

    def test_zero_length_edge(self):
        assert _split_points(Point(5, 5), Point(5, 5), 100.0, 4) == []
