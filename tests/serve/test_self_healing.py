"""Self-healing serving: breakers, supervision, brownout, healthz.

The headline chaos proof mirrors the CI ``chaos-serve`` gate: a loadgen
replay against the sharded tier with one shard crashed mid-replay must
finish with zero client-visible failures and byte-identical answers to
a fault-free replay, while the crashed shard's breaker walks
closed -> open -> half-open -> closed as the supervisor probes it back.
"""

from __future__ import annotations

import time

import pytest

from tests.conftest import build_net
from repro.client import MerlinClient, RetryPolicy
from repro.core.config import MerlinConfig
from repro.loadgen import (
    WorkloadSpec,
    check_equivalence,
    compare_signature_maps,
    generate_workload,
    run_workload,
)
from repro.resilience.faults import FaultPlan, FaultSpec, use_fault_plan
from repro.resilience.supervise import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
)
from repro.serve.embedded import EmbeddedAsyncServer
from repro.serve.server import AsyncShardedServer, build_shard_services
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()
SERVICE_KWARGS = dict(tech=TECH, config=CONFIG, workers=1)

#: Fast-recovery breaker for tests: two failures trip it, the open
#: window is tens of milliseconds, and jitter stays seeded.
TEST_BREAKER = BreakerConfig(failure_threshold=2, open_duration_s=0.05,
                             jitter=0.25, seed=7)

WORKLOAD = WorkloadSpec(requests=64, distinct_nets=4, min_sinks=2,
                        max_sinks=3, seed=11, twin_fraction=0.25,
                        repeat_fraction=0.4)


def _server(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("breaker_config", TEST_BREAKER)
    kwargs.setdefault("supervise_interval_s", 0.05)
    return EmbeddedAsyncServer(**SERVICE_KWARGS, **kwargs)


def _client(server, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
    client = MerlinClient(server.base_url, **kwargs)
    assert client.wait_healthy(timeout_s=10)
    return client


def _wait_all_breakers_closed(client, timeout_s=15.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        breakers = client.stats()["breakers"]
        if all(b["state"] == STATE_CLOSED for b in breakers):
            return breakers
        time.sleep(0.05)
    raise AssertionError(f"breakers never re-closed: {breakers}")


def _contains_subsequence(haystack, needle):
    position = 0
    for item in haystack:
        if item == needle[position]:
            position += 1
            if position == len(needle):
                return True
    return False


# ----------------------------------------------------------------------
# The chaos proof
# ----------------------------------------------------------------------

def test_shard_crash_mid_replay_is_invisible_and_self_heals():
    workload = generate_workload(WORKLOAD)

    with _server() as clean_server:
        clean = run_workload(clean_server.base_url, workload,
                             concurrency=4)
    assert clean.counts()["ok"] == len(workload)

    # Same replay, but shard 0 dies for a bounded burst: enough hits to
    # trip its breaker (and fail a few half-open probes), then recovery.
    plan = FaultPlan(seed=5, specs=(
        FaultSpec(site="serve.shard", kind="error", match="0", times=6),))
    with _server() as server:
        client = _client(server)
        with use_fault_plan(plan):
            chaotic = run_workload(server.base_url, workload,
                                   concurrency=4)
        breakers = _wait_all_breakers_closed(client)
        stats = client.stats()

    # Zero client-visible failures, and every answer byte-identical to
    # the fault-free replay (failover shards share the deterministic
    # engine, so which shard answered cannot matter).
    counts = chaotic.counts()
    assert counts["ok"] == counts["requests"] == len(workload)
    assert check_equivalence(workload, chaotic) == []
    assert compare_signature_maps(clean.signature_map(),
                                  chaotic.signature_map()) == []
    assert set(clean.signature_map()) == set(chaotic.signature_map())

    # The crashed shard's breaker actually cycled: it tripped open,
    # probed half-open, and closed again under the supervisor.
    tripped = breakers[0]
    assert tripped["opens"] >= 1
    seen = [STATE_CLOSED] + [t["to"] for t in tripped["transitions"]]
    assert _contains_subsequence(
        seen, [STATE_CLOSED, STATE_OPEN, STATE_HALF_OPEN, STATE_CLOSED])
    assert stats["supervisor"]["probes"] > 0
    assert stats["counters"].get("serve.breaker.short_circuits", 0) >= 0


def test_supervisor_restarts_a_tripped_shards_pool():
    plan = FaultPlan(seed=6, specs=(
        FaultSpec(site="serve.shard", kind="error", match="0", times=4),))
    with _server() as server:
        client = _client(server)
        net = build_net(3, seed=70)
        with use_fault_plan(plan):
            # Drive traffic at the faulted tier until the breaker trips
            # (failover keeps every answer ok), then let it recover.
            for _ in range(4):
                assert client.optimize(net)["ok"]
            _wait_all_breakers_closed(client)
        stats = client.stats()
    assert stats["supervisor"]["restarts"] >= 1
    assert stats["counters"]["serve.supervisor.restarts"] >= 1
    assert stats["breakers"][0]["opens"] >= 1


# ----------------------------------------------------------------------
# healthz reports the self-healing state
# ----------------------------------------------------------------------

def test_healthz_carries_per_shard_breaker_state():
    with _server() as server:
        client = _client(server)
        body = client.request("GET", "/v1/healthz").result
        assert body["status"] == "ok"
        assert body["draining"] is False and body["brownout"] is False
        assert [s["index"] for s in body["shards"]] == [0, 1]
        for shard in body["shards"]:
            assert shard["breaker"]["state"] == STATE_CLOSED
        assert body["supervisor"]["interval_s"] == pytest.approx(0.05)

        # Trip shard 0 and healthz must flip to degraded.
        server.server.breakers[0].record_failure()
        server.server.breakers[0].record_failure()
        body = client.request("GET", "/v1/healthz").result
        assert body["status"] == "degraded"
        assert body["shards"][0]["breaker"]["state"] == STATE_OPEN


# ----------------------------------------------------------------------
# Brownout: saturation degrades instead of rejecting
# ----------------------------------------------------------------------

def _admission(server, endpoint="optimize"):
    return server._admission_outcome(f"/v1/{endpoint}", endpoint)


def test_brownout_admits_optimize_degraded_under_sustained_pressure():
    services = build_shard_services(1, **SERVICE_KWARGS)
    server = AsyncShardedServer(services, queue_limit=2, brownout_after=2)
    try:
        # Below the limit: plain admission, pressure resets.
        assert _admission(server) == (None, False)

        server._in_flight = 2  # saturated
        rejected, browned = _admission(server)
        assert rejected is not None and rejected.status == 429
        assert not browned  # pressure 1 < brownout_after

        rejected, browned = _admission(server)  # sustained: pressure 2
        assert rejected is None and browned is True
        assert server._brownout is True

        # Brownout admits only up to the 2x hard cap; beyond it, 429.
        server._in_flight = 2 * server.queue_limit
        rejected, browned = _admission(server)
        assert rejected is not None and rejected.status == 429

        # Closure is never browned out — it is not idempotent-cheap.
        server._in_flight = 2
        server._pressure = 5
        rejected, browned = _admission(server, endpoint="closure")
        assert rejected is not None and not browned

        # Pressure relief exits brownout mode.
        server._in_flight = 1
        assert _admission(server) == (None, False)
        assert server._brownout is False

        counters = server.stats()["counters"]
        assert counters["serve.brownout.entered"] == 1
        assert counters["serve.brownout.admitted"] == 1
    finally:
        server.close(close_services=True)


def test_browned_out_requests_answer_degraded_and_are_never_cached():
    from repro.net import net_to_dict
    from repro.service import protocol

    with _server(shards=1) as server:
        service = server.server.services[0]
        net = build_net(3, seed=71)
        body = {"net": net_to_dict(net)}

        # A brownout-tagged dispatch (what the admission gate sets under
        # sustained pressure) answers 200 + degraded, not 429 — and the
        # coarse-preset answer never lands in the cache.
        browned = protocol.handle_optimize(service, body, brownout=True)
        assert browned.status == 200
        assert browned.degraded is True
        assert browned.result["degraded"] is True
        assert service.stats()["cache"]["size"] == 0

        # With pressure gone, the same net recomputes at full quality:
        # a fresh compute (not a hit on the degraded answer), uncached
        # flag honest, and normally cacheable again afterwards.
        clean = protocol.handle_optimize(service, body)
        assert clean.status == 200 and clean.degraded is False
        assert clean.result["cached"] is False
        assert service.stats()["cache"]["size"] == 1
