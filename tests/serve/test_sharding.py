"""Consistent-hash ring: determinism, balance, resize stability — and
the property the serving tier is built on: shard routing keyed by the
canonical signature is invariant under sink renaming and translation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.geometry.point import Point
from repro.net import Net, Sink
from repro.resilience.errors import MerlinInputError
from repro.serve.sharding import ConsistentHashRing
from repro.service.canonical import canonical_key, technology_fingerprint
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()
OBJECTIVE = Objective.max_required_time()
TECH_FP = technology_fingerprint(TECH)


# ----------------------------------------------------------------------
# ring mechanics
# ----------------------------------------------------------------------

def test_ring_is_deterministic_across_instances():
    keys = [f"key-{i:04d}" for i in range(500)]
    a = ConsistentHashRing(4)
    b = ConsistentHashRing(4)
    assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]


def test_ring_rejects_degenerate_shapes():
    with pytest.raises(MerlinInputError):
        ConsistentHashRing(0)
    with pytest.raises(MerlinInputError):
        ConsistentHashRing(2, replicas=0)


def test_ring_spreads_keys_roughly_evenly():
    ring = ConsistentHashRing(4)
    counts = ring.distribution(f"key-{i:05d}" for i in range(4000))
    assert set(counts) == {0, 1, 2, 3}
    # 96 virtual points/shard keeps every shard within a loose band of
    # the 1000-key mean; this bound has huge slack on purpose.
    assert all(400 <= n <= 1800 for n in counts.values())


def test_single_shard_ring_owns_everything():
    ring = ConsistentHashRing(1)
    assert all(ring.shard_for(f"k{i}") == 0 for i in range(100))


def test_growing_the_ring_remaps_only_a_fraction_of_keys():
    keys = [f"key-{i:05d}" for i in range(3000)]
    before = ConsistentHashRing(4)
    after = ConsistentHashRing(5)
    moved = sum(1 for k in keys
                if before.shard_for(k) != after.shard_for(k))
    # Ideal consistent hashing moves ~1/5 of the keyspace; modulo
    # hashing would move ~4/5.  Assert we are in the former regime.
    assert moved / len(keys) < 0.40


# ----------------------------------------------------------------------
# routing invariance (the cache-affinity property)
# ----------------------------------------------------------------------

def _net(name, source, sink_rows):
    return Net(name=name, source=Point(*source), sinks=tuple(
        Sink(row[0], Point(row[1], row[2]), load=row[3],
             required_time=row[4]) for row in sink_rows))


coords = st.integers(min_value=0, max_value=20000).map(lambda v: v / 10.0)
loads = st.integers(min_value=40, max_value=400).map(lambda v: v / 10.0)
rats = st.integers(min_value=5000, max_value=11000).map(lambda v: v / 10.0)
offsets = st.integers(min_value=-50000,
                      max_value=50000).map(lambda v: v / 10.0)
sink_rows = st.lists(
    st.tuples(coords, coords, loads, rats),
    min_size=2, max_size=6,
    unique_by=lambda row: (row[0], row[1]))


@settings(max_examples=40, deadline=None)
@given(rows=sink_rows, source=st.tuples(coords, coords),
       dx=offsets, dy=offsets, shards=st.integers(2, 8))
def test_routing_is_stable_under_renaming_and_translation(
        rows, source, dx, dy, shards):
    """A renamed + rigidly translated twin must hit the same shard as
    its base net: canonical keys are equal, so ring positions are too
    (this is what makes twin requests warm-cache hits in production)."""
    base = _net("base", source,
                [(f"s{i}", x, y, load, rat)
                 for i, (x, y, load, rat) in enumerate(rows)])
    twin = _net("disguised", (source[0] + dx, source[1] + dy),
                [(f"zz{i}", x + dx, y + dy, load, rat)
                 for i, (x, y, load, rat) in enumerate(rows)])
    key_base = canonical_key(base, TECH, CONFIG, OBJECTIVE,
                             tech_fingerprint_hex=TECH_FP)
    key_twin = canonical_key(twin, TECH, CONFIG, OBJECTIVE,
                             tech_fingerprint_hex=TECH_FP)
    assert key_base == key_twin
    ring = ConsistentHashRing(shards)
    assert ring.shard_for(key_base) == ring.shard_for(key_twin)


@settings(max_examples=20, deadline=None)
@given(rows=sink_rows, scale=st.integers(2, 5))
def test_genuinely_different_nets_usually_route_apart(rows, scale):
    """Sanity counterweight: a *non*-rigid change (scaling positions)
    changes the canonical key — the invariance above is about rigid
    motion and names only, not about collapsing all nets together."""
    base = _net("base", (0.0, 0.0),
                [(f"s{i}", x, y, load, rat)
                 for i, (x, y, load, rat) in enumerate(rows)])
    scaled = _net("base", (0.0, 0.0),
                  [(f"s{i}", x * scale, y * scale, load, rat)
                   for i, (x, y, load, rat) in enumerate(rows)])
    key_a = canonical_key(base, TECH, CONFIG, OBJECTIVE,
                          tech_fingerprint_hex=TECH_FP)
    key_b = canonical_key(scaled, TECH, CONFIG, OBJECTIVE,
                          tech_fingerprint_hex=TECH_FP)
    assert key_a != key_b
