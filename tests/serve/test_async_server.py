"""The async sharded front end: round trips, admission control, shard
failover, cache affinity, and sync/async bit-identity."""

from __future__ import annotations

import pytest

from tests.conftest import build_net
from repro.client import MerlinClient, RetryPolicy
from repro.core.config import MerlinConfig
from repro.net import net_to_dict
from repro.resilience.errors import MerlinInputError
from repro.resilience.faults import FaultPlan, FaultSpec, use_fault_plan
from repro.routing.export import tree_from_dict, tree_signature
from repro.routing.validate import validate_tree
from repro.serve import AsyncShardedServer, build_shard_services
from repro.serve.embedded import EmbeddedAsyncServer
from repro.service import OptimizationService, ResultCache
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()

SERVICE_KWARGS = dict(tech=TECH, config=CONFIG, workers=1)


@pytest.fixture()
def server():
    with EmbeddedAsyncServer(shards=2, **SERVICE_KWARGS) as embedded:
        client = MerlinClient(embedded.base_url,
                              retry=RetryPolicy(max_attempts=1))
        assert client.wait_healthy(timeout_s=10)
        yield embedded


def _no_retry_client(server):
    return MerlinClient(server.base_url,
                        retry=RetryPolicy(max_attempts=1))


def test_v1_optimize_round_trip_and_envelope(server):
    client = _no_retry_client(server)
    net = build_net(3, seed=31)
    response = client.request("POST", "/v1/optimize",
                              {"net": net_to_dict(net)})
    assert response.status == 200 and response.ok
    body = response.body
    assert set(body) == {"api_version", "request_id", "result", "error",
                         "degraded", "timing_ms"}
    assert body["api_version"] == "v1" and body["error"] is None
    tree = tree_from_dict(body["result"]["tree"], net, TECH.buffers)
    validate_tree(tree)
    assert tree_signature(tree) == body["result"]["tree_signature"]


def test_equivalent_requests_share_one_shard_cache(server):
    client = _no_retry_client(server)
    net = build_net(4, seed=32)
    cold = client.optimize(net)
    assert cold["cached"] is False
    # A renamed twin must route to the same shard and hit its LRU.
    twin = net_to_dict(net)
    twin["name"] = "disguised"
    twin["sinks"] = [{**s, "name": f"zz{i}"}
                     for i, s in enumerate(twin["sinks"])]
    warm = client.optimize(twin)
    assert warm["cached"] is True
    assert warm["tree_signature"] == cold["tree_signature"]


def test_probes_bypass_admission_and_stats_reports_the_tier(server):
    client = _no_retry_client(server)
    assert client.healthz() is True
    stats = client.stats()
    assert stats["mode"] == "async-sharded"
    assert stats["shard_count"] == 2
    assert stats["queue_limit"] > 0
    assert len(stats["shards"]) == 2
    assert all("cache" in shard for shard in stats["shards"])


def test_bad_inputs_produce_the_v1_error_envelope(server):
    client = _no_retry_client(server)
    response = client.request("POST", "/v1/optimize",
                              {"net": {"name": "broken"}})
    assert response.status == 400
    assert response.error["code"] == "malformed_net"
    assert response.body["result"] is None
    record = response.error_record()
    assert record is not None and record.category == "input"


def test_unknown_paths_answer_the_envelope_404(server):
    client = _no_retry_client(server)
    response = client.request("GET", "/nowhere")
    assert response.status == 404
    assert response.error["code"] == "unknown_path"
    response = client.request("GET", "/v1/optimize")  # wrong method
    assert response.status == 404


def test_legacy_shim_keeps_the_historical_shape(server):
    client = _no_retry_client(server)
    net = build_net(3, seed=33)
    response = client.request("POST", "/optimize",
                              {"net": net_to_dict(net)})
    assert response.status == 200
    assert "api_version" not in response.body  # legacy body, no envelope
    assert response.body["ok"] is True
    assert response.headers.get("Deprecation") == "true"
    stats = client.stats()
    front = stats["counters"]
    assert front["service.http.legacy_path"] >= 1


def test_admission_fault_forces_429_with_retry_after(server):
    client = _no_retry_client(server)
    net = build_net(3, seed=34)
    plan = FaultPlan(specs=(
        FaultSpec(site="serve.admission", kind="error", times=None),))
    with use_fault_plan(plan):
        response = client.request("POST", "/v1/optimize",
                                  {"net": net_to_dict(net)})
    assert response.status == 429
    assert response.error["code"] == "admission_rejected"
    retry_after = response.headers.get("Retry-After")
    assert retry_after is not None and int(retry_after) >= 1
    # Probes stay green while the gate rejects work.
    with use_fault_plan(plan):
        assert client.healthz() is True
    stats = client.stats()
    assert stats["counters"]["serve.rejected"] >= 1


def test_client_retries_through_a_bounded_admission_fault(server):
    # The fault clears after one hit; a retrying client recovers on the
    # second attempt without caller involvement.
    sleeps = []
    client = MerlinClient(
        server.base_url,
        retry=RetryPolicy(max_attempts=3, sleep=sleeps.append))
    net = build_net(3, seed=35)
    plan = FaultPlan(specs=(
        FaultSpec(site="serve.admission", kind="error", times=1),))
    with use_fault_plan(plan):
        response = client.request("POST", "/v1/optimize",
                                  {"net": net_to_dict(net)})
    assert response.status == 200 and response.retries == 1
    # Retry-After floors the backoff delay at >= 1 s.
    assert len(sleeps) == 1 and sleeps[0] >= 1.0


def test_downed_shard_fails_over_to_the_next_on_the_ring(server):
    client = _no_retry_client(server)
    nets = [build_net(3, seed=40 + i) for i in range(4)]
    plan = FaultPlan(specs=(
        FaultSpec(site="serve.shard", kind="error", times=None,
                  match="0"),))
    with use_fault_plan(plan):
        for net in nets:
            result = client.optimize(net)
            assert result["ok"]
    stats = client.stats()
    counters = stats["counters"]
    # Shard 0 took nothing; every request landed on shard 1, and the
    # requests originally routed to shard 0 were counted as failovers.
    assert counters.get("serve.shard.0.requests", 0) == 0
    assert counters["serve.shard.1.requests"] == len(nets)
    assert counters.get("serve.shard.failovers", 0) >= 1


def test_all_shards_down_is_a_structured_503(server):
    client = _no_retry_client(server)
    net = build_net(3, seed=44)
    plan = FaultPlan(specs=(
        FaultSpec(site="serve.shard", kind="error", times=None),))
    with use_fault_plan(plan):
        response = client.request("POST", "/v1/optimize",
                                  {"net": net_to_dict(net)})
    assert response.status == 503
    assert response.error["code"] == "shard_unavailable"
    assert response.error["category"] == "resource"


def test_mixed_technology_shards_are_refused():
    thin = TECH.with_buffers(TECH.buffers.subset(4))
    services = [
        OptimizationService(tech=TECH, config=CONFIG, workers=1,
                            cache=ResultCache()),
        OptimizationService(tech=thin, config=CONFIG, workers=1,
                            cache=ResultCache()),
    ]
    try:
        with pytest.raises(MerlinInputError, match="one technology"):
            AsyncShardedServer(services)
    finally:
        for service in services:
            service.close()


def test_build_shard_services_gives_each_shard_its_own_cache():
    services = build_shard_services(3, cache_capacity=8, **SERVICE_KWARGS)
    try:
        assert len(services) == 3
        caches = [s.cache for s in services]
        assert all(caches[i] is not caches[j]
                   for i in range(len(caches))
                   for j in range(i + 1, len(caches)))
        fingerprints = {s.tech_fingerprint for s in services}
        assert len(fingerprints) == 1
    finally:
        for service in services:
            service.close()
