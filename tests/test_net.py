"""Tests for repro.net."""

import pytest

from repro.geometry.point import Point
from repro.net import Net, Sink, make_net


def sink(name="s", x=0.0, y=0.0, load=10.0, req=100.0):
    return Sink(name, Point(x, y), load, req)


class TestSink:
    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            Sink("s", Point(0, 0), load=-1.0, required_time=0.0)

    def test_sink_is_frozen(self):
        s = sink()
        with pytest.raises(AttributeError):
            s.load = 5.0


class TestNet:
    def test_requires_sinks(self):
        with pytest.raises(ValueError):
            Net("empty", Point(0, 0), ())

    def test_duplicate_sink_names_rejected(self):
        with pytest.raises(ValueError):
            Net("dup", Point(0, 0), (sink("a"), sink("a", x=1)))

    def test_len_and_iter(self):
        net = Net("n", Point(0, 0), (sink("a"), sink("b", x=1)))
        assert len(net) == 2
        assert [s.name for s in net] == ["a", "b"]

    def test_bounding_box_includes_source(self):
        net = Net("n", Point(-10, 0), (sink("a", x=5, y=5),))
        box = net.bounding_box
        assert box.xmin == -10 and box.xmax == 5

    def test_required_time_extremes(self):
        net = Net("n", Point(0, 0),
                  (sink("a", req=100), sink("b", x=1, req=300)))
        assert net.min_required_time == 100
        assert net.max_required_time == 300

    def test_total_sink_load(self):
        net = Net("n", Point(0, 0),
                  (sink("a", load=10), sink("b", x=1, load=15)))
        assert net.total_sink_load == 25

    def test_sink_accessor(self):
        net = Net("n", Point(0, 0), (sink("a"), sink("b", x=1)))
        assert net.sink(1).name == "b"


class TestMakeNet:
    def test_builds_named_sinks(self):
        net = make_net("m", (0, 0), [(10, 20, 5.0, 100.0),
                                     (30, 40, 6.0, 200.0)])
        assert len(net) == 2
        assert net.sink(0).name == "m_s0"
        assert net.sink(1).position == Point(30, 40)
        assert net.sink(1).required_time == 200.0
