"""Tests for repro.net."""

import pytest

from repro.geometry.point import Point
from repro.net import Net, Sink, make_net


def sink(name="s", x=0.0, y=0.0, load=10.0, req=100.0):
    return Sink(name, Point(x, y), load, req)


class TestSink:
    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            Sink("s", Point(0, 0), load=-1.0, required_time=0.0)

    def test_sink_is_frozen(self):
        s = sink()
        with pytest.raises(AttributeError):
            s.load = 5.0


class TestNet:
    def test_requires_sinks(self):
        with pytest.raises(ValueError):
            Net("empty", Point(0, 0), ())

    def test_duplicate_sink_names_rejected(self):
        with pytest.raises(ValueError):
            Net("dup", Point(0, 0), (sink("a"), sink("a", x=1)))

    def test_len_and_iter(self):
        net = Net("n", Point(0, 0), (sink("a"), sink("b", x=1)))
        assert len(net) == 2
        assert [s.name for s in net] == ["a", "b"]

    def test_bounding_box_includes_source(self):
        net = Net("n", Point(-10, 0), (sink("a", x=5, y=5),))
        box = net.bounding_box
        assert box.xmin == -10 and box.xmax == 5

    def test_required_time_extremes(self):
        net = Net("n", Point(0, 0),
                  (sink("a", req=100), sink("b", x=1, req=300)))
        assert net.min_required_time == 100
        assert net.max_required_time == 300

    def test_total_sink_load(self):
        net = Net("n", Point(0, 0),
                  (sink("a", load=10), sink("b", x=1, load=15)))
        assert net.total_sink_load == 25

    def test_sink_accessor(self):
        net = Net("n", Point(0, 0), (sink("a"), sink("b", x=1)))
        assert net.sink(1).name == "b"


class TestMakeNet:
    def test_builds_named_sinks(self):
        net = make_net("m", (0, 0), [(10, 20, 5.0, 100.0),
                                     (30, 40, 6.0, 200.0)])
        assert len(net) == 2
        assert net.sink(0).name == "m_s0"
        assert net.sink(1).position == Point(30, 40)
        assert net.sink(1).required_time == 200.0


class TestNetFromDictErrors:
    """Malformed payloads name the offending sink and field."""

    def _good(self):
        return {
            "name": "n",
            "source": [0.0, 0.0],
            "sinks": [
                {"name": "u1", "position": [10.0, 20.0],
                 "load": 5.0, "required_time": 100.0},
                {"name": "u2", "position": [30.0, 40.0],
                 "load": 6.0, "required_time": 200.0},
            ],
        }

    def test_good_payload_round_trips(self):
        from repro.net import net_from_dict, net_to_dict

        net = net_from_dict(self._good())
        assert net_to_dict(net) == self._good()

    def test_missing_sink_field_names_the_sink(self):
        from repro.net import net_from_dict
        from repro.resilience.errors import MalformedNetError

        data = self._good()
        del data["sinks"][1]["load"]
        with pytest.raises(MalformedNetError) as excinfo:
            net_from_dict(data)
        message = str(excinfo.value)
        assert "sink #1" in message and "'u2'" in message
        assert "missing field 'load'" in message

    def test_wrong_typed_field_shows_the_offending_value(self):
        from repro.net import net_from_dict
        with pytest.raises(ValueError) as excinfo:
            data = self._good()
            data["sinks"][0]["required_time"] = "soon"
            net_from_dict(data)
        assert "'required_time'" in str(excinfo.value)
        assert "'soon'" in str(excinfo.value)

    def test_bad_position_shape_is_named(self):
        from repro.net import net_from_dict
        data = self._good()
        data["source"] = [1.0]
        with pytest.raises(ValueError, match=r"\[x, y\] pair"):
            net_from_dict(data)

    def test_missing_top_level_fields_are_named(self):
        from repro.net import net_from_dict
        with pytest.raises(ValueError, match="missing field 'name'"):
            net_from_dict({})
        with pytest.raises(ValueError, match="missing field 'source'"):
            net_from_dict({"name": "n"})

    def test_empty_sinks_rejected(self):
        from repro.net import net_from_dict
        data = self._good()
        data["sinks"] = []
        with pytest.raises(ValueError, match="non-empty"):
            net_from_dict(data)

    def test_model_invariants_surface_with_the_net_named(self):
        from repro.net import net_from_dict
        from repro.resilience.errors import MalformedNetError

        data = self._good()
        data["sinks"][1]["name"] = "u1"  # duplicate
        with pytest.raises(MalformedNetError, match="unique"):
            net_from_dict(data)
        data = self._good()
        data["sinks"][0]["load"] = -1.0
        with pytest.raises(MalformedNetError, match="non-negative"):
            net_from_dict(data)

    def test_taxonomy_kind_is_input_category(self):
        from repro.net import net_from_dict
        from repro.resilience.errors import MalformedNetError

        with pytest.raises(MalformedNetError) as excinfo:
            net_from_dict({"name": "n", "source": [0, 0], "sinks": [{}]})
        assert excinfo.value.category == "input"
        assert isinstance(excinfo.value, ValueError)  # compat contract
