"""Config precedence (CLI --rules vs pyproject enable/disable) and
multi-id suppressions, end to end through the real CLI."""

import textwrap

import pytest

from repro.cli import main as cli_main
from repro.staticcheck import run_check

_VIOLATION = "import random\n\n\ndef jitter(x):\n    return x + random.random()\n"


def _project(tmp_path, staticcheck_toml):
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent(
        f"[tool.staticcheck]\n{staticcheck_toml}"))
    target = tmp_path / "bad.py"
    target.write_text(_VIOLATION)
    return str(target)


def test_pyproject_disable_silences_a_rule(tmp_path, capsys):
    target = _project(tmp_path, 'disable = ["DET-RANDOM"]\n')
    assert cli_main(["check", target]) == 0
    capsys.readouterr()


def test_pyproject_enable_runs_only_the_listed_rules(tmp_path, capsys):
    target = _project(tmp_path, 'enable = ["NUM-FLOAT-EQ"]\n')
    assert cli_main(["check", target]) == 0
    capsys.readouterr()
    target2 = _project(tmp_path, 'enable = ["DET-RANDOM"]\n')
    assert cli_main(["check", target2]) == 1
    capsys.readouterr()


def test_cli_rules_flag_beats_pyproject_disable(tmp_path, capsys):
    # --rules bypasses the config selection entirely: a rule disabled
    # in pyproject still runs when named explicitly.
    target = _project(tmp_path, 'disable = ["DET-RANDOM"]\n')
    assert cli_main(["check", "--rules", "DET-RANDOM", target]) == 1
    assert "DET-RANDOM" in capsys.readouterr().out


def test_cli_rules_flag_beats_pyproject_enable(tmp_path, capsys):
    target = _project(tmp_path, 'enable = ["NUM-FLOAT-EQ"]\n')
    assert cli_main(["check", "--rules", "DET-RANDOM", target]) == 1
    assert "DET-RANDOM" in capsys.readouterr().out


def test_no_config_ignores_pyproject_selection(tmp_path, capsys):
    target = _project(tmp_path, 'disable = ["DET-RANDOM"]\n')
    assert cli_main(["check", "--no-config", target]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# Multi-id suppressions on one line
# ----------------------------------------------------------------------

_TWO_VIOLATIONS_ONE_LINE = (
    "import random\n"
    "\n"
    "\n"
    "def snapshot(objs):\n"
    "    return {id(o): random.random() for o in objs}"
)


def test_multi_id_suppression_silences_both_rules(tmp_path):
    target = tmp_path / "twice.py"
    target.write_text(_TWO_VIOLATIONS_ONE_LINE
                      + "  # staticcheck: ignore[DET-ID-HASH,DET-RANDOM]\n")
    result = run_check([str(target)])
    assert result.findings == []


def test_multi_id_suppression_spaces_tolerated(tmp_path):
    target = tmp_path / "twice.py"
    target.write_text(_TWO_VIOLATIONS_ONE_LINE
                      + "  # staticcheck: ignore[DET-ID-HASH, DET-RANDOM]\n")
    assert run_check([str(target)]).findings == []


@pytest.mark.parametrize("kept,suppressed", [
    ("DET-RANDOM", "DET-ID-HASH"),
    ("DET-ID-HASH", "DET-RANDOM"),
])
def test_partial_suppression_keeps_the_unnamed_rule(tmp_path, kept,
                                                    suppressed):
    target = tmp_path / "twice.py"
    target.write_text(_TWO_VIOLATIONS_ONE_LINE
                      + f"  # staticcheck: ignore[{suppressed}]\n")
    result = run_check([str(target)])
    assert {f.rule_id for f in result.findings} == {kept}


def test_unsuppressed_line_trips_both_rules(tmp_path):
    target = tmp_path / "twice.py"
    target.write_text(_TWO_VIOLATIONS_ONE_LINE + "\n")
    result = run_check([str(target)])
    assert {f.rule_id for f in result.findings} == {"DET-ID-HASH",
                                                    "DET-RANDOM"}
    assert len({f.line for f in result.findings}) == 1


def test_dead_directive_in_multi_id_form_is_flagged(tmp_path):
    target = tmp_path / "quiet.py"
    target.write_text(
        "x = 1  # staticcheck: ignore[DET-RANDOM,DET-ID-HASH]\n")
    result = run_check([str(target)])
    assert [f.rule_id for f in result.findings] == ["SUP-UNUSED"]
