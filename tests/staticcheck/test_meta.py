"""Meta: the analyzer must pass on the shipped tree, via the real CLI."""

import json
import os

from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src", "repro")
TESTS = os.path.join(REPO_ROOT, "tests")


def test_shipped_tree_is_clean(capsys):
    assert cli_main(["check", SRC]) == 0
    out = capsys.readouterr().out
    assert out.strip().endswith("files checked)")


def test_tests_tree_is_clean_too():
    # Same invocation CI runs: fixtures are quarantined by the
    # [tool.staticcheck] exclude globs, everything else must be clean.
    assert cli_main(["check", "--format", "json", SRC, TESTS]) == 0


def test_ci_json_invocation_shape(capsys):
    assert cli_main(["check", "--format", "json", SRC]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["findings"] == []
    assert document["files_checked"] > 50
    assert len(document["rules_run"]) == 11


def test_list_rules(capsys):
    assert cli_main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET-RANDOM", "POOL-CALLABLE", "NUM-FLOAT-EQ",
                    "LAY-UPWARD", "LAY-CYCLE"):
        assert rule_id in out


def test_unknown_rule_is_a_usage_error(capsys):
    assert cli_main(["check", "--rules", "NO-SUCH-RULE", SRC]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(capsys):
    assert cli_main(["check", os.path.join(REPO_ROOT, "no-such-dir")]) == 2
    assert "no such path" in capsys.readouterr().err
