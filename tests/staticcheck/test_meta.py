"""Meta: the analyzer must pass on the shipped tree, via the real CLI."""

import json
import os

from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src", "repro")
TESTS = os.path.join(REPO_ROOT, "tests")


def test_shipped_tree_is_clean(capsys):
    assert cli_main(["check", SRC]) == 0
    out = capsys.readouterr().out
    assert "files checked" in out.strip().splitlines()[-1]


def test_tests_tree_is_clean_too():
    # Same invocation CI runs: fixtures are quarantined by the
    # [tool.staticcheck] exclude globs, everything else must be clean
    # (or absorbed by the committed ratchet baseline).
    assert cli_main(["check", "--format", "json", SRC, TESTS]) == 0


def test_ci_json_invocation_shape(capsys):
    assert cli_main(["check", "--format", "json", SRC]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 2
    assert document["findings"] == []
    assert document["files_checked"] > 50
    assert len(document["rules_run"]) == 18
    assert set(document["cache"]) == {"hits", "misses"}


def test_warm_cli_rerun_reports_cache_hits(capsys):
    # Two identical CLI runs back to back: the second must replay from
    # the content-hash cache rather than re-parsing the tree.
    assert cli_main(["check", "--format", "json", SRC]) == 0
    capsys.readouterr()
    assert cli_main(["check", "--format", "json", SRC]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["cache"]["hits"] == document["files_checked"]
    assert document["cache"]["misses"] == 0


def test_list_rules_is_sorted(capsys):
    assert cli_main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET-RANDOM", "POOL-CALLABLE", "NUM-FLOAT-EQ",
                    "LAY-UPWARD", "LAY-CYCLE", "ASYNC-BLOCKING",
                    "REG-DEAD-METRIC", "SUP-UNUSED"):
        assert rule_id in out
    listed = [line.split()[0] for line in out.strip().splitlines()]
    assert listed == sorted(listed)


def test_unknown_rule_is_a_usage_error(capsys):
    assert cli_main(["check", "--rules", "NO-SUCH-RULE", SRC]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(capsys):
    assert cli_main(["check", os.path.join(REPO_ROOT, "no-such-dir")]) == 2
    err = capsys.readouterr().err
    assert "no such path" in err
    assert len(err.strip().splitlines()) == 1


def test_output_file_written_alongside_stdout(capsys, tmp_path):
    target = tmp_path / "report.json"
    assert cli_main(["check", "--format", "json",
                     "--output", str(target), SRC]) == 0
    on_disk = json.loads(target.read_text())
    on_stdout = json.loads(capsys.readouterr().out)
    assert on_disk == on_stdout
    assert on_disk["version"] == 2


def test_output_to_unwritable_path_is_an_io_error(capsys):
    assert cli_main(["check", "--format", "json",
                     "--output", os.path.join(REPO_ROOT, "no-such-dir",
                                              "report.json"), SRC]) == 2
    assert "cannot write" in capsys.readouterr().err
