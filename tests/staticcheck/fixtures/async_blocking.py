"""Bad example: blocking sleep on the event loop (ASYNC-BLOCKING)."""
# staticcheck: module=repro.serve.fixture_async_blocking

import time


async def handle_request(payload):
    # Stalls every in-flight request on this loop, not just ours.
    time.sleep(0.05)
    return payload
