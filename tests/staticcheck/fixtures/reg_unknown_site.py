"""Bad example: fault spec naming a ghost site (REG-UNKNOWN-SITE)."""

from repro.resilience.faults import FaultSpec, fault_point


def guarded_step():
    fault_point("fixture.real")


# The glob matches no fault_point(...) site, so it can never fire.
CHAOS_PLAN = FaultSpec(site="fixture.bogus.*", kind="error")
