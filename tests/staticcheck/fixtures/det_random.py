"""Bad example: draws from the hidden global RNG (DET-RANDOM)."""

import random


def jitter(value):
    return value + random.random()
