"""Clean example: violations carrying justified inline suppressions."""

import random


def jitter(value):
    # Test fixture: module-level RNG suppressed by the named form.
    return value + random.random()  # staticcheck: ignore[DET-RANDOM]


def index_by_identity(solutions):
    # Test fixture: blanket form suppresses every rule on the line.
    return {id(s): s for s in solutions}  # staticcheck: ignore
