"""Bad example: ordering lookup nobody registered (REG-DANGLING-KEY)."""

from repro.pipeline.ordering import get_ordering, register_ordering


@register_ordering("fixture_real")
def _fixture_policy(nets, timing):
    return list(nets)


def pick_policy():
    # Typo'd key: raises MerlinInputError at runtime.
    return get_ordering("fixture_missing")
