"""Bad example: bare-set iteration builds a list (DET-SET-ORDER)."""


def order_names(extra):
    names = []
    for name in {"sink_b", "sink_a", extra}:
        names.append(name)
    return names
