"""Bad example, half 1: metric catalogue (REG-DEAD-METRIC).

``EMITTED_ONLY`` is emitted by ``reader.py`` but read by nothing."""
# staticcheck: module=repro.instrument.names

EMITTED_ONLY = "fixture.emitted_only"
USED_OK = "fixture.used"
