"""Bad example, half 2: emits both metrics, reads only one."""


def run(recorder, metric):
    recorder.incr(metric.EMITTED_ONLY)
    recorder.incr(metric.USED_OK)
    return recorder.report()["counters"]["fixture.used"]
