"""Bad example, half 2: mutual module-level imports (LAY-CYCLE)."""
# staticcheck: module=repro.fixcycle.cycle_b

import repro.fixcycle.cycle_a


def pong():
    return repro.fixcycle.cycle_a.ping()
