"""Bad example, half 1: mutual module-level imports (LAY-CYCLE)."""
# staticcheck: module=repro.fixcycle.cycle_a

import repro.fixcycle.cycle_b


def ping():
    return repro.fixcycle.cycle_b.pong()
