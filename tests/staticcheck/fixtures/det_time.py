"""Bad example: wall-clock read inside an engine package (DET-TIME)."""
# staticcheck: module=repro.core.fixture_det_time

import time


def stamp(result):
    return (time.time(), result)
