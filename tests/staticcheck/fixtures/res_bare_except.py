"""Bad example: bare/BaseException handlers in the service layer
(RES-BARE-EXCEPT)."""
# staticcheck: module=repro.service.fixture_res_bare_except


def swallow_everything(run_job, job):
    try:
        return run_job(job)
    except:  # noqa: E722  (the rule under test)
        return None


def swallow_cancellation(run_job, job):
    try:
        return run_job(job)
    except BaseException:
        return None
