"""Bad example: a recorder captured into a worker payload (POOL-RECORDER)."""


def fan_out(pool, job, recorder):
    return pool.submit(job, recorder)
