"""Bad example: id()-derived dict keys (DET-ID-HASH)."""


def index_by_identity(solutions):
    return {id(solution): solution for solution in solutions}
