"""Bad example: coroutine called as a statement (ASYNC-UNAWAITED)."""
# staticcheck: module=repro.serve.fixture_async_unawaited


async def refresh_shard_map(server):
    server.ring = server.build_ring()


async def handle_admin(server):
    # The coroutine object is created and dropped; the body never runs.
    refresh_shard_map(server)
    return "ok"
