"""Bad example: a suppression with nothing to suppress (SUP-UNUSED)."""

ANSWER = 42  # staticcheck: ignore[DET-RANDOM]
