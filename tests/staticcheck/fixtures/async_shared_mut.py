"""Bad example: loop/thread shared mutation, no lock (ASYNC-SHARED-MUT)."""
# staticcheck: module=repro.serve.fixture_async_shared_mut


class DepthGauge:
    def __init__(self):
        self.depth = 0

    async def admit(self):
        # Mutated on the event loop ...
        self.depth += 1

    def release_from_worker(self):
        # ... and from shard worker threads, with no lock on either side.
        self.depth -= 1
