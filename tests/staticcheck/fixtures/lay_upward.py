"""Bad example: a curves-layer module importing the service (LAY-UPWARD)."""
# staticcheck: module=repro.curves.fixture_lay_upward

from repro.service.engine import OptimizationService


def warm(nets):
    return OptimizationService().optimize_serial(nets)
