"""Bad example: an engine-layer module importing kernel internals
(LAY-KERNEL).  The import is downward (core -> curves), so only the
kernel-boundary rule fires, not LAY-UPWARD."""
# staticcheck: module=repro.core.fixture_lay_kernel


def fresh(root, config):
    # Deferred imports are NOT exempt from LAY-KERNEL: touching the
    # block representation from a function body still breaches the
    # boundary.
    from repro.curves.kernels import PendingCurve

    return PendingCurve(root, config)
