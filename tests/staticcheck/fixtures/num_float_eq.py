"""Bad example: exact float equality in an engine package (NUM-FLOAT-EQ)."""
# staticcheck: module=repro.curves.fixture_num_float_eq


def at_origin(length):
    return length == 0.0
