"""Bad example: a lambda shipped to a worker pool (POOL-CALLABLE)."""


def fan_out(pool, payloads):
    return [pool.submit(lambda p=payload: p * 2) for payload in payloads]
