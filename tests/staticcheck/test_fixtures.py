"""Each bad-example fixture trips exactly its one intended rule."""

import os

import pytest

from repro.cli import main as cli_main
from repro.staticcheck import run_check

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")

EXPECTED = [
    ("async_blocking.py", "ASYNC-BLOCKING"),
    ("async_shared_mut.py", "ASYNC-SHARED-MUT"),
    ("async_unawaited.py", "ASYNC-UNAWAITED"),
    ("det_random.py", "DET-RANDOM"),
    ("det_time.py", "DET-TIME"),
    ("det_set_order.py", "DET-SET-ORDER"),
    ("det_id_hash.py", "DET-ID-HASH"),
    ("pool_callable.py", "POOL-CALLABLE"),
    ("pool_recorder.py", "POOL-RECORDER"),
    ("num_float_eq.py", "NUM-FLOAT-EQ"),
    ("lay_upward.py", "LAY-UPWARD"),
    ("lay_kernel.py", "LAY-KERNEL"),
    ("reg_unknown_site.py", "REG-UNKNOWN-SITE"),
    ("reg_dangling_key.py", "REG-DANGLING-KEY"),
    ("res_bare_except.py", "RES-BARE-EXCEPT"),
    ("sup_unused.py", "SUP-UNUSED"),
]


@pytest.mark.parametrize("name,rule_id", EXPECTED)
def test_fixture_trips_exactly_one_rule(name, rule_id):
    path = os.path.join(FIXTURES, name)
    result = run_check([path])
    assert {f.rule_id for f in result.findings} == {rule_id}, (
        f"{name} should trip only {rule_id}, got "
        f"{[f.render() for f in result.findings]}")
    assert all(f.path == path for f in result.findings)
    assert result.exit_code == 1


@pytest.mark.parametrize("name,rule_id", EXPECTED)
def test_cli_exits_nonzero_per_fixture(name, rule_id, capsys):
    code = cli_main(["check", os.path.join(FIXTURES, name)])
    out = capsys.readouterr().out
    assert code == 1
    assert rule_id in out


def test_cycle_pair_trips_only_the_cycle_rule():
    pair = [os.path.join(FIXTURES, "cycle", "cycle_a.py"),
            os.path.join(FIXTURES, "cycle", "cycle_b.py")]
    result = run_check(pair)
    assert [f.rule_id for f in result.findings] == ["LAY-CYCLE"]
    (finding,) = result.findings
    # One finding per cycle, anchored at the alphabetically first
    # member, naming the whole loop.
    assert finding.path.endswith("cycle_a.py")
    assert "repro.fixcycle.cycle_a -> repro.fixcycle.cycle_b" in (
        finding.message)
    assert result.exit_code == 1


def test_half_a_cycle_is_not_a_cycle():
    result = run_check([os.path.join(FIXTURES, "cycle", "cycle_a.py")])
    assert result.findings == []


def test_dead_metric_pair_trips_only_the_dead_metric_rule():
    # Directory fixture: the catalogue override plus an out-of-tree
    # reader, satisfying both of REG-DEAD-METRIC's presence gates.
    result = run_check([os.path.join(FIXTURES, "reg_dead_metric")])
    assert [f.rule_id for f in result.findings] == ["REG-DEAD-METRIC"]
    (finding,) = result.findings
    assert finding.path.endswith("names_catalogue.py")
    assert "EMITTED_ONLY" in finding.message
    assert result.exit_code == 1


def test_dead_metric_rule_gates_on_catalogue_and_tests_presence():
    # The catalogue alone (no out-of-tree reader in the run) must stay
    # silent: "never read" is unknowable without the test side.
    result = run_check([os.path.join(FIXTURES, "reg_dead_metric",
                                     "names_catalogue.py")])
    assert result.findings == []


def test_rules_flag_narrows_the_run():
    path = os.path.join(FIXTURES, "det_random.py")
    code = cli_main(["check", "--rules", "NUM-FLOAT-EQ", path])
    assert code == 0  # the only violation is DET-RANDOM, not selected
