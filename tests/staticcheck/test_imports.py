"""Import-graph builder: resolution, exemptions, layers, cycles."""

import os

from repro.staticcheck.engine import parse_module
from repro.staticcheck.imports import (
    PACKAGE_LAYERS,
    build_graph,
    find_cycles,
    layer_of,
    module_edges,
    package_of,
    project_edges,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def edges_of(source, module="repro.core.example", known=()):
    info = parse_module("x.py", source=f"# staticcheck: module={module}\n"
                                       + source)
    return module_edges(info, set(known))


def test_plain_import_resolves_verbatim():
    (edge,) = edges_of("import repro.curves.kernels\n")
    assert edge.target == "repro.curves.kernels"
    assert edge.runtime


def test_from_import_prefers_known_submodule():
    (edge,) = edges_of("from repro.curves import kernels\n",
                       known={"repro.curves.kernels"})
    assert edge.target == "repro.curves.kernels"


def test_from_import_falls_back_to_package_init():
    (edge,) = edges_of("from repro.curves import SolutionCurve\n")
    assert edge.target == "repro.curves"


def test_from_repro_import_resolves_top_level_module():
    (edge,) = edges_of("from repro import parallel\n",
                       known={"repro.parallel"})
    assert edge.target == "repro.parallel"


def test_relative_import_resolves_against_source():
    (edge,) = edges_of("from . import objective\n",
                       module="repro.core.merlin",
                       known={"repro.core.objective"})
    assert edge.target == "repro.core.objective"


def test_function_body_import_is_lazy():
    (edge,) = edges_of("def go():\n    from repro import parallel\n",
                       known={"repro.parallel"})
    assert edge.lazy and not edge.runtime


def test_type_checking_import_is_type_only():
    source = ("from typing import TYPE_CHECKING\n"
              "if TYPE_CHECKING:\n"
              "    from repro.service.engine import OptimizationService\n")
    (edge,) = edges_of(source)
    assert edge.type_only and not edge.runtime


def test_non_repro_imports_are_ignored():
    assert edges_of("import os\nfrom typing import List\n") == []


def test_layer_map_covers_every_shipped_component():
    components = set()
    for entry in sorted(os.listdir(SRC_REPRO)):
        if entry == "__pycache__":
            continue
        path = os.path.join(SRC_REPRO, entry)
        if os.path.isdir(path):
            components.add(entry)
        elif entry.endswith(".py") and entry != "__init__.py":
            components.add(entry[:-3])
    missing = components - set(PACKAGE_LAYERS)
    assert not missing, (
        f"top-level components missing from PACKAGE_LAYERS: {missing} — "
        f"add them to repro.staticcheck.imports.PACKAGE_LAYERS (and the "
        f"DESIGN.md layering table)")


def test_engine_packages_sit_below_the_service_stack():
    for low in ("core", "curves", "geometry", "tech"):
        for high in ("service", "cli", "api", "bench"):
            assert layer_of(f"repro.{low}.x") < layer_of(f"repro.{high}.x")


def test_package_of_top_level_module():
    assert package_of("repro.parallel") == "parallel"
    assert package_of("repro") == "repro"


def test_shipped_tree_has_no_runtime_cycles():
    modules = []
    for dirpath, dirnames, filenames in os.walk(SRC_REPRO):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                modules.append(parse_module(os.path.join(dirpath, name)))
    graph = build_graph(project_edges(modules))
    assert find_cycles(graph) == []


def test_find_cycles_reports_each_scc_once():
    graph = {
        "a": {"b"}, "b": {"c"}, "c": {"a"},   # 3-cycle
        "d": {"d"},                            # self-loop
        "e": {"a"},                            # feeder, not in a cycle
    }
    cycles = find_cycles(graph)
    assert [c[0] for c in cycles] == ["a", "d"]
    assert set(cycles[0]) == {"a", "b", "c"}
