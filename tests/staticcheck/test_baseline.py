"""Ratchet baseline: absorb committed findings, fail on new ones."""

import json
import os

from repro.cli import main as cli_main
from repro.staticcheck import run_check
from repro.staticcheck.baseline import Baseline, write_baseline
from repro.staticcheck.engine import Finding

_VIOLATION = "import random\n\n\ndef jitter(x):\n    return x + random.random()\n"


def test_baselined_findings_are_absorbed(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(_VIOLATION)
    dirty = run_check([str(target)])
    assert dirty.exit_code == 1
    baseline = str(tmp_path / "baseline.json")
    write_baseline(baseline, dirty.findings, config_root=str(tmp_path))
    clean = run_check([str(target)], config_root=str(tmp_path),
                      baseline_path=baseline)
    assert clean.findings == []
    assert clean.baselined == len(dirty.findings)
    assert clean.exit_code == 0


def test_new_findings_still_fail_under_a_baseline(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(_VIOLATION)
    baseline = str(tmp_path / "baseline.json")
    write_baseline(baseline, run_check([str(target)]).findings,
                   config_root=str(tmp_path))
    # A second, different violation appears: the ratchet must catch it.
    target.write_text(_VIOLATION + "\n\nBY_ID = {id(o): o for o in []}\n")
    result = run_check([str(target)], config_root=str(tmp_path),
                       baseline_path=baseline)
    assert [f.rule_id for f in result.findings] == ["DET-ID-HASH"]
    assert result.baselined == 1
    assert result.exit_code == 1


def test_matching_is_multiset_not_set():
    baseline = Baseline.load("/nonexistent")
    findings = [Finding("a.py", 1, 0, "X", "m"),
                Finding("a.py", 9, 0, "X", "m")]
    kept, absorbed = baseline.filter(findings)
    assert (len(kept), absorbed) == (2, 0)
    one = Baseline(__import__("collections").Counter({("X", "a.py", "m"): 1}))
    kept, absorbed = one.filter(findings)
    # Identical rule/path/message at two lines: only one is tolerated.
    assert (len(kept), absorbed) == (1, 1)


def test_baseline_paths_are_config_root_relative(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(_VIOLATION)
    baseline = str(tmp_path / "baseline.json")
    write_baseline(baseline, run_check([str(target)]).findings,
                   config_root=str(tmp_path))
    document = json.loads(open(baseline, encoding="utf-8").read())
    assert [entry["path"] for entry in document["findings"]] == ["bad.py"]


def test_missing_or_malformed_baseline_fails_closed(tmp_path):
    broken = tmp_path / "baseline.json"
    broken.write_text("[]")
    findings = [Finding("a.py", 1, 0, "X", "m")]
    kept, absorbed = Baseline.load(str(broken)).filter(findings)
    assert (len(kept), absorbed) == (1, 0)


def test_update_baseline_cli_round_trip(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("[tool.staticcheck]\n")
    target = tmp_path / "bad.py"
    target.write_text(_VIOLATION)
    assert cli_main(["check", "--update-baseline", str(target)]) == 0
    out = capsys.readouterr().out
    assert "wrote 1 finding(s)" in out
    # The follow-up run picks the default baseline up and passes.
    assert cli_main(["check", str(target)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_repo_baseline_matches_the_live_findings():
    # The committed ratchet must stay exact: no unused entries (they
    # would mask future regressions) and no uncovered findings.
    repo = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    baseline_path = os.path.join(repo, "staticcheck-baseline.json")
    document = json.loads(open(baseline_path, encoding="utf-8").read())
    result = run_check([os.path.join(repo, "src", "repro"),
                        os.path.join(repo, "tests")],
                       exclude=("tests/staticcheck/fixtures/*",
                                "tests/staticcheck/fixtures/*/*"),
                       config_root=repo,
                       baseline_path=baseline_path)
    assert result.findings == []
    assert result.baselined == len(document["findings"])
