"""Incremental cache: hit accounting, invalidation, replay fidelity."""

import json
import os

from repro.staticcheck import run_check

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")

_VIOLATION = "import random\n\n\ndef jitter(x):\n    return x + random.random()\n"
_CLEAN = "def double(x):\n    return 2 * x\n"


def _tree(tmp_path, count=3):
    paths = []
    for index in range(count):
        target = tmp_path / f"mod_{index}.py"
        target.write_text(_CLEAN)
        paths.append(str(target))
    cache = str(tmp_path / "cache.json")
    return str(tmp_path), cache


def test_cold_run_is_all_misses_warm_run_all_hits(tmp_path):
    root, cache = _tree(tmp_path)
    cold = run_check([root], cache_path=cache)
    assert (cold.cache_hits, cold.cache_misses) == (0, 3)
    warm = run_check([root], cache_path=cache)
    assert (warm.cache_hits, warm.cache_misses) == (3, 0)


def test_warm_run_reparses_only_the_changed_file(tmp_path):
    root, cache = _tree(tmp_path)
    run_check([root], cache_path=cache)
    (tmp_path / "mod_1.py").write_text(_VIOLATION)
    warm = run_check([root], cache_path=cache)
    assert (warm.cache_hits, warm.cache_misses) == (2, 1)
    assert [f.rule_id for f in warm.findings] == ["DET-RANDOM"]
    assert warm.findings[0].path.endswith("mod_1.py")


def test_findings_replay_identically_from_cache(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(_VIOLATION)
    cache = str(tmp_path / "cache.json")
    cold = run_check([str(target)], cache_path=cache)
    warm = run_check([str(target)], cache_path=cache)
    assert warm.cache_hits == 1
    assert warm.findings == cold.findings
    assert warm.files_checked == cold.files_checked


def test_rule_set_drift_invalidates_every_entry(tmp_path):
    root, cache = _tree(tmp_path)
    run_check([root], cache_path=cache)
    document = json.loads(open(cache, encoding="utf-8").read())
    document["module_rules"] = ["SOMETHING-ELSE"]
    with open(cache, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    warm = run_check([root], cache_path=cache)
    assert (warm.cache_hits, warm.cache_misses) == (0, 3)


def test_corrupt_cache_degrades_to_a_cold_run(tmp_path):
    root, cache = _tree(tmp_path)
    with open(cache, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    result = run_check([root], cache_path=cache)
    assert (result.cache_hits, result.cache_misses) == (0, 3)
    # ... and the broken file was replaced by a valid one.
    assert json.loads(open(cache, encoding="utf-8").read())["files"]


def test_cache_entries_merge_across_disjoint_runs(tmp_path):
    root, cache = _tree(tmp_path)
    run_check([os.path.join(root, "mod_0.py")], cache_path=cache)
    run_check([os.path.join(root, "mod_1.py")], cache_path=cache)
    warm = run_check([root], cache_path=cache)
    assert warm.cache_hits == 2
    assert warm.cache_misses == 1


def test_suppressions_survive_the_cache_round_trip(tmp_path):
    target = tmp_path / "quiet.py"
    target.write_text("import random\n"
                      "x = random.random()  # staticcheck: ignore[DET-RANDOM]\n")
    cache = str(tmp_path / "cache.json")
    assert run_check([str(target)], cache_path=cache).findings == []
    warm = run_check([str(target)], cache_path=cache)
    assert warm.cache_hits == 1
    assert warm.findings == []


def test_library_default_runs_without_any_cache(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(_CLEAN)
    result = run_check([str(target)])
    assert (result.cache_hits, result.cache_misses) == (0, 1)
    assert list(tmp_path.glob("*.json")) == []
