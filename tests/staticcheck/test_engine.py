"""Engine-level behavior: suppressions, reporters, collection, config."""

import json
import os

import pytest

from repro.staticcheck import (
    CheckConfig,
    Finding,
    parse_module,
    render_json,
    render_text,
    run_check,
)
from repro.staticcheck.config import load_config
from repro.staticcheck.engine import all_rules, get_rule

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def fixture(name):
    return os.path.join(FIXTURES, name)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_named_and_blanket_suppressions_are_honored():
    result = run_check([fixture("suppressed.py")])
    assert result.findings == []
    assert result.exit_code == 0


def test_suppression_is_rule_specific():
    module = parse_module(
        "scratch.py",
        source=("import random\n"
                "x = random.random()  # staticcheck: ignore[DET-TIME]\n"))
    findings = list(get_rule("DET-RANDOM").check_module(module))
    assert len(findings) == 1
    # The named suppression targets a different rule, so it must not
    # swallow this finding.
    assert not module.suppressed(findings[0].line, "DET-RANDOM")
    assert module.suppressed(findings[0].line, "DET-TIME")


def test_multiple_ids_in_one_suppression():
    module = parse_module(
        "scratch.py",
        source="x = 1  # staticcheck: ignore[DET-RANDOM, NUM-FLOAT-EQ]\n")
    assert module.suppressed(1, "DET-RANDOM")
    assert module.suppressed(1, "NUM-FLOAT-EQ")
    assert not module.suppressed(1, "DET-TIME")


# ----------------------------------------------------------------------
# Module metadata
# ----------------------------------------------------------------------


def test_module_name_derived_from_repro_path():
    module = parse_module("src/repro/curves/curve.py", source="x = 1\n")
    assert module.module == "repro.curves.curve"
    assert module.package == "curves"


def test_package_init_maps_to_package_name():
    module = parse_module("src/repro/curves/__init__.py", source="")
    assert module.module == "repro.curves"
    assert module.package == "curves"


def test_module_override_comment_sets_scope():
    module = parse_module(
        "anywhere/else.py",
        source="# staticcheck: module=repro.core.example\n")
    assert module.module == "repro.core.example"
    assert module.package == "core"


def test_non_repro_file_has_no_package():
    module = parse_module("scripts/tool.py", source="x = 1\n")
    assert module.module is None
    assert module.package is None


# ----------------------------------------------------------------------
# Collection, excludes, error handling
# ----------------------------------------------------------------------


def test_directory_walk_applies_exclude_globs(tmp_path):
    (tmp_path / "keep.py").write_text("import random\nrandom.random()\n")
    (tmp_path / "skip.py").write_text("import random\nrandom.random()\n")
    result = run_check([str(tmp_path)], exclude=("*/skip.py",),
                       config_root=None)
    assert result.files_checked == 1
    assert {f.rule_id for f in result.findings} == {"DET-RANDOM"}


def test_explicit_file_beats_exclude(tmp_path):
    target = tmp_path / "skip.py"
    target.write_text("import random\nrandom.random()\n")
    result = run_check([str(target)], exclude=("*/skip.py",))
    assert result.files_checked == 1
    assert result.exit_code == 1


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def (:\n")
    result = run_check([str(bad)])
    assert [f.rule_id for f in result.findings] == ["PARSE-ERROR"]
    assert result.exit_code == 1


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def test_json_schema_is_stable():
    result = run_check([fixture("num_float_eq.py")])
    document = json.loads(render_json(result))
    assert document["version"] == 2
    assert set(document) == {"version", "files_checked", "rules_run",
                             "counts", "findings", "cache", "baselined"}
    assert set(document["cache"]) == {"hits", "misses"}
    assert document["baselined"] == 0
    assert document["files_checked"] == 1
    assert document["counts"] == {"NUM-FLOAT-EQ": 1}
    (finding,) = document["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "severity",
                            "message"}
    assert finding["rule"] == "NUM-FLOAT-EQ"
    assert finding["severity"] == "error"
    assert finding["line"] > 0


def test_text_report_is_grepable():
    result = run_check([fixture("det_random.py")])
    text = render_text(result)
    first = text.splitlines()[0]
    path, line, col, rest = first.split(":", 3)
    assert path.endswith("det_random.py")
    assert int(line) > 0 and int(col) >= 0
    assert rest.strip().startswith("DET-RANDOM")
    assert text.splitlines()[-1].startswith("1 finding ")


def test_findings_sort_deterministically():
    findings = [
        Finding("b.py", 3, 0, "DET-RANDOM", "m"),
        Finding("a.py", 9, 0, "DET-RANDOM", "m"),
        Finding("a.py", 2, 4, "NUM-FLOAT-EQ", "m"),
    ]
    assert sorted(findings) == [findings[2], findings[1], findings[0]]


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------


def test_repo_pyproject_config_loads_excludes():
    config = load_config(REPO_ROOT)
    assert config.root == REPO_ROOT
    assert any("fixtures" in pattern for pattern in config.exclude)
    assert config.enable == ()


def test_missing_pyproject_yields_defaults(tmp_path):
    assert load_config(str(tmp_path)) in (CheckConfig(),)


def test_fixture_directory_is_excluded_by_repo_config():
    config = load_config(REPO_ROOT)
    result = run_check([os.path.join(REPO_ROOT, "tests", "staticcheck")],
                       exclude=config.exclude, config_root=config.root)
    # Every bad-example fixture is quarantined by the exclude globs;
    # the test modules themselves must be clean.
    assert result.findings == []


def test_rule_catalogue_is_complete_and_sorted():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids)
    assert set(ids) == {
        "ASYNC-BLOCKING", "ASYNC-SHARED-MUT", "ASYNC-UNAWAITED",
        "DET-RANDOM", "DET-TIME", "DET-SET-ORDER", "DET-ID-HASH",
        "POOL-CALLABLE", "POOL-RECORDER", "NUM-FLOAT-EQ",
        "LAY-UPWARD", "LAY-CYCLE", "LAY-KERNEL",
        "REG-UNKNOWN-SITE", "REG-DEAD-METRIC", "REG-DANGLING-KEY",
        "RES-BARE-EXCEPT", "SUP-UNUSED",
    }
    with pytest.raises(KeyError):
        get_rule("NO-SUCH-RULE")
