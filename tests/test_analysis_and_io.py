"""Tests for repro.analysis, repro.routing.svg, repro.tech.io,
and repro.netlist.io."""

import json

import pytest

from repro.analysis.curve_stats import curve_stats
from repro.analysis.metrics import slack_profile, stage_depths, tree_metrics
from repro.core.bubble_construct import bubble_construct
from repro.core.config import MerlinConfig
from repro.curves.solution import SinkLeaf, Solution
from repro.geometry.point import Point
from repro.netlist.generator import CircuitSpec, generate_circuit
from repro.netlist.io import (
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
)
from repro.orders.tsp import tsp_order
from repro.routing.svg import tree_to_svg, write_svg
from repro.tech.io import (
    library_from_dict,
    library_to_dict,
    load_technology,
    save_technology,
    technology_from_dict,
    technology_to_dict,
)
from repro.tech.delay import LinearGateDelay
from repro.tech.technology import Technology, default_technology
from tests.conftest import build_net

TECH = default_technology()
CFG = MerlinConfig.test_preset()


@pytest.fixture(scope="module")
def optimized():
    net = build_net(4, seed=3)
    result = bubble_construct(net, tsp_order(net), TECH, config=CFG)
    return net, result


class TestTreeMetrics:
    def test_metrics_sane(self, optimized):
        net, result = optimized
        metrics = tree_metrics(result.tree, TECH)
        assert metrics.wirelength_ratio >= 0.9  # near or above HPWL
        assert metrics.max_stage_depth >= 0
        assert 0.0 <= metrics.buffers_per_sink <= 10.0
        assert metrics.arrival_skew >= 0.0

    def test_slack_profile_matches_evaluation(self, optimized):
        net, result = optimized
        from repro.routing.evaluate import evaluate_tree

        ev = evaluate_tree(result.tree, TECH)
        slacks = slack_profile(result.tree, TECH, ev)
        assert set(slacks) == set(range(len(net)))
        assert min(slacks.values()) == pytest.approx(
            ev.required_time_at_driver)

    def test_stage_depths_cover_all_sinks(self, optimized):
        net, result = optimized
        depths = stage_depths(result.tree)
        assert set(depths) == set(range(len(net)))
        assert all(d >= 0 for d in depths.values())


class TestCurveStats:
    def test_stats_from_real_curve(self, optimized):
        _, result = optimized
        stats = curve_stats(result.final_solutions)
        assert stats.size == len(result.final_solutions)
        assert stats.req_span >= 0.0
        assert 0.0 <= stats.unbuffered_fraction <= 1.0

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            curve_stats([])

    def test_req_per_area_sign(self):
        sols = [
            Solution(Point(0, 0), 1.0, 10.0, 0.0, SinkLeaf(0)),
            Solution(Point(0, 0), 1.0, 50.0, 100.0, SinkLeaf(0)),
        ]
        stats = curve_stats(sols)
        assert stats.req_per_area == pytest.approx(0.4)


class TestSvgExport:
    def test_svg_structure(self, optimized):
        _, result = optimized
        svg = tree_to_svg(result.tree)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert 'class="wire"' in svg
        assert 'class="sink"' in svg

    def test_svg_file_roundtrip(self, optimized, tmp_path):
        _, result = optimized
        path = tmp_path / "tree.svg"
        write_svg(result.tree, str(path))
        assert path.read_text().startswith("<svg")

    def test_bad_width_rejected(self, optimized):
        _, result = optimized
        with pytest.raises(ValueError):
            tree_to_svg(result.tree, width=10.0, margin=20.0)


class TestTechnologyIo:
    def test_library_roundtrip(self):
        data = library_to_dict(TECH.buffers)
        rebuilt = library_from_dict(data)
        assert len(rebuilt) == len(TECH.buffers)
        assert rebuilt.smallest.name == TECH.buffers.smallest.name

    def test_technology_roundtrip(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(TECH, str(path))
        loaded = load_technology(str(path))
        assert loaded.wire == TECH.wire
        assert loaded.driver_resistance == TECH.driver_resistance
        assert len(loaded.buffers) == len(TECH.buffers)
        assert loaded.gate_delay == TECH.gate_delay

    def test_linear_model_roundtrip(self):
        tech = Technology(wire=TECH.wire, buffers=TECH.buffers,
                          gate_delay=LinearGateDelay())
        data = technology_to_dict(tech)
        assert data["gate_delay"] == {"model": "linear"}
        assert isinstance(technology_from_dict(data).gate_delay,
                          LinearGateDelay)

    def test_unknown_model_rejected(self):
        data = technology_to_dict(TECH)
        data["gate_delay"] = {"model": "quantum"}
        with pytest.raises(ValueError, match="unknown gate delay"):
            technology_from_dict(data)

    def test_bad_library_data_rejected(self):
        with pytest.raises(ValueError):
            library_from_dict({"not": "a list"})


class TestNetlistIo:
    CIRCUIT = generate_circuit(CircuitSpec(
        name="io_test", primary_inputs=3, primary_outputs=2,
        logic_gates=8, levels=3, max_fanout=3, seed=11))

    def test_roundtrip_structure(self):
        rebuilt = netlist_from_dict(netlist_to_dict(self.CIRCUIT))
        assert rebuilt.name == self.CIRCUIT.name
        assert set(rebuilt.gates) == set(self.CIRCUIT.gates)
        assert [n.sinks for n in rebuilt.nets] == \
            [n.sinks for n in self.CIRCUIT.nets]

    def test_roundtrip_with_placement(self, tmp_path):
        from repro.netlist.placement import place_netlist

        place_netlist(self.CIRCUIT)
        path = tmp_path / "ckt.json"
        save_netlist(self.CIRCUIT, str(path))
        loaded = load_netlist(str(path))
        for name, gate in loaded.gates.items():
            assert gate.position == self.CIRCUIT.gates[name].position

    def test_json_serializable(self):
        json.dumps(netlist_to_dict(self.CIRCUIT))

    def test_unknown_cell_rejected(self):
        data = netlist_to_dict(self.CIRCUIT)
        data["gates"][0]["cell"] = "FLUX_CAPACITOR"
        with pytest.raises(ValueError, match="unknown cell"):
            netlist_from_dict(data)
