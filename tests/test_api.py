"""The ``repro.optimize`` facade: routing, parity, and guard rails."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

import repro
from tests.conftest import build_net
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.curves import kernels
from repro.routing.export import tree_signature
from repro.service import OptimizationService, ResultCache
from repro.tech.technology import default_technology

TECH = default_technology()
CONFIG = MerlinConfig.test_preset()
OBJECTIVE = Objective.max_required_time()

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "golden",
                            "goldens.json")
with open(GOLDENS_PATH, encoding="utf-8") as _handle:
    GOLDENS = json.load(_handle)

#: Mirrors tests/golden/test_golden_regression.py — the facade must be
#: indistinguishable from the engine on the pinned cases.
CASES = (
    ("golden_3s", 3, 11),
    ("golden_4s", 4, 42),
    ("golden_5s", 5, 5),
    ("golden_6s", 6, 7),
)


# ----------------------------------------------------------------------
# Default path: facade == bare merlin(), bit for bit
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name,sinks,seed", CASES)
def test_facade_matches_merlin_on_golden_nets(name, sinks, seed):
    net = build_net(sinks, seed=seed, name=name)
    outcome = repro.optimize(net, TECH, CONFIG, objective=OBJECTIVE)
    direct = merlin(net, TECH, config=CONFIG, objective=OBJECTIVE)
    assert outcome.source == "merlin"
    assert outcome.signature == tree_signature(direct.tree)
    assert outcome.signature == GOLDENS[name]["signature"]
    assert outcome.cost == OBJECTIVE.cost(direct.best.solution)
    assert outcome.iterations == direct.iterations
    assert outcome.converged == direct.converged
    assert outcome.evaluation  # Elmore metrics come along for free


def test_facade_defaults_match_bare_merlin_defaults():
    net = build_net(3, seed=21)
    outcome = repro.optimize(net, TECH, CONFIG)
    direct = merlin(net, TECH, config=CONFIG)
    assert outcome.signature == tree_signature(direct.tree)


def test_initial_order_is_forwarded():
    from repro.orders.order import Order

    net = build_net(4, seed=22)
    order = Order((2, 0, 3, 1))
    outcome = repro.optimize(net, TECH, CONFIG, initial_order=order)
    direct = merlin(net, TECH, config=CONFIG, initial_order=order)
    assert outcome.signature == tree_signature(direct.tree)


# ----------------------------------------------------------------------
# Multi-start path
# ----------------------------------------------------------------------

def test_multi_start_matches_run_multi_start():
    from repro import parallel

    net = build_net(4, seed=23)
    outcome = repro.optimize(net, TECH, CONFIG, multi_start=3, workers=1)
    direct = parallel.run_multi_start(
        net, TECH, config=CONFIG, seeds=[None, 1, 2], workers=1)
    assert outcome.source == "multi_start"
    assert outcome.signature == direct.best.signature
    assert outcome.cost == direct.best.cost


def test_explicit_seeds_path():
    from repro import parallel

    net = build_net(4, seed=24)
    outcome = repro.optimize(net, TECH, CONFIG, seeds=[None, 7], workers=1)
    direct = parallel.run_multi_start(
        net, TECH, config=CONFIG, seeds=[None, 7], workers=1)
    assert outcome.signature == direct.best.signature


def test_multi_start_never_loses_to_single_run():
    net = build_net(5, seed=25)
    single = repro.optimize(net, TECH, CONFIG)
    multi = repro.optimize(net, TECH, CONFIG, multi_start=3, workers=1)
    assert multi.cost <= single.cost


def test_multi_start_validation():
    net = build_net(3, seed=26)
    with pytest.raises(ValueError):
        repro.optimize(net, TECH, CONFIG, multi_start=0)
    from repro.orders.order import Order
    with pytest.raises(ValueError, match="initial_order conflicts"):
        repro.optimize(net, TECH, CONFIG, multi_start=2,
                       initial_order=Order((0, 1, 2)))


# ----------------------------------------------------------------------
# Service path
# ----------------------------------------------------------------------

def test_service_path_round_trips_through_the_cache():
    net = build_net(3, seed=27)
    with OptimizationService(tech=TECH, config=CONFIG,
                             cache=ResultCache(), workers=1) as service:
        cold = repro.optimize(net, service=service)
        warm = repro.optimize(net, service=service)
    assert cold.source == "service" and not cold.cached
    assert warm.source == "service-cache" and warm.cached
    assert warm.signature == cold.signature
    # ... and agrees bit for bit with a bare engine run.
    direct = merlin(net, TECH, config=CONFIG)
    assert cold.signature == tree_signature(direct.tree)


def test_service_path_rejects_conflicting_arguments():
    net = build_net(3, seed=27)
    with OptimizationService(tech=TECH, config=CONFIG,
                             cache=ResultCache(), workers=1) as service:
        with pytest.raises(ValueError, match="service's own"):
            repro.optimize(net, TECH, service=service)
        with pytest.raises(ValueError, match="service's own"):
            repro.optimize(net, config=CONFIG, service=service)
        with pytest.raises(ValueError, match="do not apply"):
            repro.optimize(net, service=service, multi_start=2)


def test_service_path_surfaces_failures():
    from repro.service import engine as engine_mod

    def _boom(job):
        raise RuntimeError("injected")

    net = build_net(3, seed=28)
    with OptimizationService(tech=TECH, config=CONFIG,
                             cache=ResultCache(), workers=1) as service:
        original = engine_mod._JOB_RUNNER
        engine_mod._JOB_RUNNER = _boom
        try:
            with pytest.raises(RuntimeError, match="failed"):
                repro.optimize(net, service=service)
        finally:
            engine_mod._JOB_RUNNER = original


# ----------------------------------------------------------------------
# Public surface
# ----------------------------------------------------------------------

def test_facade_is_exported_at_top_level():
    assert repro.optimize is not None
    assert "optimize" in repro.__all__
    assert "OptimizationService" in repro.__all__
    assert "ResultCache" in repro.__all__


def test_multi_start_merlin_shim_warns_and_delegates():
    from repro import parallel

    net = build_net(3, seed=29)
    with pytest.warns(DeprecationWarning, match="run_multi_start"):
        shimmed = parallel.multi_start_merlin(
            net, TECH, config=CONFIG, seeds=[None, 1], workers=1)
    direct = parallel.run_multi_start(
        net, TECH, config=CONFIG, seeds=[None, 1], workers=1)
    assert shimmed.best.signature == direct.best.signature


# ----------------------------------------------------------------------
# MerlinConfig.backend promotion (satellite)
# ----------------------------------------------------------------------

def test_config_backend_none_keeps_curve_backend():
    config = MerlinConfig.test_preset()
    assert config.backend is None
    assert config.curve.backend == "python"


def test_config_backend_normalizes_into_curve():
    config = MerlinConfig.test_preset().with_(backend="python")
    assert config.curve.backend == "python"
    if kernels.numpy_available():
        fast = MerlinConfig.test_preset().with_(backend="numpy")
        assert fast.curve.backend == "numpy"


def test_config_backend_overrides_curve_setting():
    base = MerlinConfig.test_preset()
    curve = dataclasses.replace(base.curve, backend="numpy")
    config = base.with_(curve=curve, backend="python")
    assert config.curve.backend == "python"


def test_config_backend_validation():
    with pytest.raises(ValueError):
        MerlinConfig.test_preset().with_(backend="fortran")


def test_config_workers_field():
    assert MerlinConfig().workers == 1
    assert MerlinConfig().with_(workers=4).workers == 4
