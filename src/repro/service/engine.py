"""The batch optimization engine: a warm process pool behind a cache.

:class:`OptimizationService` is the long-lived object the ROADMAP's
serving axis asks for.  Construction is cheap; the first cache-missing
job spawns a ``ProcessPoolExecutor`` **once**, and every subsequent
batch streams jobs into the same warm workers — the process-spawn and
import cost that dominates short jobs is paid once per service lifetime
instead of once per net (the bench harness's ``service`` scenario
measures exactly this against per-net cold fan-out).

Contract per job:

* **Cache first.**  Each net is canonicalized
  (:mod:`repro.service.canonical`); a hit rebuilds the stored tree in
  the requesting net's coordinate frame and skips the DP entirely.  An
  exact repeat rebuilds with a zero offset and is bit-identical —
  same ``tree_signature`` — to the cold run that populated the entry.
  Canonical twins *within one batch* are deduplicated too: the DP runs
  once and the twins resolve from the freshly cached entry.
* **Error isolation.**  A job that raises (in a worker or inline)
  yields a ``ServiceResult`` with ``ok=False`` and a structured
  :class:`~repro.resilience.errors.ErrorRecord` (kind / category /
  stage); the other jobs of the batch are unaffected.
* **Crash recovery.**  A worker process that *dies*
  (``BrokenProcessPool``) does not fail its job: the pool is rebuilt
  with bounded exponential backoff and every uncollected job is
  resubmitted; after ``pool_retries`` rebuilds the survivors run
  serially inline.  Either way the caller gets real results, and
  ``resilience.pool.rebuilds`` / ``resilience.job.retries`` record the
  event.
* **Per-job timeout.**  ``timeout_s`` bounds the wait for each result.
  ``ProcessPoolExecutor`` cannot kill a running task, so a timed-out
  job's worker finishes (and is discarded) in the background; its slot
  returns to the pool when it does.
* **Graceful degradation.**  When process pools are unavailable
  (sandboxes, restricted platforms) or ``workers == 1``, jobs run
  serially inline — same results, no pool, timeouts not enforceable.
  Independently, ``budget_ops`` / ``deadline_s`` bound each job's
  *compute*: on exhaustion the job walks the degradation ladder
  (:mod:`repro.resilience.degrade`) and returns a valid tree tagged
  ``degraded`` instead of failing.  Degraded payloads are never
  cached — the budget is not part of the cache key, and a degraded
  answer must not satisfy a future full-quality lookup.

Determinism: results are collected by submission index (never completion
order), and workers run with ``config.recorder`` stripped, exactly like
:mod:`repro.parallel`.

Chaos hooks: job dispatch and worker entry pass through the
``service.job`` / ``service.worker`` fault points
(:mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.instrument import Recorder
from repro.instrument import names as metric
from repro.net import Net
from repro.resilience.budget import ComputeBudget
from repro.resilience.degrade import run_brownout, run_with_ladder
from repro.resilience.errors import (
    ErrorRecord,
    JobTimeoutError,
    MerlinInputError,
    classify,
)
from repro.resilience.faults import fault_point
from repro.routing.evaluate import evaluate_tree
from repro.routing.export import (
    evaluation_to_dict,
    tree_from_dict,
    tree_signature,
    tree_to_dict,
)
from repro.routing.tree import RoutingTree
from repro.service.cache import ResultCache
from repro.service.canonical import canonical_key, technology_fingerprint
from repro.tech.technology import Technology, default_technology

#: Backoff before pool rebuild r (1-based) is
#: ``min(_POOL_BACKOFF_CAP_S, backoff_base * 2**(r-1))``.
_POOL_BACKOFF_CAP_S = 1.0


@dataclass(frozen=True)
class _Job:
    """One cache-missing optimization (picklable unit of pool work).

    The compute budget crosses the process boundary as plain numbers;
    the worker constructs its own :class:`ComputeBudget` at job start
    (a live budget's deadline anchor is process-local).
    """

    net: Net
    tech: Technology
    config: MerlinConfig
    objective: Objective
    budget_ops: Optional[int] = None
    deadline_s: Optional[float] = None
    #: Brownout job: skip the ladder, run the coarse preset directly.
    brownout: bool = False


def _run_job(job: _Job) -> Dict[str, Any]:
    """Run one job down the degradation ladder; return the payload.

    With no budget configured the ladder's first rung is a plain
    ``merlin()`` run and the payload is bit-identical to the
    pre-resilience engine (golden signatures unchanged).  The tree is
    exported together with the source it was computed at, so a cache
    hit from a translate-equivalent net can rebuild it in its own frame
    (offset = new source - stored source; zero for repeats).
    """
    start = time.perf_counter()
    fault_point("service.job", key=job.net.name)
    budget: Optional[ComputeBudget] = None
    if job.budget_ops is not None or job.deadline_s is not None:
        budget = ComputeBudget(max_ops=job.budget_ops,
                               deadline_s=job.deadline_s)
    if job.brownout:
        outcome = run_brownout(job.net, job.tech, config=job.config,
                               objective=job.objective, budget=budget)
    else:
        outcome = run_with_ladder(job.net, job.tech, config=job.config,
                                  objective=job.objective, budget=budget)
    evaluation = evaluate_tree(outcome.tree, job.tech)
    payload: Dict[str, Any] = {
        "source": [job.net.source.x, job.net.source.y],
        "tree": tree_to_dict(outcome.tree),
        "evaluation": evaluation_to_dict(evaluation),
        "cost": outcome.cost,
        "iterations": outcome.iterations,
        "converged": outcome.converged,
        "cost_trace": list(outcome.cost_trace),
        "degraded": outcome.degraded,
        "engine_wall_s": time.perf_counter() - start,
    }
    if outcome.degraded:
        payload["degradation"] = {
            "rung": outcome.rung,
            "reason": outcome.reason,
            "attempts": list(outcome.attempts),
        }
    return payload


def _invoke_job(job: _Job) -> Dict[str, Any]:
    """Pool entry point: resolves the runner at call time in the worker,
    so tests can monkeypatch ``_JOB_RUNNER`` (inherited via fork) to
    inject failures and stalls without touching the engine."""
    fault_point("service.worker", key=job.net.name)
    return _JOB_RUNNER(job)


#: Indirection target of :func:`_invoke_job`; tests swap this.
_JOB_RUNNER = _run_job

#: A finished job is either a payload dict or a structured error.
_Outcome = Union[Dict[str, Any], ErrorRecord]


@dataclass
class ServiceResult:
    """The service's answer for one net (one entry per requested net)."""

    net_name: str
    #: False when the job errored or timed out (see :attr:`error`).
    ok: bool
    #: True when the answer came from the canonical-net cache.
    cached: bool
    #: Wall-clock seconds from request to answer (queueing included).
    elapsed_s: float
    error: Optional[str] = None
    #: Taxonomy projection of the failure (``ok=False`` only).
    error_kind: Optional[str] = None
    error_category: Optional[str] = None
    error_stage: Optional[str] = None
    signature: Optional[str] = None
    cost: Optional[float] = None
    iterations: Optional[int] = None
    converged: Optional[bool] = None
    #: True when a degradation-ladder fallback produced the tree.
    degraded: bool = False
    #: Ladder detail (rung, reason, attempts) when :attr:`degraded`.
    degradation: Optional[Dict[str, Any]] = field(default=None, repr=False)
    tree: Optional[RoutingTree] = field(default=None, repr=False)
    evaluation: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @property
    def error_record(self) -> Optional[ErrorRecord]:
        """The failure as a structured record (None when ``ok``)."""
        if self.ok:
            return None
        return ErrorRecord(
            kind=self.error_kind or "MerlinError",
            category=self.error_category or "internal",
            stage=self.error_stage or "service",
            message=self.error or "",
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable response body (``POST /optimize`` shape)."""
        data: Dict[str, Any] = {
            "net": self.net_name,
            "ok": self.ok,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }
        if not self.ok:
            data["error"] = self.error
            record = self.error_record
            if record is not None:
                data["error_detail"] = record.to_dict()
            return data
        data.update({
            "tree_signature": self.signature,
            "cost": self.cost,
            "iterations": self.iterations,
            "converged": self.converged,
            "degraded": self.degraded,
            "tree": tree_to_dict(self.tree),
            "evaluation": self.evaluation,
        })
        if self.degraded and self.degradation is not None:
            data["degradation"] = self.degradation
        return data


class OptimizationService:
    """Long-lived, cache-fronted, pool-backed multi-net optimizer.

    Usable as a context manager; :meth:`close` shuts the warm pool down.
    All entry points are thread-safe (the HTTP front end calls
    :meth:`optimize` from many handler threads).

    Resilience knobs:

    ``budget_ops`` / ``deadline_s``
        Per-job compute budget handed to the degradation ladder (see
        module docstring).  ``budget_ops`` is deterministic;
        ``deadline_s`` is wall-clock.
    ``pool_retries``
        How many times a broken pool is rebuilt (with exponential
        backoff) before the surviving jobs run serially inline.
    ``pool_retry_backoff_s``
        Base of the backoff; rebuild ``r`` sleeps
        ``min(1.0, base * 2**(r-1))`` seconds.  Tests set 0.
    """

    def __init__(self, tech: Optional[Technology] = None,
                 config: Optional[MerlinConfig] = None,
                 objective: Optional[Objective] = None,
                 cache: Optional[ResultCache] = None,
                 workers: Optional[int] = None,
                 job_timeout_s: Optional[float] = None,
                 recorder: Optional[Recorder] = None,
                 budget_ops: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 pool_retries: int = 2,
                 pool_retry_backoff_s: float = 0.05) -> None:
        self.tech = tech or default_technology()
        # Workers never share the parent's recorder (unpicklable, racy);
        # budgets are per-job, never part of the shared config.
        self.config = (config or MerlinConfig()).with_(recorder=None,
                                                       budget=None)
        self.objective = objective or Objective.max_required_time()
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers if workers is not None else self.config.workers
        if self.workers < 1:
            raise MerlinInputError("workers must be >= 1")
        if pool_retries < 0:
            raise MerlinInputError("pool_retries must be >= 0")
        self.job_timeout_s = job_timeout_s
        self.budget_ops = budget_ops
        self.deadline_s = deadline_s
        self.pool_retries = pool_retries
        self.pool_retry_backoff_s = pool_retry_backoff_s
        self.recorder = recorder or Recorder()
        if self.cache.recorder is None:
            self.cache.recorder = self.recorder
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_disabled: Optional[str] = None
        self._lock = Lock()
        # The technology never changes over the service's lifetime, so
        # its (library-sized) fingerprint is computed once and reused by
        # every canonical-key construction.
        self._tech_fingerprint = technology_fingerprint(self.tech)

    @property
    def tech_fingerprint(self) -> str:
        """Precomputed :func:`technology_fingerprint` of this service's
        technology (shared with front ends that canonicalize for
        routing, so shard keys and cache keys agree byte-for-byte)."""
        return self._tech_fingerprint

    def canonical_key_for(self, net: Net,
                          objective: Optional[Objective] = None) -> str:
        """The canonical cache key this service would use for ``net``."""
        return canonical_key(
            net, self.tech, self.config,
            objective if objective is not None else self.objective,
            tech_fingerprint_hex=self._tech_fingerprint)

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "OptimizationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the warm pool (idempotent; service stays usable
        serially afterwards only via a fresh pool on next use)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _acquire_pool(self) -> Optional[ProcessPoolExecutor]:
        """The warm pool, spawned on first use; None => run serially."""
        if self.workers == 1:
            return None
        with self._lock:
            if self._pool is not None:
                return self._pool
            if self._pool_disabled is not None:
                return None
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ImportError, NotImplementedError) as exc:
                # No process support here: degrade to serial, remember why.
                self._pool_disabled = repr(exc)
                return None
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    # -- the service API ------------------------------------------------

    def optimize(self, net: Net,
                 timeout_s: Optional[float] = None,
                 objective: Optional[Objective] = None,
                 brownout: bool = False) -> ServiceResult:
        """Optimize one net (cache-aware); single-net :meth:`optimize_many`."""
        objectives = [objective] if objective is not None else None
        return self.optimize_many([net], timeout_s=timeout_s,
                                  objectives=objectives,
                                  brownout=brownout)[0]

    def optimize_many(self, nets: Sequence[Net],
                      timeout_s: Optional[float] = None,
                      objectives: Optional[
                          Sequence[Optional[Objective]]] = None,
                      brownout: bool = False) -> List[ServiceResult]:
        """Optimize ``nets``; returns one result per net, in order.

        ``timeout_s`` (default: the service's ``job_timeout_s``) bounds
        each job individually; see the module docstring for semantics.

        ``objectives``, when given, must align with ``nets`` and
        overrides the service objective per job (``None`` entries keep
        the default).  The objective is part of the canonical cache
        key, so per-job overrides never poison cached answers computed
        under a different selection rule — the timing-closure pipeline
        relies on this to pass each net its own required-time floor.

        ``brownout`` marks load-shed jobs from the serving tier: misses
        skip the degradation ladder and run the coarse preset directly.
        Full-quality cache hits are still served (a hit is cheaper than
        even the coarse DP) and brownout answers — being degraded — are
        never written back to the cache.
        """
        nets = list(nets)
        if objectives is None:
            objectives = [None] * len(nets)
        elif len(objectives) != len(nets):
            raise MerlinInputError(
                f"objectives ({len(objectives)}) must align with nets "
                f"({len(nets)})")
        job_objectives = [obj if obj is not None else self.objective
                          for obj in objectives]
        timeout_s = timeout_s if timeout_s is not None else self.job_timeout_s
        started = [time.perf_counter()] * len(nets)
        results: List[Optional[ServiceResult]] = [None] * len(nets)
        keys: List[Optional[str]] = [None] * len(nets)
        misses: List[int] = []
        duplicates: List[int] = []
        dispatched: set = set()

        for i, net in enumerate(nets):
            started[i] = time.perf_counter()
            self._record(metric.SERVICE_REQUESTS)
            try:
                key = canonical_key(
                    net, self.tech, self.config, job_objectives[i],
                    tech_fingerprint_hex=self._tech_fingerprint)
            except Exception as exc:  # un-canonicalizable input
                self._record(metric.SERVICE_ERRORS)
                results[i] = self._error_result(
                    net, started[i], classify(exc, stage="canonicalize"))
                continue
            keys[i] = key
            payload = self.cache.get(key)
            if payload is not None:
                self._record(metric.SERVICE_CACHE_HITS)
                results[i] = self._from_payload(net, payload, cached=True,
                                                started=started[i])
            elif key in dispatched:
                # Canonical twin of an earlier miss in this same batch:
                # run the DP once, resolve this one from the cache after.
                duplicates.append(i)
            else:
                self._record(metric.SERVICE_CACHE_MISSES)
                dispatched.add(key)
                misses.append(i)

        if misses:
            self._run_misses(nets, misses, keys, started, results, timeout_s,
                             job_objectives, brownout=brownout)
        for i in duplicates:
            self._resolve_duplicate(nets[i], i, keys, started, results)

        for i, result in enumerate(results):
            assert result is not None
            self._record_series(metric.SERVICE_REQUEST_LATENCY_S,
                                result.elapsed_s)
        return [r for r in results if r is not None]

    def stats(self) -> Dict[str, Any]:
        """Everything ``GET /stats`` reports."""
        with self._lock:
            mode = "pool" if self._pool is not None else (
                "serial" if self.workers == 1 or self._pool_disabled
                else "pool-cold")
            disabled = self._pool_disabled
            report = self.recorder.report()
        return {
            "workers": self.workers,
            "execution_mode": mode,
            "pool_disabled_reason": disabled,
            "job_timeout_s": self.job_timeout_s,
            "budget_ops": self.budget_ops,
            "deadline_s": self.deadline_s,
            "pool_retries": self.pool_retries,
            "cache": self.cache.stats(),
            "counters": report["counters"],
            "latency": report["series"],
        }

    # -- miss execution -------------------------------------------------

    def _make_job(self, net: Net,
                  objective: Optional[Objective] = None,
                  brownout: bool = False) -> _Job:
        return _Job(net=net, tech=self.tech, config=self.config,
                    objective=objective if objective is not None
                    else self.objective,
                    budget_ops=self.budget_ops,
                    deadline_s=self.deadline_s,
                    brownout=brownout)

    def _run_misses(self, nets: Sequence[Net], misses: List[int],
                    keys: List[Optional[str]], started: List[float],
                    results: List[Optional[ServiceResult]],
                    timeout_s: Optional[float],
                    objectives: Optional[Sequence[Objective]] = None,
                    brownout: bool = False) -> None:
        jobs = {i: self._make_job(
            nets[i], objectives[i] if objectives is not None else None,
            brownout=brownout)
            for i in misses}
        if (len(misses) == 1 and timeout_s is None
                and self._pool is None):
            # Singleton batch, no deadline, no warm pool yet: spawning a
            # multi-process pool costs more than the job itself, so run
            # it inline (bit-identical results — the pool exists for
            # parallelism and timeout enforcement, and neither applies).
            # A timeout, or an already-warm pool, keeps the pool path.
            i = misses[0]
            self._finish_job(nets[i], i, keys, started, results,
                             self._run_inline(jobs[i]))
            return
        pool = self._acquire_pool()
        if pool is None:
            for i in misses:
                self._finish_job(nets[i], i, keys, started, results,
                                 self._run_inline(jobs[i]))
            return

        pending = list(misses)
        rebuilds = 0
        while pending:
            try:
                futures = {i: pool.submit(_invoke_job, jobs[i])
                           for i in pending}
            except RuntimeError:  # pool already shut down
                self._discard_pool(pool)
                pool = self._acquire_pool()
                if pool is None:
                    for i in pending:
                        self._finish_job(nets[i], i, keys, started, results,
                                         self._run_inline(jobs[i]))
                    return
                continue
            broken = False
            for i in pending:
                future = futures[i]
                try:
                    outcome: _Outcome = future.result(timeout=timeout_s)
                except FutureTimeoutError:
                    future.cancel()
                    self._record(metric.SERVICE_JOB_TIMEOUTS)
                    self._record(metric.SERVICE_ERRORS)
                    outcome = JobTimeoutError(
                        f"job timed out after {timeout_s}s "
                        f"(worker still draining)", stage="pool").record
                except BrokenProcessPool:
                    # A worker died.  Do NOT fail the job: rebuild the
                    # pool (bounded, with backoff) and resubmit every
                    # job not yet collected — this one included.
                    broken = True
                    break
                except Exception as exc:
                    self._record(metric.SERVICE_JOB_FAILURES)
                    self._record(metric.SERVICE_ERRORS)
                    outcome = classify(exc, stage="engine")
                self._finish_job(nets[i], i, keys, started, results, outcome)
            if not broken:
                return
            pending = [i for i in pending if results[i] is None]
            self._discard_pool(pool)
            rebuilds += 1
            self._record(metric.RESILIENCE_POOL_REBUILDS)
            self._record(metric.RESILIENCE_JOB_RETRIES, len(pending))
            if rebuilds > self.pool_retries:
                # Retry budget spent: the pool path is not trustworthy
                # right now — finish the survivors serially inline.
                for i in pending:
                    self._finish_job(nets[i], i, keys, started, results,
                                     self._run_inline(jobs[i]))
                return
            backoff = min(_POOL_BACKOFF_CAP_S,
                          self.pool_retry_backoff_s * (2 ** (rebuilds - 1)))
            if backoff > 0:
                time.sleep(backoff)
            pool = self._acquire_pool()
            if pool is None:
                for i in pending:
                    self._finish_job(nets[i], i, keys, started, results,
                                     self._run_inline(jobs[i]))
                return

    def _run_inline(self, job: _Job) -> _Outcome:
        """Serial fallback: payload dict on success, structured error
        record on failure (same isolation contract as the pool path)."""
        try:
            return _JOB_RUNNER(job)
        except Exception as exc:
            self._record(metric.SERVICE_JOB_FAILURES)
            self._record(metric.SERVICE_ERRORS)
            return classify(exc, stage="engine")

    def _finish_job(self, net: Net, i: int, keys: List[Optional[str]],
                    started: List[float],
                    results: List[Optional[ServiceResult]],
                    outcome: _Outcome) -> None:
        """Record one job's outcome: payload dict = success (cached for
        next time unless degraded), ErrorRecord = failure."""
        self._record(metric.SERVICE_JOBS)
        if isinstance(outcome, ErrorRecord):
            results[i] = self._error_result(net, started[i], outcome)
            return
        self._record_series(metric.SERVICE_JOB_LATENCY_S,
                            outcome.get("engine_wall_s", 0.0))
        key = keys[i]
        if outcome.get("degraded"):
            # A degraded payload must never serve a future full-quality
            # lookup: the budget is excluded from the canonical key.
            self._record(metric.RESILIENCE_DEGRADED)
            for attempt in (outcome.get("degradation") or {}).get(
                    "attempts", ()):
                if attempt.get("error", {}).get("kind") \
                        == "BudgetExhaustedError":
                    self._record(metric.RESILIENCE_BUDGET_EXHAUSTED)
        elif key is not None:
            self.cache.put(key, outcome)
        results[i] = self._from_payload(net, outcome, cached=False,
                                        started=started[i])

    def _resolve_duplicate(self, net: Net, i: int,
                           keys: List[Optional[str]], started: List[float],
                           results: List[Optional[ServiceResult]]) -> None:
        """Answer a within-batch canonical twin from the entry its
        primary just cached (or mirror the primary's outcome when no
        entry exists — failures, degraded answers)."""
        key = keys[i]
        payload = self.cache.get(key) if key is not None else None
        if payload is not None:
            self._record(metric.SERVICE_CACHE_HITS)
            results[i] = self._from_payload(net, payload, cached=True,
                                            started=started[i])
            return
        primary = next((r for j, r in enumerate(results)
                        if r is not None and keys[j] == key and j != i),
                       None)
        if primary is not None and primary.ok:
            # Degraded primary: nothing was cached; mirror its answer by
            # rebuilding from this net's own frame is not possible here,
            # so re-present the primary's tree data for this twin.
            results[i] = ServiceResult(
                net_name=net.name,
                ok=True,
                cached=False,
                elapsed_s=time.perf_counter() - started[i],
                signature=primary.signature,
                cost=primary.cost,
                iterations=primary.iterations,
                converged=primary.converged,
                degraded=primary.degraded,
                degradation=primary.degradation,
                tree=primary.tree,
                evaluation=primary.evaluation,
            )
            return
        self._record(metric.SERVICE_ERRORS)
        record = primary.error_record if primary is not None else None
        if record is None:
            record = ErrorRecord(
                kind="MerlinInternalError", category="internal",
                stage="service",
                message="canonically identical job in this batch failed")
        results[i] = self._error_result(net, started[i], record)

    # -- result assembly ------------------------------------------------

    def _from_payload(self, net: Net, payload: Dict[str, Any], cached: bool,
                      started: float) -> ServiceResult:
        """Rebuild a tree-bearing result in ``net``'s coordinate frame."""
        sx, sy = payload["source"]
        offset = (net.source.x - sx, net.source.y - sy)
        tree = tree_from_dict(payload["tree"], net, self.tech.buffers,
                              offset=offset)
        return ServiceResult(
            net_name=net.name,
            ok=True,
            cached=cached,
            elapsed_s=time.perf_counter() - started,
            signature=tree_signature(tree),
            cost=payload["cost"],
            iterations=payload["iterations"],
            converged=payload["converged"],
            degraded=bool(payload.get("degraded", False)),
            degradation=payload.get("degradation"),
            tree=tree,
            evaluation=payload["evaluation"],
        )

    def _error_result(self, net: Net, started: float,
                      error: Union[str, ErrorRecord]) -> ServiceResult:
        if isinstance(error, str):
            error = ErrorRecord(kind="MerlinInternalError",
                                category="internal", stage="service",
                                message=error)
        return ServiceResult(
            net_name=net.name,
            ok=False,
            cached=False,
            elapsed_s=time.perf_counter() - started,
            error=error.message,
            error_kind=error.kind,
            error_category=error.category,
            error_stage=error.stage,
        )

    # -- recorder (thread-safe wrappers) --------------------------------

    def _record(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.recorder.incr(name, n)

    def _record_series(self, name: str, value: float) -> None:
        with self._lock:
            self.recorder.record(name, value)


def optimize_many(nets: Sequence[Net], tech: Optional[Technology] = None,
                  config: Optional[MerlinConfig] = None,
                  objective: Optional[Objective] = None,
                  workers: Optional[int] = None,
                  cache: Optional[ResultCache] = None,
                  timeout_s: Optional[float] = None,
                  budget_ops: Optional[int] = None,
                  deadline_s: Optional[float] = None) -> List[ServiceResult]:
    """One-shot convenience: optimize ``nets`` through a transient
    :class:`OptimizationService` (spawn pool, stream jobs, shut down).

    Long-running callers should hold an :class:`OptimizationService` of
    their own so the pool and cache stay warm across batches.
    """
    with OptimizationService(tech=tech, config=config, objective=objective,
                             cache=cache, workers=workers,
                             budget_ops=budget_ops,
                             deadline_s=deadline_s) as service:
        return service.optimize_many(nets, timeout_s=timeout_s)
