"""The batch optimization engine: a warm process pool behind a cache.

:class:`OptimizationService` is the long-lived object the ROADMAP's
serving axis asks for.  Construction is cheap; the first cache-missing
job spawns a ``ProcessPoolExecutor`` **once**, and every subsequent
batch streams jobs into the same warm workers — the process-spawn and
import cost that dominates short jobs is paid once per service lifetime
instead of once per net (the bench harness's ``service`` scenario
measures exactly this against per-net cold fan-out).

Contract per job:

* **Cache first.**  Each net is canonicalized
  (:mod:`repro.service.canonical`); a hit rebuilds the stored tree in
  the requesting net's coordinate frame and skips the DP entirely.  An
  exact repeat rebuilds with a zero offset and is bit-identical —
  same ``tree_signature`` — to the cold run that populated the entry.
  Canonical twins *within one batch* are deduplicated too: the DP runs
  once and the twins resolve from the freshly cached entry.
* **Error isolation.**  A job that raises (in a worker or inline) yields
  a ``ServiceResult`` with ``ok=False`` and the error string; the other
  jobs of the batch are unaffected.  A worker process that *dies*
  (``BrokenProcessPool``) fails its job, the pool is rebuilt, and the
  remaining jobs are resubmitted.
* **Per-job timeout.**  ``timeout_s`` bounds the wait for each result.
  ``ProcessPoolExecutor`` cannot kill a running task, so a timed-out
  job's worker finishes (and is discarded) in the background; its slot
  returns to the pool when it does.
* **Graceful degradation.**  When process pools are unavailable
  (sandboxes, restricted platforms) or ``workers == 1``, jobs run
  serially inline — same results, no pool, timeouts not enforceable.

Determinism: results are collected by submission index (never completion
order), and workers run with ``config.recorder`` stripped, exactly like
:mod:`repro.parallel`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.instrument import Recorder
from repro.instrument import names as metric
from repro.net import Net
from repro.routing.evaluate import evaluate_tree
from repro.routing.export import (
    evaluation_to_dict,
    tree_from_dict,
    tree_signature,
    tree_to_dict,
)
from repro.routing.tree import RoutingTree
from repro.service.cache import ResultCache
from repro.service.canonical import canonical_key
from repro.tech.technology import Technology, default_technology


@dataclass(frozen=True)
class _Job:
    """One cache-missing optimization (picklable unit of pool work)."""

    net: Net
    tech: Technology
    config: MerlinConfig
    objective: Objective


def _run_job(job: _Job) -> Dict[str, Any]:
    """Run MERLIN on one job and return the cacheable payload.

    The tree is exported together with the source it was computed at, so
    a cache hit from a translate-equivalent net can rebuild it in its
    own frame (offset = new source - stored source; zero for repeats).
    """
    start = time.perf_counter()
    result = merlin(job.net, job.tech, config=job.config,
                    objective=job.objective)
    evaluation = evaluate_tree(result.tree, job.tech)
    return {
        "source": [job.net.source.x, job.net.source.y],
        "tree": tree_to_dict(result.tree),
        "evaluation": evaluation_to_dict(evaluation),
        "cost": job.objective.cost(result.best.solution),
        "iterations": result.iterations,
        "converged": result.converged,
        "cost_trace": list(result.cost_trace),
        "engine_wall_s": time.perf_counter() - start,
    }


def _invoke_job(job: _Job) -> Dict[str, Any]:
    """Pool entry point: resolves the runner at call time in the worker,
    so tests can monkeypatch ``_JOB_RUNNER`` (inherited via fork) to
    inject failures and stalls without touching the engine."""
    return _JOB_RUNNER(job)


#: Indirection target of :func:`_invoke_job`; tests swap this.
_JOB_RUNNER = _run_job


@dataclass
class ServiceResult:
    """The service's answer for one net (one entry per requested net)."""

    net_name: str
    #: False when the job errored or timed out (see :attr:`error`).
    ok: bool
    #: True when the answer came from the canonical-net cache.
    cached: bool
    #: Wall-clock seconds from request to answer (queueing included).
    elapsed_s: float
    error: Optional[str] = None
    signature: Optional[str] = None
    cost: Optional[float] = None
    iterations: Optional[int] = None
    converged: Optional[bool] = None
    tree: Optional[RoutingTree] = field(default=None, repr=False)
    evaluation: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable response body (``POST /optimize`` shape)."""
        data: Dict[str, Any] = {
            "net": self.net_name,
            "ok": self.ok,
            "cached": self.cached,
            "elapsed_s": self.elapsed_s,
        }
        if not self.ok:
            data["error"] = self.error
            return data
        data.update({
            "tree_signature": self.signature,
            "cost": self.cost,
            "iterations": self.iterations,
            "converged": self.converged,
            "tree": tree_to_dict(self.tree),
            "evaluation": self.evaluation,
        })
        return data


class OptimizationService:
    """Long-lived, cache-fronted, pool-backed multi-net optimizer.

    Usable as a context manager; :meth:`close` shuts the warm pool down.
    All entry points are thread-safe (the HTTP front end calls
    :meth:`optimize` from many handler threads).
    """

    def __init__(self, tech: Optional[Technology] = None,
                 config: Optional[MerlinConfig] = None,
                 objective: Optional[Objective] = None,
                 cache: Optional[ResultCache] = None,
                 workers: Optional[int] = None,
                 job_timeout_s: Optional[float] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self.tech = tech or default_technology()
        # Workers never share the parent's recorder (unpicklable, racy).
        self.config = (config or MerlinConfig()).with_(recorder=None)
        self.objective = objective or Objective.max_required_time()
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers if workers is not None else self.config.workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.job_timeout_s = job_timeout_s
        self.recorder = recorder or Recorder()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_disabled: Optional[str] = None
        self._lock = Lock()

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "OptimizationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the warm pool (idempotent; service stays usable
        serially afterwards only via a fresh pool on next use)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _acquire_pool(self) -> Optional[ProcessPoolExecutor]:
        """The warm pool, spawned on first use; None => run serially."""
        if self.workers == 1:
            return None
        with self._lock:
            if self._pool is not None:
                return self._pool
            if self._pool_disabled is not None:
                return None
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ImportError, NotImplementedError) as exc:
                # No process support here: degrade to serial, remember why.
                self._pool_disabled = repr(exc)
                return None
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    # -- the service API ------------------------------------------------

    def optimize(self, net: Net,
                 timeout_s: Optional[float] = None) -> ServiceResult:
        """Optimize one net (cache-aware); single-net :meth:`optimize_many`."""
        return self.optimize_many([net], timeout_s=timeout_s)[0]

    def optimize_many(self, nets: Sequence[Net],
                      timeout_s: Optional[float] = None
                      ) -> List[ServiceResult]:
        """Optimize ``nets``; returns one result per net, in order.

        ``timeout_s`` (default: the service's ``job_timeout_s``) bounds
        each job individually; see the module docstring for semantics.
        """
        nets = list(nets)
        timeout_s = timeout_s if timeout_s is not None else self.job_timeout_s
        started = [time.perf_counter()] * len(nets)
        results: List[Optional[ServiceResult]] = [None] * len(nets)
        keys: List[Optional[str]] = [None] * len(nets)
        misses: List[int] = []
        duplicates: List[int] = []
        dispatched: set = set()

        for i, net in enumerate(nets):
            started[i] = time.perf_counter()
            self._record(metric.SERVICE_REQUESTS)
            try:
                key = canonical_key(net, self.tech, self.config,
                                    self.objective)
            except Exception as exc:  # un-canonicalizable input
                results[i] = self._error_result(net, started[i], repr(exc))
                continue
            keys[i] = key
            payload = self.cache.get(key)
            if payload is not None:
                self._record(metric.SERVICE_CACHE_HITS)
                results[i] = self._from_payload(net, payload, cached=True,
                                                started=started[i])
            elif key in dispatched:
                # Canonical twin of an earlier miss in this same batch:
                # run the DP once, resolve this one from the cache after.
                duplicates.append(i)
            else:
                self._record(metric.SERVICE_CACHE_MISSES)
                dispatched.add(key)
                misses.append(i)

        if misses:
            self._run_misses(nets, misses, keys, started, results, timeout_s)
        for i in duplicates:
            self._resolve_duplicate(nets[i], i, keys, started, results)

        for i, result in enumerate(results):
            assert result is not None
            self._record_series(metric.SERVICE_REQUEST_LATENCY_S,
                                result.elapsed_s)
        return [r for r in results if r is not None]

    def stats(self) -> Dict[str, Any]:
        """Everything ``GET /stats`` reports."""
        with self._lock:
            mode = "pool" if self._pool is not None else (
                "serial" if self.workers == 1 or self._pool_disabled
                else "pool-cold")
            disabled = self._pool_disabled
            report = self.recorder.report()
        return {
            "workers": self.workers,
            "execution_mode": mode,
            "pool_disabled_reason": disabled,
            "job_timeout_s": self.job_timeout_s,
            "cache": self.cache.stats(),
            "counters": report["counters"],
            "latency": report["series"],
        }

    # -- miss execution -------------------------------------------------

    def _run_misses(self, nets: Sequence[Net], misses: List[int],
                    keys: List[Optional[str]], started: List[float],
                    results: List[Optional[ServiceResult]],
                    timeout_s: Optional[float]) -> None:
        jobs = {i: _Job(net=nets[i], tech=self.tech, config=self.config,
                        objective=self.objective) for i in misses}
        pool = self._acquire_pool()
        if pool is None:
            for i in misses:
                self._finish_job(nets[i], i, keys, started, results,
                                 self._run_inline(jobs[i]))
            return

        pending = list(misses)
        while pending:
            try:
                futures = {i: pool.submit(_invoke_job, jobs[i])
                           for i in pending}
            except RuntimeError as exc:  # pool already shut down
                self._discard_pool(pool)
                pool = self._acquire_pool()
                if pool is None:
                    for i in pending:
                        self._finish_job(nets[i], i, keys, started, results,
                                         self._run_inline(jobs[i]))
                    return
                continue
            broken_at: Optional[int] = None
            for i in pending:
                future = futures[i]
                try:
                    payload = future.result(timeout=timeout_s)
                    outcome: Any = payload
                except FutureTimeoutError:
                    future.cancel()
                    self._record(metric.SERVICE_JOB_TIMEOUTS)
                    self._record(metric.SERVICE_ERRORS)
                    outcome = (f"job timed out after {timeout_s}s "
                               f"(worker still draining)")
                except BrokenProcessPool:
                    # This worker process died; fail the job, rebuild the
                    # pool, and resubmit everything not yet collected.
                    self._record(metric.SERVICE_JOB_FAILURES)
                    self._record(metric.SERVICE_ERRORS)
                    broken_at = i
                    break
                except Exception as exc:
                    self._record(metric.SERVICE_JOB_FAILURES)
                    self._record(metric.SERVICE_ERRORS)
                    outcome = repr(exc)
                self._finish_job(nets[i], i, keys, started, results, outcome)
            if broken_at is None:
                return
            self._finish_job(nets[broken_at], broken_at, keys, started,
                             results, "worker process died (pool rebuilt)")
            pending = [i for i in pending
                       if results[i] is None]
            self._discard_pool(pool)
            pool = self._acquire_pool()
            if pool is None:
                for i in pending:
                    self._finish_job(nets[i], i, keys, started, results,
                                     self._run_inline(jobs[i]))
                return

    def _run_inline(self, job: _Job) -> Any:
        """Serial fallback: payload dict on success, error string on
        failure (same isolation contract as the pool path)."""
        try:
            return _JOB_RUNNER(job)
        except Exception as exc:
            self._record(metric.SERVICE_JOB_FAILURES)
            self._record(metric.SERVICE_ERRORS)
            return repr(exc)

    def _finish_job(self, net: Net, i: int, keys: List[Optional[str]],
                    started: List[float],
                    results: List[Optional[ServiceResult]],
                    outcome: Any) -> None:
        """Record one job's outcome: payload dict = success (cached for
        next time), string = error message."""
        self._record(metric.SERVICE_JOBS)
        if isinstance(outcome, str):
            results[i] = self._error_result(net, started[i], outcome)
            return
        self._record_series(metric.SERVICE_JOB_LATENCY_S,
                            outcome.get("engine_wall_s", 0.0))
        key = keys[i]
        if key is not None:
            self.cache.put(key, outcome)
        results[i] = self._from_payload(net, outcome, cached=False,
                                        started=started[i])

    def _resolve_duplicate(self, net: Net, i: int,
                           keys: List[Optional[str]], started: List[float],
                           results: List[Optional[ServiceResult]]) -> None:
        """Answer a within-batch canonical twin from the entry its
        primary just cached (or mirror the primary's failure)."""
        key = keys[i]
        payload = self.cache.get(key) if key is not None else None
        if payload is not None:
            self._record(metric.SERVICE_CACHE_HITS)
            results[i] = self._from_payload(net, payload, cached=True,
                                            started=started[i])
            return
        primary = next((r for j, r in enumerate(results)
                        if r is not None and keys[j] == key and r.error),
                       None)
        error = primary.error if primary is not None \
            else "canonically identical job in this batch failed"
        self._record(metric.SERVICE_ERRORS)
        results[i] = self._error_result(net, started[i], error)

    # -- result assembly ------------------------------------------------

    def _from_payload(self, net: Net, payload: Dict[str, Any], cached: bool,
                      started: float) -> ServiceResult:
        """Rebuild a tree-bearing result in ``net``'s coordinate frame."""
        sx, sy = payload["source"]
        offset = (net.source.x - sx, net.source.y - sy)
        tree = tree_from_dict(payload["tree"], net, self.tech.buffers,
                              offset=offset)
        return ServiceResult(
            net_name=net.name,
            ok=True,
            cached=cached,
            elapsed_s=time.perf_counter() - started,
            signature=tree_signature(tree),
            cost=payload["cost"],
            iterations=payload["iterations"],
            converged=payload["converged"],
            tree=tree,
            evaluation=payload["evaluation"],
        )

    def _error_result(self, net: Net, started: float,
                      error: str) -> ServiceResult:
        return ServiceResult(
            net_name=net.name,
            ok=False,
            cached=False,
            elapsed_s=time.perf_counter() - started,
            error=error,
        )

    # -- recorder (thread-safe wrappers) --------------------------------

    def _record(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.recorder.incr(name, n)

    def _record_series(self, name: str, value: float) -> None:
        with self._lock:
            self.recorder.record(name, value)


def optimize_many(nets: Sequence[Net], tech: Optional[Technology] = None,
                  config: Optional[MerlinConfig] = None,
                  objective: Optional[Objective] = None,
                  workers: Optional[int] = None,
                  cache: Optional[ResultCache] = None,
                  timeout_s: Optional[float] = None) -> List[ServiceResult]:
    """One-shot convenience: optimize ``nets`` through a transient
    :class:`OptimizationService` (spawn pool, stream jobs, shut down).

    Long-running callers should hold an :class:`OptimizationService` of
    their own so the pool and cache stay warm across batches.
    """
    with OptimizationService(tech=tech, config=config, objective=objective,
                             cache=cache, workers=workers) as service:
        return service.optimize_many(nets, timeout_s=timeout_s)
