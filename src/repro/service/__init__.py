"""The net-optimization service layer: batching, caching, serving.

Turns the one-shot MERLIN engine into a long-lived multi-net service:

* :mod:`repro.service.canonical` — canonical net signatures (translation/
  rename-normalized geometry + tech/config/objective fingerprints);
* :mod:`repro.service.cache` — :class:`ResultCache`, an in-memory LRU
  with an optional on-disk JSON tier, keyed by canonical signature;
* :mod:`repro.service.engine` — :class:`OptimizationService` /
  :func:`optimize_many`, the warm-process-pool batch engine with per-job
  timeout, error isolation, and serial degradation;
* :mod:`repro.service.protocol` — the versioned v1 wire surface
  (envelope, error bodies, endpoint handlers) shared by every front end;
* :mod:`repro.service.http` — the stdlib sync HTTP front end behind
  ``merlin-repro serve`` (``POST /v1/optimize``, ``POST /v1/closure``,
  ``GET /v1/stats``, ``GET /v1/healthz``, plus deprecated pre-v1 shims);
  the async sharded front end lives in :mod:`repro.serve`.

Typical library use::

    from repro.service import OptimizationService

    with OptimizationService(workers=4) as service:
        results = service.optimize_many(nets)   # warm pool, cache-aware
        again = service.optimize(nets[0])       # cache hit, bit-identical
"""

from repro.service.cache import ResultCache
from repro.service.canonical import (
    canonical_key,
    canonical_request,
    technology_fingerprint,
)
from repro.service.engine import (
    OptimizationService,
    ServiceResult,
    optimize_many,
)
from repro.service.http import ServiceHTTPServer, make_server, serve
from repro.service.protocol import (
    API_VERSION,
    EndpointOutcome,
    envelope,
    legacy_body,
)

__all__ = [
    "ResultCache",
    "canonical_key",
    "canonical_request",
    "technology_fingerprint",
    "OptimizationService",
    "ServiceResult",
    "optimize_many",
    "ServiceHTTPServer",
    "make_server",
    "serve",
    "API_VERSION",
    "EndpointOutcome",
    "envelope",
    "legacy_body",
]
