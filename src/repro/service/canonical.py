"""Canonical net signatures: the cache key of the optimization service.

Two requests should share one cache entry exactly when the engine is
guaranteed to produce the same tree for both.  The engine is a
deterministic function of the *geometry relative to the source* (every
candidate generator, the TSP initial order, and the DP itself see only
pin coordinates, and all of them commute with translation), the sink
electrical attributes, the driver overrides, the technology, the
objective, and the optimization-relevant config knobs.  Net and sink
*names* and the absolute placement of the net on the die are labels, not
inputs — so the canonical form drops the names and normalizes positions
to source-relative coordinates, making translate/rename-equivalent nets
cache-equivalent.

Deliberately **excluded** from the config fingerprint:

* ``recorder`` — a measurement channel, not part of the problem;
* ``workers`` — pure scheduling, results are index-collected;
* the curve ``backend`` — the numpy and python kernels are bit-identical
  by contract (enforced by the bench equivalence gate), so a result
  computed on one backend is a valid cache hit for the other.

Floating-point caveat: source-relative coordinates are computed by
subtraction, so the same net translated by a non-representable amount
picks up last-ulp noise.  Relative coordinates are therefore quantized
to :data:`COORD_DECIMALS` decimal places before hashing — far below any
geometric resolution the engine distinguishes (the tree signature itself
prints positions at three decimals), but coarse enough to absorb the
subtraction noise.  Two genuinely different nets whose pins agree to
1e-6 units would falsely collide; at the die coordinates used here that
is sub-atomic.  A value sitting exactly on a rounding boundary may still
split — that is safe (a miss just re-runs the engine).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.net import Net
from repro.tech.io import technology_to_dict
from repro.tech.technology import Technology

#: Bump when the canonical schema changes so stale disk caches miss
#: cleanly instead of replaying results computed under old semantics.
CANONICAL_VERSION = 1

#: Decimal places kept in source-relative coordinates (see module
#: docstring for why geometry — and only geometry — is quantized).
COORD_DECIMALS = 6


def canonical_net_dict(net: Net) -> Dict[str, Any]:
    """The name-free, translation-normalized form of ``net``.

    Sink order is preserved: the engine's default initial order (TSP) is
    deterministic in geometry, but callers may pass pre-ordered sinks and
    two different sink orders genuinely are two different requests.
    """
    sx, sy = float(net.source.x), float(net.source.y)
    # Everything numeric is forced to float so a net built with int
    # coordinates and its float twin (e.g. after a JSON round trip)
    # serialize identically ("891" vs "891.0" would split the key).
    # Relative coordinates are additionally quantized to absorb the
    # subtraction noise of translated frames; electrical attributes are
    # copied through untouched, so they compare exactly.
    canonical: Dict[str, Any] = {
        "sinks": [
            [round(float(s.position.x) - sx, COORD_DECIMALS),
             round(float(s.position.y) - sy, COORD_DECIMALS),
             float(s.load), float(s.required_time)]
            for s in net.sinks
        ],
    }
    if net.driver_resistance is not None:
        canonical["driver_resistance"] = float(net.driver_resistance)
    if net.driver_intrinsic is not None:
        canonical["driver_intrinsic"] = float(net.driver_intrinsic)
    return canonical


def config_fingerprint_dict(config: MerlinConfig) -> Dict[str, Any]:
    """The optimization-relevant knobs of ``config`` as plain data."""
    return {
        "alpha": config.alpha,
        "candidate_strategy": config.candidate_strategy.name,
        "max_candidates": config.max_candidates,
        "curve": {
            "load_step": config.curve.load_step,
            "area_step": config.curve.area_step,
            "max_solutions": config.curve.max_solutions,
        },
        "library_subset": config.library_subset,
        "relocation_rounds": config.relocation_rounds,
        "max_iterations": config.max_iterations,
        "enable_bubbling": config.enable_bubbling,
        "active_margin_frac": config.active_margin_frac,
        "wire_width_options": list(config.wire_width_options),
    }


def objective_fingerprint_dict(objective: Objective) -> Dict[str, Any]:
    """The selection rule as plain data (infinities JSON-safe as strings)."""
    def _finite(value: float) -> Any:
        return value if value == value and abs(value) != float("inf") \
            else repr(value)

    return {
        "kind": objective.kind,
        "area_budget": _finite(objective.area_budget),
        "required_time_floor": _finite(objective.required_time_floor),
        "tradeoff_tolerance": objective.tradeoff_tolerance,
    }


def technology_fingerprint(tech: Technology) -> str:
    """Stable digest of the full technology bundle (library included)."""
    return _digest(technology_to_dict(tech))


def canonical_request(net: Net, tech: Technology, config: MerlinConfig,
                      objective: Objective,
                      tech_fingerprint_hex: Optional[str] = None,
                      ) -> Dict[str, Any]:
    """The complete canonical request record (hashed by
    :func:`canonical_key`; exposed separately for debugging cache
    behavior — two requests collide iff these dicts are equal).

    ``tech_fingerprint_hex`` lets long-lived callers (the optimization
    service, the async sharding front end) pass a precomputed
    :func:`technology_fingerprint` instead of re-serializing the whole
    buffer library on every request — the dominant cost of key
    construction for small nets.
    """
    return {
        "version": CANONICAL_VERSION,
        "net": canonical_net_dict(net),
        "tech": tech_fingerprint_hex or technology_fingerprint(tech),
        "config": config_fingerprint_dict(config),
        "objective": objective_fingerprint_dict(objective),
    }


def canonical_key(net: Net, tech: Technology, config: MerlinConfig,
                  objective: Optional[Objective] = None,
                  tech_fingerprint_hex: Optional[str] = None) -> str:
    """SHA-256 hex key identifying this request up to translation/rename."""
    objective = objective or Objective.max_required_time()
    return _digest(canonical_request(
        net, tech, config, objective,
        tech_fingerprint_hex=tech_fingerprint_hex))


def _digest(data: Any) -> str:
    # repr-based float serialization (json default) is deterministic for
    # identical bit patterns, which is exactly the equality we want.
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
