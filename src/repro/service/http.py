"""Stdlib HTTP front end for the optimization service (sync, threaded).

``merlin-repro serve --port N`` exposes a long-lived
:class:`~repro.service.engine.OptimizationService` over the **v1 API**
(see ``API.md`` and :mod:`repro.service.protocol`, where the wire
surface is actually defined — this module is transport only):

* ``POST /v1/optimize`` — body is a net JSON object (the
  :func:`repro.net.net_from_dict` schema, optionally wrapped as
  ``{"net": {...}}``); the envelope's ``result`` is the
  :meth:`~repro.service.engine.ServiceResult.to_dict` body: the tree
  (``repro.routing.export`` schema), its signature, the evaluation, and
  the ``cached`` flag.  Per-request ``{"timeout_s": ...}`` is honored.
* ``POST /v1/closure`` — full-netlist timing closure through the shared
  service (warm pool and cache included).  Body selects the circuit —
  ``{"circuit": "b9", "seed": 1999}`` (a Table 2 name or a custom
  ``"gates:levels:pis:pos[:max_fanout]"`` shape) or an inline
  ``{"netlist": {...}}`` interchange object — plus optional closure
  knobs ``order`` / ``batch_size`` / ``max_iterations`` /
  ``target_scale`` / ``min_sinks`` and ``include_trees``.
* ``GET /v1/stats`` — cache hit/miss counters and the request-latency
  series recorded through :mod:`repro.instrument`.
* ``GET /v1/healthz`` — liveness probe.

Every ``/v1/*`` response — including 404s for unknown paths — is the
uniform envelope ``{api_version, request_id, result, error, degraded,
timing_ms}``; failures map the error taxonomy onto status codes (400
input / 429 admission / 503 resource / 500 internal) with a structured
``error`` body.  The pre-v1 paths (``/optimize`` etc.) remain as
deprecated shims: same handlers, historical response shape, plus a
``Deprecation: true`` header and a ``service.http.legacy_path`` counter.

Built on ``http.server.ThreadingHTTPServer`` only (no third-party web
stack): each request runs in its own thread, the service object is
shared, and everything inside it is thread-safe.  This is the simple
single-pool front end; :mod:`repro.serve` is the async sharded one, and
both speak bit-identically through :mod:`repro.service.protocol`.  This
is a reproduction-scale serving layer, not a hardened internet-facing
one — run it behind a real proxy if you must expose it.

Example::

    curl -s -X POST localhost:8731/v1/optimize -d '{
      "name": "demo", "source": [0, 0],
      "sinks": [{"name": "a", "position": [900, 300],
                 "load": 12.0, "required_time": 900.0}]}'
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.instrument import names as metric
from repro.resilience.errors import (
    MerlinInputError,
    ServerDrainingError,
    classify,
)
from repro.service import protocol
from repro.service.engine import OptimizationService
from repro.service.protocol import MAX_BODY_BYTES  # noqa: F401 (re-export)

#: ``Retry-After`` hint on drain refusals (seconds) — long enough for a
#: supervisor to restart or reroute, short enough not to stall clients.
DRAIN_RETRY_AFTER_S = 1.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning one shared optimization service.

    Supports graceful shutdown: :meth:`drain` flips the server into
    draining mode (new work answers **503** + ``Retry-After`` while
    probes keep working), waits for in-flight requests to finish, and
    flushes the service cache's memory tier to disk so nothing computed
    since the last write is lost.
    """

    #: Handler threads die with the process; no lingering shutdown waits.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: OptimizationService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.draining = False
        self._in_flight = 0
        self._flight_lock = threading.Lock()

    # -- in-flight accounting (called from handler threads) --------------

    def _enter_request(self) -> None:
        with self._flight_lock:
            self._in_flight += 1

    def _exit_request(self) -> None:
        with self._flight_lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._flight_lock:
            return self._in_flight

    def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Stop accepting work, wait out in-flight requests (bounded by
        ``timeout_s``), flush the cache; returns a drain report."""
        self.draining = True
        deadline = time.monotonic() + timeout_s
        while self.in_flight > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        flushed = self.service.cache.flush() \
            if self.service.cache is not None else 0
        return {"in_flight": self.in_flight, "flushed": flushed,
                "drained": self.in_flight == 0}


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    #: Quiet by default; ``merlin-repro serve --verbose`` re-enables.
    verbose = False

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        self._handle("POST")

    def _handle(self, method: str) -> None:
        self.server._enter_request()
        try:
            self._handle_tracked(method)
        finally:
            self.server._exit_request()

    def _handle_tracked(self, method: str) -> None:
        service = self.server.service
        started = time.perf_counter()
        is_v1, endpoint, is_legacy = protocol.split_path(self.path)
        if is_legacy:
            service._record(metric.SERVICE_HTTP_LEGACY_PATH)
        outcome: Optional[protocol.EndpointOutcome] = None
        body: Any = None
        if self.server.draining and method == "POST" \
                and endpoint is not None:
            # Probes (healthz/stats) keep answering during the drain;
            # new *work* is refused so in-flight jobs can finish.
            service._record(metric.SERVE_DRAIN_REFUSALS)
            exc = ServerDrainingError(
                "server is draining for shutdown; retry another replica",
                stage="http")
            record = classify(exc, stage="http")
            outcome = protocol.EndpointOutcome(
                protocol.status_for(record), None, record,
                retry_after_s=DRAIN_RETRY_AFTER_S)
        elif method == "POST" and endpoint is not None:
            try:
                body = protocol.parse_json_bytes(self._read_raw())
            except MerlinInputError as exc:
                service._record(metric.SERVICE_ERRORS)
                outcome = protocol.EndpointOutcome(
                    400, None, classify(exc, stage="http"))
        if outcome is None:
            outcome = protocol.dispatch(service, method, endpoint, body,
                                        path=self.path)
        if is_v1 or endpoint is None:
            # Unknown paths always answer in the v1 envelope, whatever
            # prefix the client used — a structured 404, never a bare one.
            payload = protocol.envelope(
                outcome, protocol.new_request_id(),
                protocol.timing_ms_since(started))
        else:
            payload = protocol.legacy_body(outcome)
        self._reply(outcome.status, payload, deprecated=is_legacy,
                    retry_after_s=outcome.retry_after_s)

    # -- plumbing -------------------------------------------------------

    def _read_raw(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            # Refuse before reading; protocol.parse_json_bytes re-checks
            # for front ends that buffer first.
            raise MerlinInputError(
                f"request body exceeds {MAX_BODY_BYTES} bytes",
                stage="http")
        return self.rfile.read(length)

    def _reply(self, status: int, payload: Dict[str, Any], *,
               deprecated: bool = False,
               retry_after_s: Optional[float] = None) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        if deprecated:
            self.send_header("Deprecation", "true")
        if retry_after_s is not None:
            self.send_header("Retry-After",
                             str(max(1, math.ceil(retry_after_s))))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.verbose:
            super().log_message(fmt, *args)


def make_server(service: OptimizationService, host: str = "127.0.0.1",
                port: int = 0) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks a free one; see ``server_port``).

    The caller drives ``serve_forever()`` — typically on a thread in
    tests, or via :func:`serve` from the CLI — and owns ``service``'s
    lifetime.
    """
    return ServiceHTTPServer((host, port), service)


def serve(host: str, port: int, service: Optional[OptimizationService] = None,
          verbose: bool = False, drain_timeout_s: float = 30.0) -> None:
    """Blocking entry point behind ``merlin-repro serve``.

    SIGTERM triggers a graceful drain: in-flight requests run to
    completion (bounded by ``drain_timeout_s``), new work gets **503**
    + ``Retry-After``, the cache's memory tier is flushed to disk, and
    only then does the listener close.  Ctrl-C stays immediate.
    """
    service = service or OptimizationService()
    _Handler.verbose = verbose
    server = make_server(service, host, port)

    def _on_sigterm(signum: int, frame: Any) -> None:
        # serve_forever() blocks this (main) thread, so the drain runs
        # on its own thread and then unblocks us via shutdown().
        def _drain_and_stop() -> None:
            report = server.drain(timeout_s=drain_timeout_s)
            print(f"drained: in_flight={report['in_flight']} "
                  f"flushed={report['flushed']}")
            server.shutdown()

        threading.Thread(target=_drain_and_stop,
                         name="merlin-drain", daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # Not the main thread (embedded/test use): drain() is still
        # available to the owner, only the signal hook is skipped.
        pass
    print(f"merlin-repro service listening on http://{host}:"
          f"{server.server_port}  (POST /v1/optimize, POST /v1/closure, "
          f"GET /v1/stats, GET /v1/healthz; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
