"""Stdlib HTTP front end for the optimization service.

``merlin-repro serve --port N`` exposes a long-lived
:class:`~repro.service.engine.OptimizationService` over three endpoints:

* ``POST /optimize`` — body is a net JSON object (the
  :func:`repro.net.net_from_dict` schema, optionally wrapped as
  ``{"net": {...}}``); the response is the
  :meth:`~repro.service.engine.ServiceResult.to_dict` body: the tree
  (``repro.routing.export`` schema), its signature, the evaluation, and
  the ``cached`` flag.  Per-request ``{"timeout_s": ...}`` is honored.
  Failures map the error taxonomy onto status codes: malformed input is
  400, transient resource exhaustion (timeout, dead pool) is 503, and
  internal errors are 500 — every error body carries the structured
  ``error_detail`` record (kind / category / stage).
* ``POST /closure`` — full-netlist timing closure through the shared
  service (warm pool and cache included).  Body selects the circuit —
  ``{"circuit": "b9", "seed": 1999}`` (a Table 2 name or a custom
  ``"gates:levels:pis:pos[:max_fanout]"`` shape) or an inline
  ``{"netlist": {...}}`` interchange object — plus optional closure
  knobs ``order`` / ``batch_size`` / ``max_iterations`` /
  ``target_scale`` / ``min_sinks`` and ``include_trees``.  The response
  is the :meth:`repro.pipeline.ClosureResult.to_dict` report (one entry
  per iteration, final delay/slack/area, per-net tree signatures).
* ``GET /stats`` — cache hit/miss counters and the request-latency
  series recorded through :mod:`repro.instrument`.
* ``GET /healthz`` — liveness probe.

Built on ``http.server.ThreadingHTTPServer`` only (no third-party web
stack): each request runs in its own thread, the service object is
shared, and everything inside it is thread-safe.  This is a
reproduction-scale serving layer, not a hardened internet-facing one —
run it behind a real proxy if you must expose it.

Example::

    curl -s -X POST localhost:8731/optimize -d '{
      "name": "demo", "source": [0, 0],
      "sinks": [{"name": "a", "position": [900, 300],
                 "load": 12.0, "required_time": 900.0}]}'
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.instrument import names as metric
from repro.net import net_from_dict
from repro.resilience.errors import classify
from repro.resilience.faults import FaultInjected, fault_point
from repro.service.engine import OptimizationService

#: Request bodies above this size are rejected outright (a net of tens of
#: thousands of sinks is far beyond what the DP can serve anyway).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: HTTP status per error-taxonomy category: the client's fault is 400,
#: a transient capacity problem (timeout, dead pool, exhausted budget
#: that could not even degrade) is 503 retry-later, everything else is
#: an honest 500.
_STATUS_BY_CATEGORY = {
    "input": 400,
    "resource": 503,
    "internal": 500,
}


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning one shared optimization service."""

    #: Handler threads die with the process; no lingering shutdown waits.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: OptimizationService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    #: Quiet by default; ``merlin-repro serve --verbose`` re-enables.
    verbose = False

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        service = self.server.service
        if self.path == "/healthz":
            service._record(metric.service_endpoint_requests("healthz"))
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            service._record(metric.service_endpoint_requests("stats"))
            self._reply(200, service.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path == "/closure":
            self._do_closure()
            return
        if self.path != "/optimize":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        service = self.server.service
        service._record(metric.service_endpoint_requests("optimize"))
        try:
            fault_point("service.http", key=self.path)
        except FaultInjected as exc:
            service._record(metric.SERVICE_ERRORS)
            self._reply(500, {"error": str(exc),
                              "error_detail": exc.record.to_dict()})
            return
        try:
            body = self._read_body()
        except ValueError as exc:
            service._record(metric.SERVICE_ERRORS)
            self._reply(400, {"error": str(exc),
                              "error_detail": classify(
                                  exc, stage="http").to_dict()})
            return
        try:
            net_data = body.get("net", body) if isinstance(body, dict) \
                else body
            net = net_from_dict(net_data)
        except (ValueError, TypeError, AttributeError) as exc:
            # MalformedNetError carries the offending field in its
            # message; surface it verbatim so clients can fix the input.
            service._record(metric.SERVICE_ERRORS)
            self._reply(400, {"error": f"invalid net payload: {exc}",
                              "error_detail": classify(
                                  exc, stage="net").to_dict()})
            return
        timeout_s = body.get("timeout_s") if isinstance(body, dict) else None
        result = service.optimize(net, timeout_s=timeout_s)
        status = 200 if result.ok else _STATUS_BY_CATEGORY.get(
            result.error_category or "internal", 500)
        self._reply(status, result.to_dict())

    def _do_closure(self) -> None:
        """``POST /closure``: timing closure through the shared service.

        The pipeline import is deferred to request time — ``pipeline``
        and ``service`` share a layer, and the lazy edge keeps the HTTP
        module importable without dragging the whole closure stack in.
        """
        from repro.pipeline import ClosureConfig, run_closure
        from repro.resilience.errors import MerlinInputError

        service = self.server.service
        service._record(metric.service_endpoint_requests("closure"))
        try:
            fault_point("service.http", key=self.path)
        except FaultInjected as exc:
            service._record(metric.SERVICE_ERRORS)
            self._reply(500, {"error": str(exc),
                              "error_detail": exc.record.to_dict()})
            return
        try:
            body = self._read_body()
            if not isinstance(body, dict):
                raise ValueError("closure request body must be a JSON "
                                 "object")
            netlist = _closure_netlist(body)
            closure = ClosureConfig(
                order=str(body.get("order", "criticality")),
                min_sinks=int(body.get("min_sinks", 2)),
                target_scale=float(body.get("target_scale", 0.88)),
                batch_size=(None if body.get("batch_size") is None
                            else int(body["batch_size"])),
                max_iterations=int(body.get("max_iterations", 10)),
            )
        except (ValueError, TypeError, KeyError, MerlinInputError) as exc:
            service._record(metric.SERVICE_ERRORS)
            self._reply(400, {"error": f"invalid closure request: {exc}",
                              "error_detail": classify(
                                  exc, stage="http").to_dict()})
            return
        try:
            result = run_closure(netlist, closure=closure, service=service)
        except MerlinInputError as exc:
            service._record(metric.SERVICE_ERRORS)
            self._reply(400, {"error": str(exc),
                              "error_detail": classify(
                                  exc, stage="pipeline").to_dict()})
            return
        except Exception as exc:  # noqa: BLE001 — honest 500, not a hang
            service._record(metric.SERVICE_ERRORS)
            self._reply(500, {"error": f"closure failed: {exc}",
                              "error_detail": classify(
                                  exc, stage="pipeline").to_dict()})
            return
        self._reply(200, result.to_dict(
            include_trees=bool(body.get("include_trees", False))))

    # -- plumbing -------------------------------------------------------

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ValueError("empty request body (expected net JSON)")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, fmt: str, *args: Any) -> None:
        if self.verbose:
            super().log_message(fmt, *args)


def _closure_netlist(body: Dict[str, Any]):
    """Resolve a closure request body to a placed-ready ``Netlist``."""
    from repro.experiments.circuits import resolve_circuit_spec
    from repro.netlist.generator import generate_circuit
    from repro.netlist.io import netlist_from_dict

    if isinstance(body.get("netlist"), dict):
        return netlist_from_dict(body["netlist"])
    circuit = body.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise ValueError("closure request needs a 'circuit' name/shape "
                         "or an inline 'netlist' object")
    seed = int(body.get("seed", 1999))
    return generate_circuit(resolve_circuit_spec(circuit, seed))


def make_server(service: OptimizationService, host: str = "127.0.0.1",
                port: int = 0) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks a free one; see ``server_port``).

    The caller drives ``serve_forever()`` — typically on a thread in
    tests, or via :func:`serve` from the CLI — and owns ``service``'s
    lifetime.
    """
    return ServiceHTTPServer((host, port), service)


def serve(host: str, port: int, service: Optional[OptimizationService] = None,
          verbose: bool = False) -> None:
    """Blocking entry point behind ``merlin-repro serve``."""
    service = service or OptimizationService()
    _Handler.verbose = verbose
    server = make_server(service, host, port)
    print(f"merlin-repro service listening on http://{host}:"
          f"{server.server_port}  (POST /optimize, POST /closure, "
          f"GET /stats, GET /healthz; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
