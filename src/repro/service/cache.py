"""The canonical-net result cache: in-memory LRU plus optional disk tier.

Values are the picklable/JSON-able result payloads produced by the batch
engine (:mod:`repro.service.engine`): the tree exported in
source-relative coordinates, the evaluation, and the scalar outcome.
Keys are :func:`repro.service.canonical.canonical_key` digests, so a hit
means "the engine is guaranteed to produce this exact answer" and the
DP is skipped entirely.

The memory tier is a plain ``OrderedDict`` LRU guarded by one lock — the
HTTP front end serves from many threads.  The optional disk tier writes
one ``<key>.json`` file per entry under ``disk_dir`` and never evicts;
memory misses fall through to disk and promote back on hit, so a
restarted service warms itself from its own history.  Disk writes are
atomic (temp file + rename) so a killed process can't leave a torn
entry behind.

Disk entries are hardened (schema version 2):

* every entry carries a SHA-256 **checksum** of its payload, so a torn,
  truncated, or bit-rotted file is *detected*, not replayed;
* a corrupt entry is **quarantined** — moved into ``disk_dir/quarantine/``
  for post-mortems instead of deleted — and the read degrades to a
  clean miss (the engine recomputes and overwrites);
* a **schema-version** mismatch (an old cache) is a plain miss, not a
  corruption: old caches age out instead of crashing or raising alarms;
* corruption and quarantine counts surface in :meth:`stats` (and so in
  ``GET /stats``) and in the ``resilience.cache.*`` metrics when a
  recorder is attached.

Chaos hooks: reads and writes pass through the
``service.cache.read`` / ``service.cache.write`` fault points, so the
chaos suite can inject torn entries without touching the filesystem.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.instrument import names as metric
from repro.instrument.recorder import Recorder
from repro.resilience.errors import MerlinInputError
from repro.resilience.faults import fault_point

#: Payload schema version stored in every disk entry; mismatches are
#: treated as misses so old caches age out instead of crashing.
#: Version 2 added the payload checksum.
PAYLOAD_VERSION = 2

#: Subdirectory of ``disk_dir`` corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"


def payload_checksum(payload: Dict[str, Any]) -> str:
    """Canonical SHA-256 digest of a payload (sorted-key JSON)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """LRU result cache with an optional persistent JSON tier."""

    def __init__(self, capacity: int = 256,
                 disk_dir: Optional[str] = None,
                 recorder: Optional[Recorder] = None) -> None:
        if capacity < 1:
            raise MerlinInputError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        #: Optional metrics sink for the ``resilience.cache.*`` counters;
        #: the owning service attaches its own recorder here.
        self.recorder = recorder
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._evictions = 0
        self._corruptions = 0
        self._quarantined = 0
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the payload stored under ``key`` or None on a miss.

        Payloads are deep-copied on the way out so callers can mutate
        their copy without corrupting the cache (and so a memory hit and
        a disk hit are indistinguishable to the caller).
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return copy.deepcopy(payload)
        payload = self._read_disk(key)
        with self._lock:
            if payload is not None:
                self._hits += 1
                self._disk_hits += 1
                self._store(key, payload)
                return copy.deepcopy(payload)
            self._misses += 1
            return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (memory, then disk when on)."""
        payload = copy.deepcopy(payload)
        with self._lock:
            self._store(key, payload)
        self._write_disk(key, payload)

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._entries.clear()

    def flush(self) -> int:
        """Write every memory-tier entry missing on disk to the disk tier.

        The drain path calls this before shutdown so answers computed
        since the last disk write survive the restart.  Returns the
        number of entries written (0 without a disk tier — the memory
        tier alone cannot outlive the process anyway).
        """
        if self.disk_dir is None:
            return 0
        with self._lock:
            entries = [(key, copy.deepcopy(payload))
                       for key, payload in self._entries.items()]
        flushed = 0
        for key, payload in entries:
            if os.path.exists(self._disk_path(key)):
                continue
            self._write_disk(key, payload)
            flushed += 1
        if flushed:
            with self._lock:
                recorder = self.recorder
            if recorder is not None:
                recorder.incr(metric.RESILIENCE_CACHE_FLUSHED, flushed)
        return flushed

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for ``GET /stats`` and the bench harness."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "corruptions": self._corruptions,
                "quarantined": self._quarantined,
                "disk_dir": self.disk_dir,
            }

    # -- internals (callers hold self._lock where noted) ----------------

    def _store(self, key: str, payload: Dict[str, Any]) -> None:
        """Insert under LRU discipline; caller holds the lock."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.json")

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        if self.disk_dir is None:
            return None
        try:
            with open(self._disk_path(key), "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return None
        raw = fault_point("service.cache.read", data=raw, key=key)
        try:
            entry = json.loads(raw)
        except ValueError:
            return self._quarantine(key, "entry is not valid JSON")
        if not isinstance(entry, dict):
            return self._quarantine(key, "entry is not a JSON object")
        if entry.get("version") != PAYLOAD_VERSION:
            # A different schema is an *old* cache, not a broken one:
            # miss cleanly and let the next put overwrite it.
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return self._quarantine(key, "entry has no payload object")
        if entry.get("checksum") != payload_checksum(payload):
            return self._quarantine(key, "payload checksum mismatch")
        return payload

    def _quarantine(self, key: str, why: str) -> None:
        """Move a corrupt entry aside and account for it; returns None
        so corrupt reads look like plain misses to the caller."""
        moved = False
        try:
            quarantine_dir = os.path.join(self.disk_dir, QUARANTINE_DIR)
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(self._disk_path(key),
                       os.path.join(quarantine_dir, f"{key}.json"))
            moved = True
        except OSError:
            # Quarantine is best-effort; the entry stays (and stays
            # detected) if the move fails on a read-only disk.
            pass
        with self._lock:
            self._corruptions += 1
            if moved:
                self._quarantined += 1
            recorder = self.recorder
            if recorder is not None:
                recorder.incr(metric.RESILIENCE_CACHE_CORRUPTIONS)
                if moved:
                    recorder.incr(metric.RESILIENCE_CACHE_QUARANTINED)
        return None

    def _write_disk(self, key: str, payload: Dict[str, Any]) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        blob = json.dumps({
            "version": PAYLOAD_VERSION,
            "checksum": payload_checksum(payload),
            "payload": payload,
        })
        blob = fault_point("service.cache.write", data=blob, key=key)
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            # Disk tier is best-effort: a full/read-only disk degrades the
            # cache to memory-only rather than failing the request.
            try:
                os.unlink(tmp)
            except OSError:
                pass
