"""The canonical-net result cache: in-memory LRU plus optional disk tier.

Values are the picklable/JSON-able result payloads produced by the batch
engine (:mod:`repro.service.engine`): the tree exported in
source-relative coordinates, the evaluation, and the scalar outcome.
Keys are :func:`repro.service.canonical.canonical_key` digests, so a hit
means "the engine is guaranteed to produce this exact answer" and the
DP is skipped entirely.

The memory tier is a plain ``OrderedDict`` LRU guarded by one lock — the
HTTP front end serves from many threads.  The optional disk tier writes
one ``<key>.json`` file per entry under ``disk_dir`` and never evicts;
memory misses fall through to disk and promote back on hit, so a
restarted service warms itself from its own history.  Disk writes are
atomic (temp file + rename) so a killed process can't leave a torn
entry behind.
"""

from __future__ import annotations

import copy
import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

#: Payload schema version stored in every disk entry; mismatches are
#: treated as misses so old caches age out instead of crashing.
PAYLOAD_VERSION = 1


class ResultCache:
    """LRU result cache with an optional persistent JSON tier."""

    def __init__(self, capacity: int = 256,
                 disk_dir: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._evictions = 0
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the payload stored under ``key`` or None on a miss.

        Payloads are deep-copied on the way out so callers can mutate
        their copy without corrupting the cache (and so a memory hit and
        a disk hit are indistinguishable to the caller).
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return copy.deepcopy(payload)
        payload = self._read_disk(key)
        with self._lock:
            if payload is not None:
                self._hits += 1
                self._disk_hits += 1
                self._store(key, payload)
                return copy.deepcopy(payload)
            self._misses += 1
            return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (memory, then disk when on)."""
        payload = copy.deepcopy(payload)
        with self._lock:
            self._store(key, payload)
        self._write_disk(key, payload)

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for ``GET /stats`` and the bench harness."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "evictions": self._evictions,
                "disk_dir": self.disk_dir,
            }

    # -- internals (callers hold self._lock where noted) ----------------

    def _store(self, key: str, payload: Dict[str, Any]) -> None:
        """Insert under LRU discipline; caller holds the lock."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, f"{key}.json")

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        if self.disk_dir is None:
            return None
        try:
            with open(self._disk_path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) \
                or entry.get("version") != PAYLOAD_VERSION:
            return None
        return entry.get("payload")

    def _write_disk(self, key: str, payload: Dict[str, Any]) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"version": PAYLOAD_VERSION, "payload": payload},
                          handle)
            os.replace(tmp, path)
        except OSError:
            # Disk tier is best-effort: a full/read-only disk degrades the
            # cache to memory-only rather than failing the request.
            try:
                os.unlink(tmp)
            except OSError:
                pass
