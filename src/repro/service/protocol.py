"""The versioned v1 service protocol, shared by every HTTP front end.

This module is the single definition of the service's wire surface: the
sync threading server (:mod:`repro.service.http`) and the async sharded
front end (:mod:`repro.serve`) both parse requests, run endpoints, and
render bodies through the functions here, so the two paths cannot drift
apart — the v1 schema tests pin *this* module and both servers inherit
the guarantee.

**The v1 envelope.**  Every ``/v1/*`` response is one JSON object::

    {
      "api_version": "v1",
      "request_id":  "<per-process unique id>",
      "result":      {...} | null,     # endpoint payload on success
      "error":       {...} | null,     # uniform error body on failure
      "degraded":    false,            # degradation-ladder fallback?
      "timing_ms":   1.234             # server-side handling time
    }

Exactly one of ``result``/``error`` is non-null.  The error body is a
uniform projection of the :mod:`repro.resilience.errors` taxonomy::

    {"category": "input",           # input | resource | internal
     "code":     "malformed_net",   # snake_case of the MerlinError kind
     "message":  "...",
     "detail":   {kind, category, stage, message, degraded}}

Status codes follow the category — **400** input, **503** resource,
**500** internal — with two kind-specific overrides: a full admission
queue (``admission_rejected``) is **429** + ``Retry-After``, and an
unknown path (``unknown_path``) is **404**, also carried in the v1
envelope so clients never see an unstructured error.

**Legacy shims.**  The pre-v1 paths (``/optimize``, ``/closure``,
``/stats``, ``/healthz``) stay servable as thin shims: same endpoint
handlers, rendered through :func:`legacy_body` (the historical response
shape — the v1 envelope's ``result`` field, or the old
``{"error", "error_detail"}`` object), plus a ``Deprecation: true``
response header and one ``service.http.legacy_path`` counter tick per
request.  New clients should speak ``/v1/`` only.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.instrument import names as metric
from repro.net import net_from_dict
from repro.resilience.errors import (
    ErrorRecord,
    FaultInjected,
    MerlinInputError,
    UnknownPathError,
    classify,
)
from repro.resilience.faults import fault_point

#: The one supported API version; bump only with a new path prefix.
API_VERSION = "v1"

#: Path prefix of the versioned surface.
V1_PREFIX = f"/{API_VERSION}/"

#: Endpoints of the v1 surface, by (method, name).
ENDPOINTS = {
    ("POST", "optimize"),
    ("POST", "closure"),
    ("GET", "stats"),
    ("GET", "healthz"),
}

#: Pre-v1 paths kept alive as deprecated shims.
LEGACY_PATHS = ("/optimize", "/closure", "/stats", "/healthz")

#: Request bodies above this size are rejected outright (a net of tens of
#: thousands of sinks is far beyond what the DP can serve anyway).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: HTTP status per error-taxonomy category: the client's fault is 400,
#: a transient capacity problem (timeout, dead pool, exhausted budget
#: that could not even degrade) is 503 retry-later, everything else is
#: an honest 500.
STATUS_BY_CATEGORY = {
    "input": 400,
    "resource": 503,
    "internal": 500,
}

#: Kind-specific status overrides (checked before the category map).
STATUS_BY_KIND = {
    "AdmissionRejectedError": 429,
    "UnknownPathError": 404,
}

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

_request_counter = itertools.count(1)
_request_counter_lock = threading.Lock()


def new_request_id() -> str:
    """A process-unique request id (pid + monotone counter, no RNG —
    replayable logs stay diffable across identical runs)."""
    with _request_counter_lock:
        serial = next(_request_counter)
    return f"{os.getpid():x}-{serial:08x}"


def error_code(kind: str) -> str:
    """The wire ``code`` of a taxonomy kind: snake_case, no ``_error``
    suffix (``MalformedNetError`` -> ``malformed_net``)."""
    code = _CAMEL_BOUNDARY.sub("_", kind).lower()
    if code.endswith("_error"):
        code = code[: -len("_error")]
    return code


def status_for(record: ErrorRecord) -> int:
    """HTTP status of a failure record (kind override, else category)."""
    return STATUS_BY_KIND.get(
        record.kind, STATUS_BY_CATEGORY.get(record.category, 500))


def error_body(record: ErrorRecord) -> Dict[str, Any]:
    """The uniform v1 error object for one failure record."""
    return {
        "category": record.category,
        "code": error_code(record.kind),
        "message": record.message,
        "detail": record.to_dict(),
    }


@dataclass
class EndpointOutcome:
    """What one endpoint handler produced, before rendering.

    ``result`` is the *legacy-shaped* payload (also the v1 envelope's
    ``result`` field).  A failed service job keeps its legacy body in
    ``result`` (the old ``/optimize`` returned ``ServiceResult.to_dict``
    for failures too) while ``error`` carries the structured record; the
    v1 renderer nulls ``result`` whenever ``error`` is set.
    """

    status: int
    result: Optional[Dict[str, Any]]
    error: Optional[ErrorRecord] = None
    degraded: bool = False
    #: When set, front ends emit a ``Retry-After: <seconds>`` header.
    retry_after_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def envelope(outcome: EndpointOutcome, request_id: str,
             timing_ms: float) -> Dict[str, Any]:
    """Render an outcome as the v1 response envelope."""
    return {
        "api_version": API_VERSION,
        "request_id": request_id,
        "result": outcome.result if outcome.error is None else None,
        "error": (None if outcome.error is None
                  else error_body(outcome.error)),
        "degraded": outcome.degraded,
        "timing_ms": round(timing_ms, 3),
    }


def legacy_body(outcome: EndpointOutcome) -> Dict[str, Any]:
    """Render an outcome in the pre-v1 response shape."""
    if outcome.result is not None:
        return outcome.result
    record = outcome.error or ErrorRecord(
        kind="MerlinInternalError", category="internal", stage="http",
        message="handler produced neither result nor error")
    return {"error": record.message, "error_detail": record.to_dict()}


def split_path(path: str) -> Tuple[bool, Optional[str], bool]:
    """Classify a request path: ``(is_v1, endpoint_name, is_legacy)``.

    ``endpoint_name`` is None for paths no surface serves (the method
    check happens in :func:`dispatch`).
    """
    if path.startswith(V1_PREFIX):
        name = path[len(V1_PREFIX):]
        known = {endpoint for _, endpoint in ENDPOINTS}
        return True, (name if name in known else None), False
    if path in LEGACY_PATHS:
        return False, path[1:], True
    return False, None, False


def parse_json_bytes(raw: bytes) -> Any:
    """Decode a request body; raises :class:`MerlinInputError` with the
    historical messages on empty/oversized/non-JSON input."""
    if not raw:
        raise MerlinInputError("empty request body (expected net JSON)",
                               stage="http")
    if len(raw) > MAX_BODY_BYTES:
        raise MerlinInputError(
            f"request body exceeds {MAX_BODY_BYTES} bytes", stage="http")
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise MerlinInputError(
            f"request body is not valid JSON: {exc}", stage="http")


def _prefixed(record: ErrorRecord, prefix: str) -> ErrorRecord:
    return replace(record, message=f"{prefix}: {record.message}")


# -- endpoint handlers (blocking; called from handler threads or the ----
# -- async front end's shard executors) --------------------------------


def handle_optimize(service: Any, body: Any,
                    path: str = "/optimize",
                    brownout: bool = False) -> EndpointOutcome:
    """``POST optimize``: one net through the shared service.

    ``brownout=True`` (set by the async front end under sustained
    admission pressure) downgrades the job to the fast coarse preset
    via the degradation ladder instead of running at full quality — the
    answer is tagged ``degraded`` and never cached.
    """
    service._record(metric.service_endpoint_requests("optimize"))
    try:
        fault_point("service.http", key=path)
    except FaultInjected as exc:
        service._record(metric.SERVICE_ERRORS)
        return EndpointOutcome(500, None, exc.record)
    try:
        net_data = body.get("net", body) if isinstance(body, dict) else body
        net = net_from_dict(net_data)
    except (ValueError, TypeError, AttributeError) as exc:
        # MalformedNetError carries the offending field in its message;
        # surface it verbatim so clients can fix the input.
        service._record(metric.SERVICE_ERRORS)
        return EndpointOutcome(
            400, None,
            _prefixed(classify(exc, stage="net"), "invalid net payload"))
    timeout_s = body.get("timeout_s") if isinstance(body, dict) else None
    result = service.optimize(net, timeout_s=timeout_s, brownout=brownout)
    if result.ok:
        return EndpointOutcome(200, result.to_dict(),
                               degraded=result.degraded)
    record = result.error_record
    return EndpointOutcome(status_for(record), result.to_dict(), record)


def handle_closure(service: Any, body: Any,
                   path: str = "/closure") -> EndpointOutcome:
    """``POST closure``: full-netlist timing closure through the shared
    service.

    The pipeline import is deferred to request time — ``pipeline`` and
    ``service`` share a layer, and the lazy edge keeps the protocol
    module importable without dragging the whole closure stack in.
    """
    from repro.pipeline import ClosureConfig, run_closure

    service._record(metric.service_endpoint_requests("closure"))
    try:
        fault_point("service.http", key=path)
    except FaultInjected as exc:
        service._record(metric.SERVICE_ERRORS)
        return EndpointOutcome(500, None, exc.record)
    try:
        if not isinstance(body, dict):
            raise MerlinInputError(
                "closure request body must be a JSON object", stage="http")
        netlist = _closure_netlist(body)
        closure = ClosureConfig(
            order=str(body.get("order", "criticality")),
            min_sinks=int(body.get("min_sinks", 2)),
            target_scale=float(body.get("target_scale", 0.88)),
            batch_size=(None if body.get("batch_size") is None
                        else int(body["batch_size"])),
            max_iterations=int(body.get("max_iterations", 10)),
        )
    except (ValueError, TypeError, KeyError) as exc:
        service._record(metric.SERVICE_ERRORS)
        return EndpointOutcome(
            400, None,
            _prefixed(classify(exc, stage="http"),
                      "invalid closure request"))
    try:
        result = run_closure(netlist, closure=closure, service=service)
    except MerlinInputError as exc:
        service._record(metric.SERVICE_ERRORS)
        return EndpointOutcome(400, None, classify(exc, stage="pipeline"))
    except Exception as exc:  # noqa: BLE001 — honest 500, not a hang
        service._record(metric.SERVICE_ERRORS)
        return EndpointOutcome(
            500, None,
            _prefixed(classify(exc, stage="pipeline"), "closure failed"))
    return EndpointOutcome(200, result.to_dict(
        include_trees=bool(body.get("include_trees", False))))


def handle_stats(service: Any) -> EndpointOutcome:
    """``GET stats``: the service's counter/cache/latency snapshot."""
    service._record(metric.service_endpoint_requests("stats"))
    return EndpointOutcome(200, service.stats())


def handle_healthz(service: Any) -> EndpointOutcome:
    """``GET healthz``: liveness probe."""
    service._record(metric.service_endpoint_requests("healthz"))
    return EndpointOutcome(200, {"status": "ok"})


def handle_unknown(path: str, method: str = "GET") -> EndpointOutcome:
    """Any path/method combination no surface serves: a 404 that still
    speaks the uniform v1 error envelope."""
    record = UnknownPathError(
        f"unknown path {path!r} for {method}", stage="http").record
    return EndpointOutcome(404, None, record)


def dispatch(service: Any, method: str, endpoint: Optional[str],
             body: Any = None, path: Optional[str] = None,
             ) -> EndpointOutcome:
    """Route one parsed request to its endpoint handler.

    ``endpoint`` is the bare name from :func:`split_path` (None for
    unknown paths); ``path`` is the original request path, threaded into
    the fault-injection key so chaos plans can match on the exact URL
    the client used.
    """
    path = path if path is not None else f"/{endpoint}"
    if (method, endpoint) not in ENDPOINTS:
        return handle_unknown(path, method)
    if endpoint == "healthz":
        return handle_healthz(service)
    if endpoint == "stats":
        return handle_stats(service)
    if endpoint == "optimize":
        return handle_optimize(service, body, path)
    return handle_closure(service, body, path)


def _closure_netlist(body: Dict[str, Any]):
    """Resolve a closure request body to a placed-ready ``Netlist``."""
    from repro.experiments.circuits import resolve_circuit_spec
    from repro.netlist.generator import generate_circuit
    from repro.netlist.io import netlist_from_dict

    if isinstance(body.get("netlist"), dict):
        return netlist_from_dict(body["netlist"])
    circuit = body.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise MerlinInputError(
            "closure request needs a 'circuit' name/shape or an inline "
            "'netlist' object", stage="http")
    seed = int(body.get("seed", 1999))
    return generate_circuit(resolve_circuit_spec(circuit, seed))


def timing_ms_since(started_perf_counter: float) -> float:
    """Milliseconds elapsed since a ``time.perf_counter()`` mark."""
    return (time.perf_counter() - started_perf_counter) * 1000.0
