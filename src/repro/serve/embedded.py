"""Run front ends in-process, on background threads.

Tests, the load harness's ``--self-serve`` mode, and the CI smoke jobs
all need a bound, serving front end without shelling out: these context
managers own the thread/loop plumbing so call sites stay three lines.

::

    with EmbeddedAsyncServer(shards=4, workers=1) as server:
        report = run_workload(server.base_url, workload)

    with EmbeddedSyncServer(service) as server:
        MerlinClient(server.base_url).optimize(net)
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional, Sequence

from repro.service.engine import OptimizationService
from repro.service.http import make_server
from repro.serve.server import (
    DEFAULT_QUEUE_LIMIT,
    AsyncShardedServer,
    build_shard_services,
)


class EmbeddedAsyncServer:
    """An :class:`AsyncShardedServer` on a daemon event-loop thread.

    Pass ready-made ``services`` (their lifetime stays yours) or let the
    constructor build ``shards`` services from ``service_kwargs`` (then
    they are closed on exit).
    """

    def __init__(self, services: Optional[Sequence[OptimizationService]]
                 = None, shards: int = 2,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 host: str = "127.0.0.1",
                 breaker_config: Any = None,
                 supervise_interval_s: float = 0.25,
                 brownout_after: Optional[int] = None,
                 **service_kwargs: Any) -> None:
        self._owns_services = services is None
        if services is None:
            services = build_shard_services(shards, **service_kwargs)
        self.server = AsyncShardedServer(
            services, host=host, queue_limit=queue_limit,
            breaker_config=breaker_config,
            supervise_interval_s=supervise_interval_s,
            brownout_after=brownout_after)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._host = host

    def __enter__(self) -> "EmbeddedAsyncServer":
        started = threading.Event()
        failure: list = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except Exception as exc:  # pragma: no cover - bind failures
                failure.append(exc)
                started.set()
                return
            started.set()
            loop.run_forever()
            # Drain the stop() scheduled by __exit__ before closing.
            loop.run_until_complete(self.server.stop())
            loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="merlin-async-serve")
        self._thread.start()
        if not started.wait(timeout=30) or failure:
            raise RuntimeError(
                f"async server failed to start: {failure or 'timeout'}")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.server.close(close_services=self._owns_services)

    def drain(self, timeout_s: float = 30.0) -> dict:
        """Run the server's graceful drain from the caller's thread."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout_s=timeout_s), self._loop)
        return future.result(timeout=timeout_s + 30)

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self.server.port}"


class EmbeddedSyncServer:
    """The threading HTTP server on a daemon thread (same contract)."""

    def __init__(self, service: Optional[OptimizationService] = None,
                 host: str = "127.0.0.1", **service_kwargs: Any) -> None:
        self._owns_service = service is None
        self.service = service if service is not None \
            else OptimizationService(**service_kwargs)
        self._host = host
        self._server = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "EmbeddedSyncServer":
        self._server = make_server(self.service, host=self._host)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="merlin-sync-serve")
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=30)
        if self._owns_service:
            self.service.close()

    def drain(self, timeout_s: float = 30.0) -> dict:
        """Graceful drain (503 new work, wait in-flight, flush cache)."""
        assert self._server is not None
        return self._server.drain(timeout_s=timeout_s)

    @property
    def base_url(self) -> str:
        assert self._server is not None
        return f"http://{self._host}:{self._server.server_port}"
