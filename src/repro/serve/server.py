"""The asyncio sharded HTTP front end (``merlin-repro serve --async``).

Architecture — one event loop, N worker-pool shards::

    client -> asyncio.start_server -> admission control -> hash ring
                                                             |
                            +---------------+----------------+
                            v               v                v
                       shard 0         shard 1   ...    shard N-1
                    (ThreadPool +   (ThreadPool +     (ThreadPool +
                     OptimizationService, own LRU, shared disk tier)

* **Transport**: a deliberately small HTTP/1.1 server on
  ``asyncio.start_server`` (stdlib only, ``Connection: close``).  The
  event loop never runs engine work — it parses, routes, and awaits.
* **Admission control**: work-bearing endpoints (``optimize``,
  ``closure``) pass a bounded in-flight gate; beyond ``queue_limit``
  the request is rejected immediately with **429** + ``Retry-After``
  (estimated from the recent latency series) instead of queueing
  unboundedly.  Probes (``healthz``, ``stats``) bypass the gate so
  health stays observable under overload.
* **Sharding**: requests are routed by their canonical net signature
  (:meth:`OptimizationService.canonical_key_for`) over a consistent
  hash ring, so equivalent requests — renamed/translated twins
  included — always hit the same shard and its warm LRU.  Shards are
  plain :class:`OptimizationService` instances; each runs requests on
  its own small thread pool (the threads mostly wait on the engine's
  process pool or serve cache hits).
* **Tiered cache**: shard LRU (hot, per-shard) over an optional shared
  checksummed disk directory (warm, cross-shard) — pass ``disk_dir`` to
  :func:`build_shard_services`.  Keys agree byte-for-byte across tiers
  because both come from :mod:`repro.service.canonical`.
* **Degradation**: a shard marked down by the ``serve.shard`` fault
  site fails over to the next healthy shard on the ring (counted by
  ``serve.shard.failovers``); only when every shard is down does the
  client see a **503** ``shard_unavailable``.  The ``serve.admission``
  fault site forces 429s for chaos drills.

Endpoint semantics — parsing, handlers, envelopes, error bodies — come
from :mod:`repro.service.protocol`, the same module the sync front end
uses, which is why the two paths answer bit-identically (the engine is
deterministic, so even cross-shard answers match): the CI gate replays
one workload through both and diffs tree signatures.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import time
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.instrument import names as metric
from repro.instrument.recorder import Recorder
from repro.net import net_from_dict
from repro.resilience.errors import (
    AdmissionRejectedError,
    FaultInjected,
    MerlinInputError,
    ShardUnavailableError,
    classify,
)
from repro.resilience.faults import fault_point
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.engine import OptimizationService

#: Default bound on concurrently admitted work-bearing requests.
DEFAULT_QUEUE_LIMIT = 64

#: Default handler threads per shard (they wait on the engine's process
#: pool or serve cache hits, so a couple is plenty).
DEFAULT_SHARD_THREADS = 2

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def build_shard_services(
        shards: int,
        cache_capacity: int = 256,
        disk_dir: Optional[str] = None,
        service_factory: Optional[Callable[[ResultCache],
                                           OptimizationService]] = None,
        **service_kwargs: Any) -> List[OptimizationService]:
    """Construct ``shards`` identically-configured services.

    Each shard gets its own in-memory LRU; ``disk_dir`` (optional) is
    shared across all of them as the warm tier.  Extra keyword arguments
    go to :class:`OptimizationService` verbatim; ``service_factory``
    takes over construction entirely when the caller needs presets.
    """
    if shards < 1:
        raise MerlinInputError(f"need >= 1 shard, got {shards}")
    services = []
    for _ in range(shards):
        cache = ResultCache(capacity=cache_capacity, disk_dir=disk_dir)
        if service_factory is not None:
            services.append(service_factory(cache))
        else:
            services.append(OptimizationService(cache=cache,
                                                **service_kwargs))
    return services


class AsyncShardedServer:
    """Own the listener, the admission gate, the ring, and the shards.

    The caller owns the services' lifetime unless :meth:`close` is asked
    to shut them down (the blocking :func:`serve_async` does).
    """

    def __init__(self, services: Sequence[OptimizationService],
                 host: str = "127.0.0.1", port: int = 0,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 shard_threads: int = DEFAULT_SHARD_THREADS,
                 recorder: Optional[Recorder] = None) -> None:
        from repro.serve.sharding import ConsistentHashRing

        if not services:
            raise MerlinInputError("need at least one shard service")
        if queue_limit < 1:
            raise MerlinInputError(
                f"queue_limit must be >= 1, got {queue_limit}")
        fingerprints = {s.tech_fingerprint for s in services}
        if len(fingerprints) != 1:
            # Mixed technologies would make ring keys and shard cache
            # keys disagree — refuse loudly instead of mis-caching.
            raise MerlinInputError(
                "all shard services must share one technology "
                f"(got {len(fingerprints)} distinct fingerprints)")
        self.services = list(services)
        self.host = host
        self.queue_limit = queue_limit
        self._requested_port = port
        self._ring = ConsistentHashRing(len(self.services))
        self._executors = [
            ThreadPoolExecutor(max_workers=max(1, shard_threads),
                               thread_name_prefix=f"merlin-shard-{i}")
            for i in range(len(self.services))]
        self._in_flight = 0  # event-loop-confined; no lock needed
        self.recorder = recorder or Recorder()
        self._recorder_lock = Lock()  # executor threads record too
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self, close_services: bool = False) -> None:
        """Tear down executors (and optionally the shard services)."""
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)
        if close_services:
            for service in self.services:
                service.close()

    # -- transport ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, raw = parsed
            status, payload, headers = await self._handle_request(
                method, path, raw)
            blob = json.dumps(payload).encode("utf-8")
            reason = _REASONS.get(status, "Error")
            head = (f"HTTP/1.1 {status} {reason}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(blob)}\r\n"
                    "Connection: close\r\n")
            for name, value in headers:
                head += f"{name}: {value}\r\n"
            writer.write(head.encode("latin-1") + b"\r\n" + blob)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > protocol.MAX_BODY_BYTES:
            # Refuse before buffering; the parse layer would reject it
            # anyway but reading 8 MiB+ first invites memory pressure.
            return method, path, b"x" * (protocol.MAX_BODY_BYTES + 1)
        raw = await reader.readexactly(length) if length > 0 else b""
        return method, path, raw

    # -- request handling ----------------------------------------------

    async def _handle_request(self, method: str, path: str, raw: bytes
                              ) -> Tuple[int, Dict[str, Any],
                                         List[Tuple[str, str]]]:
        started = time.perf_counter()
        is_v1, endpoint, is_legacy = protocol.split_path(path)
        if is_legacy:
            self._record(metric.SERVICE_HTTP_LEGACY_PATH)
        outcome: Optional[protocol.EndpointOutcome] = None
        body: Any = None
        if method == "POST" and endpoint is not None:
            try:
                body = protocol.parse_json_bytes(raw)
            except MerlinInputError as exc:
                outcome = protocol.EndpointOutcome(
                    400, None, classify(exc, stage="http"))
        if outcome is None:
            outcome = await self._dispatch(method, endpoint, body, path)
        self._record_series(metric.SERVE_REQUEST_LATENCY_S,
                            time.perf_counter() - started)
        if is_v1 or endpoint is None:
            payload = protocol.envelope(
                outcome, protocol.new_request_id(),
                protocol.timing_ms_since(started))
        else:
            payload = protocol.legacy_body(outcome)
        headers: List[Tuple[str, str]] = []
        if is_legacy:
            headers.append(("Deprecation", "true"))
        if outcome.retry_after_s is not None:
            headers.append(("Retry-After",
                            str(max(1, math.ceil(outcome.retry_after_s)))))
        return outcome.status, payload, headers

    async def _dispatch(self, method: str, endpoint: Optional[str],
                        body: Any, path: str) -> protocol.EndpointOutcome:
        if (method, endpoint) not in protocol.ENDPOINTS:
            return protocol.handle_unknown(path, method)
        if endpoint == "healthz":
            return protocol.EndpointOutcome(200, {"status": "ok"})
        if endpoint == "stats":
            return protocol.EndpointOutcome(200, self.stats())
        rejected = self._admission_outcome(path)
        if rejected is not None:
            return rejected
        self._in_flight += 1
        self._record(metric.SERVE_ADMITTED)
        self._record_series(metric.SERVE_QUEUE_DEPTH, self._in_flight)
        try:
            if endpoint == "optimize":
                shard = self._route_optimize(body)
                return await self._run_on_shard(
                    shard, lambda svc: protocol.handle_optimize(
                        svc, body, path))
            shard = self._route_closure(body)
            return await self._run_on_shard(
                shard, lambda svc: protocol.handle_closure(svc, body, path))
        finally:
            self._in_flight -= 1

    # -- admission ------------------------------------------------------

    def _admission_outcome(self, path: str
                           ) -> Optional[protocol.EndpointOutcome]:
        reason: Optional[str] = None
        try:
            fault_point("serve.admission", key=path)
        except FaultInjected as exc:
            reason = f"admission rejected by injected fault: {exc}"
        if reason is None and self._in_flight >= self.queue_limit:
            reason = (f"request queue full ({self._in_flight} in flight, "
                      f"limit {self.queue_limit})")
        if reason is None:
            return None
        self._record(metric.SERVE_REJECTED)
        record = AdmissionRejectedError(
            reason, stage="serve.admission").record
        return protocol.EndpointOutcome(
            429, None, record, retry_after_s=self._retry_after_estimate())

    def _retry_after_estimate(self) -> float:
        """Seconds until a queue slot plausibly frees: the mean recent
        request latency, floored at one second (the header is integral
        anyway and sub-second retry storms help nobody)."""
        with self._recorder_lock:
            stats = self.recorder.series.get(metric.SERVE_REQUEST_LATENCY_S)
            mean = stats.mean if stats is not None and stats.count else 0.0
        return max(1.0, mean)

    # -- routing + shard execution --------------------------------------

    def _route_optimize(self, body: Any) -> int:
        """Shard index for an optimize body: the ring position of its
        canonical key.  Unparseable nets route to shard 0 — every shard
        produces the identical 400, so routing is irrelevant there."""
        try:
            net_data = body.get("net", body) if isinstance(body, dict) \
                else body
            net = net_from_dict(net_data)
        except (ValueError, TypeError, AttributeError):
            return 0
        key = self.services[0].canonical_key_for(net)
        return self._ring.shard_for(key)

    def _route_closure(self, body: Any) -> int:
        """Closure spans many nets, so the whole request pins to one
        shard, chosen by a digest of its (sorted-key) body so replays
        route identically."""
        try:
            blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            return 0
        return self._ring.shard_for(
            hashlib.sha256(blob.encode("utf-8")).hexdigest())

    async def _run_on_shard(
            self, shard: int,
            handler: Callable[[OptimizationService],
                              protocol.EndpointOutcome]
    ) -> protocol.EndpointOutcome:
        loop = asyncio.get_running_loop()
        for step in range(len(self.services)):
            index = (shard + step) % len(self.services)
            try:
                fault_point("serve.shard", key=str(index))
            except FaultInjected:
                # Shard down: degrade to the next shard on the ring
                # (identical answers — the engine is deterministic and
                # the disk tier, when present, is shared).
                if step == 0:
                    self._record(metric.SERVE_SHARD_FAILOVERS)
                continue
            self._record(metric.serve_shard_requests(index))
            return await loop.run_in_executor(
                self._executors[index], handler, self.services[index])
        record = ShardUnavailableError(
            f"shard {shard} is down and no failover shard is available",
            stage="serve.shard").record
        return protocol.EndpointOutcome(503, None, record)

    # -- observability ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` body: front-end gate/ring counters plus
        every shard's own :meth:`OptimizationService.stats` report."""
        with self._recorder_lock:
            report = self.recorder.report()
        return {
            "mode": "async-sharded",
            "shard_count": len(self.services),
            "queue_limit": self.queue_limit,
            "in_flight": self._in_flight,
            "counters": report["counters"],
            "latency": report["series"],
            "shards": [service.stats() for service in self.services],
        }

    def _record(self, name: str, n: int = 1) -> None:
        with self._recorder_lock:
            self.recorder.incr(name, n)

    def _record_series(self, name: str, value: float) -> None:
        with self._recorder_lock:
            self.recorder.record(name, value)


def serve_async(host: str, port: int,
                services: Optional[Sequence[OptimizationService]] = None,
                shards: int = 2,
                queue_limit: int = DEFAULT_QUEUE_LIMIT,
                cache_capacity: int = 256,
                disk_dir: Optional[str] = None,
                service_factory: Optional[Callable[[ResultCache],
                                                   OptimizationService]]
                = None,
                **service_kwargs: Any) -> None:
    """Blocking entry point behind ``merlin-repro serve --async``."""
    owned = services is None
    if services is None:
        services = build_shard_services(
            shards, cache_capacity=cache_capacity, disk_dir=disk_dir,
            service_factory=service_factory, **service_kwargs)
    server = AsyncShardedServer(services, host=host, port=port,
                                queue_limit=queue_limit)

    async def _main() -> None:
        await server.start()
        print(f"merlin-repro async service listening on http://{host}:"
              f"{server.port}  ({len(server.services)} shards, queue "
              f"limit {server.queue_limit}; POST /v1/optimize, "
              f"POST /v1/closure, GET /v1/stats, GET /v1/healthz; "
              "Ctrl-C to stop)")
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        server.close(close_services=owned)
