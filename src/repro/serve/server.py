"""The asyncio sharded HTTP front end (``merlin-repro serve --async``).

Architecture — one event loop, N worker-pool shards::

    client -> asyncio.start_server -> admission control -> hash ring
                                                             |
                            +---------------+----------------+
                            v               v                v
                       shard 0         shard 1   ...    shard N-1
                    (ThreadPool +   (ThreadPool +     (ThreadPool +
                     OptimizationService, own LRU, shared disk tier)

* **Transport**: a deliberately small HTTP/1.1 server on
  ``asyncio.start_server`` (stdlib only, ``Connection: close``).  The
  event loop never runs engine work — it parses, routes, and awaits.
* **Admission control**: work-bearing endpoints (``optimize``,
  ``closure``) pass a bounded in-flight gate; beyond ``queue_limit``
  the request is rejected immediately with **429** + ``Retry-After``
  (estimated from the recent latency series) instead of queueing
  unboundedly.  Probes (``healthz``, ``stats``) bypass the gate so
  health stays observable under overload.
* **Sharding**: requests are routed by their canonical net signature
  (:meth:`OptimizationService.canonical_key_for`) over a consistent
  hash ring, so equivalent requests — renamed/translated twins
  included — always hit the same shard and its warm LRU.  Shards are
  plain :class:`OptimizationService` instances; each runs requests on
  its own small thread pool (the threads mostly wait on the engine's
  process pool or serve cache hits).
* **Tiered cache**: shard LRU (hot, per-shard) over an optional shared
  checksummed disk directory (warm, cross-shard) — pass ``disk_dir`` to
  :func:`build_shard_services`.  Keys agree byte-for-byte across tiers
  because both come from :mod:`repro.service.canonical`.
* **Degradation**: a shard marked down by the ``serve.shard`` fault
  site fails over to the next healthy shard on the ring (counted by
  ``serve.shard.failovers``); only when every shard is down does the
  client see a **503** ``shard_unavailable``.  The ``serve.admission``
  fault site forces 429s for chaos drills.
* **Self-healing**: every shard sits behind a
  :class:`~repro.resilience.supervise.CircuitBreaker` — repeated
  failures trip it open and the ring walk skips the shard without even
  paying a dispatch (``serve.breaker.short_circuits``) — while a
  :class:`~repro.resilience.supervise.ShardSupervisor` task health-
  probes every shard, feeds the same breakers, and restarts a tripped
  shard's worker pool with jittered backoff
  (``serve.supervisor.restarts``).  ``GET /v1/healthz`` reports the
  per-shard breaker state; ``GET /v1/stats`` carries full snapshots.
* **Brownout**: with ``brownout_after`` set, sustained admission
  saturation flips the gate into brownout — would-be-429 optimize
  requests are admitted but downgraded to the fast preset through the
  degradation ladder (``degraded: true`` in the envelope, never
  cached), up to a hard cap of twice the queue limit.
* **Graceful drain**: :meth:`AsyncShardedServer.drain` (SIGTERM under
  :func:`serve_async`) finishes in-flight work, refuses new requests
  with **503** + ``Retry-After``, and flushes shard memory caches to
  the shared disk tier before the listener closes.

Endpoint semantics — parsing, handlers, envelopes, error bodies — come
from :mod:`repro.service.protocol`, the same module the sync front end
uses, which is why the two paths answer bit-identically (the engine is
deterministic, so even cross-shard answers match): the CI gate replays
one workload through both and diffs tree signatures.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.instrument import names as metric
from repro.instrument.recorder import Recorder
from repro.net import net_from_dict
from repro.resilience.errors import (
    AdmissionRejectedError,
    FaultInjected,
    MerlinInputError,
    ServerDrainingError,
    ShardUnavailableError,
    classify,
)
from repro.resilience.faults import fault_point
from repro.resilience.supervise import (
    STATE_CLOSED,
    BreakerConfig,
    CircuitBreaker,
    ShardSupervisor,
)
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.engine import OptimizationService

#: Default bound on concurrently admitted work-bearing requests.
DEFAULT_QUEUE_LIMIT = 64

#: Default handler threads per shard (they wait on the engine's process
#: pool or serve cache hits, so a couple is plenty).
DEFAULT_SHARD_THREADS = 2

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def build_shard_services(
        shards: int,
        cache_capacity: int = 256,
        disk_dir: Optional[str] = None,
        service_factory: Optional[Callable[[ResultCache],
                                           OptimizationService]] = None,
        **service_kwargs: Any) -> List[OptimizationService]:
    """Construct ``shards`` identically-configured services.

    Each shard gets its own in-memory LRU; ``disk_dir`` (optional) is
    shared across all of them as the warm tier.  Extra keyword arguments
    go to :class:`OptimizationService` verbatim; ``service_factory``
    takes over construction entirely when the caller needs presets.
    """
    if shards < 1:
        raise MerlinInputError(f"need >= 1 shard, got {shards}")
    services = []
    for _ in range(shards):
        cache = ResultCache(capacity=cache_capacity, disk_dir=disk_dir)
        if service_factory is not None:
            services.append(service_factory(cache))
        else:
            services.append(OptimizationService(cache=cache,
                                                **service_kwargs))
    return services


class AsyncShardedServer:
    """Own the listener, the admission gate, the ring, and the shards.

    The caller owns the services' lifetime unless :meth:`close` is asked
    to shut them down (the blocking :func:`serve_async` does).
    """

    def __init__(self, services: Sequence[OptimizationService],
                 host: str = "127.0.0.1", port: int = 0,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 shard_threads: int = DEFAULT_SHARD_THREADS,
                 recorder: Optional[Recorder] = None,
                 breaker_config: Optional[BreakerConfig] = None,
                 supervise_interval_s: float = 0.25,
                 brownout_after: Optional[int] = None) -> None:
        from repro.serve.sharding import ConsistentHashRing

        if not services:
            raise MerlinInputError("need at least one shard service")
        if queue_limit < 1:
            raise MerlinInputError(
                f"queue_limit must be >= 1, got {queue_limit}")
        fingerprints = {s.tech_fingerprint for s in services}
        if len(fingerprints) != 1:
            # Mixed technologies would make ring keys and shard cache
            # keys disagree — refuse loudly instead of mis-caching.
            raise MerlinInputError(
                "all shard services must share one technology "
                f"(got {len(fingerprints)} distinct fingerprints)")
        self.services = list(services)
        self.host = host
        self.queue_limit = queue_limit
        self._requested_port = port
        self._ring = ConsistentHashRing(len(self.services))
        self._executors = [
            ThreadPoolExecutor(max_workers=max(1, shard_threads),
                               thread_name_prefix=f"merlin-shard-{i}")
            for i in range(len(self.services))]
        self._in_flight = 0  # event-loop-confined; no lock needed
        self.recorder = recorder or Recorder()
        self._recorder_lock = Lock()  # executor threads record too
        self._server: Optional[asyncio.AbstractServer] = None
        # Self-healing layer: one breaker per shard plus the probing /
        # pool-restarting supervisor (started with the listener).
        self.breakers = [
            CircuitBreaker(breaker_config, name=f"shard-{i}")
            for i in range(len(self.services))]
        self.supervisor = ShardSupervisor(
            self.breakers, probe=self._probe_shard,
            restart=self._restart_shard,
            interval_s=supervise_interval_s, record=self._record)
        # Brownout: after `brownout_after` consecutive saturated
        # admission decisions, optimize work is degraded to the fast
        # preset instead of 429'd (None keeps classic reject-only).
        self.brownout_after = brownout_after
        self._pressure = 0
        self._brownout = False
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)
        self.supervisor.launch()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        await self.supervisor.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown: refuse new work with 503 + ``Retry-After``,
        let in-flight requests finish (bounded by ``timeout_s``), flush
        every shard's memory cache tier to the disk tier, stop listening.
        Returns a small report for logs/tests."""
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while self._in_flight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        flushed = sum(service.cache.flush() for service in self.services
                      if service.cache is not None)
        await self.stop()
        return {"in_flight": self._in_flight, "flushed": flushed,
                "drained": self._in_flight == 0}

    @property
    def draining(self) -> bool:
        return self._draining

    def close(self, close_services: bool = False) -> None:
        """Tear down executors (and optionally the shard services)."""
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)
        if close_services:
            for service in self.services:
                service.close()

    # -- supervision -----------------------------------------------------

    async def _probe_shard(self, index: int) -> None:
        """One health probe, run on the shard's own executor so a wedged
        pool surfaces as a probe failure.  It walks the same
        ``serve.shard`` fault gate as real traffic (a chaos-downed shard
        must look down to the supervisor too) plus its own
        ``serve.supervisor.probe`` site for probe-specific drills."""
        loop = asyncio.get_running_loop()

        def _probe(service: OptimizationService) -> None:
            fault_point("serve.supervisor.probe", key=str(index))
            fault_point("serve.shard", key=str(index))
            service.stats()

        await loop.run_in_executor(
            self._executors[index], _probe, self.services[index])

    async def _restart_shard(self, index: int) -> None:
        """Discard the shard's worker pool; the service rebuilds it
        lazily on the next dispatch (``OptimizationService.close`` keeps
        the service usable — that is the restart primitive)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.services[index].close)

    def _shard_failed(self, index: int) -> None:
        """Feed one failure to the shard's breaker; count trips."""
        breaker = self.breakers[index]
        before = breaker.opens
        breaker.record_failure()
        if breaker.opens > before:
            self._record(metric.SERVE_BREAKER_OPENS)

    # -- transport ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, raw = parsed
            status, payload, headers = await self._handle_request(
                method, path, raw)
            blob = json.dumps(payload).encode("utf-8")
            reason = _REASONS.get(status, "Error")
            head = (f"HTTP/1.1 {status} {reason}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(blob)}\r\n"
                    "Connection: close\r\n")
            for name, value in headers:
                head += f"{name}: {value}\r\n"
            writer.write(head.encode("latin-1") + b"\r\n" + blob)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > protocol.MAX_BODY_BYTES:
            # Refuse before buffering; the parse layer would reject it
            # anyway but reading 8 MiB+ first invites memory pressure.
            return method, path, b"x" * (protocol.MAX_BODY_BYTES + 1)
        raw = await reader.readexactly(length) if length > 0 else b""
        return method, path, raw

    # -- request handling ----------------------------------------------

    async def _handle_request(self, method: str, path: str, raw: bytes
                              ) -> Tuple[int, Dict[str, Any],
                                         List[Tuple[str, str]]]:
        started = time.perf_counter()
        is_v1, endpoint, is_legacy = protocol.split_path(path)
        if is_legacy:
            self._record(metric.SERVICE_HTTP_LEGACY_PATH)
        outcome: Optional[protocol.EndpointOutcome] = None
        body: Any = None
        if method == "POST" and endpoint is not None:
            try:
                body = protocol.parse_json_bytes(raw)
            except MerlinInputError as exc:
                outcome = protocol.EndpointOutcome(
                    400, None, classify(exc, stage="http"))
        if outcome is None:
            outcome = await self._dispatch(method, endpoint, body, path)
        self._record_series(metric.SERVE_REQUEST_LATENCY_S,
                            time.perf_counter() - started)
        if is_v1 or endpoint is None:
            payload = protocol.envelope(
                outcome, protocol.new_request_id(),
                protocol.timing_ms_since(started))
        else:
            payload = protocol.legacy_body(outcome)
        headers: List[Tuple[str, str]] = []
        if is_legacy:
            headers.append(("Deprecation", "true"))
        if outcome.retry_after_s is not None:
            headers.append(("Retry-After",
                            str(max(1, math.ceil(outcome.retry_after_s)))))
        return outcome.status, payload, headers

    async def _dispatch(self, method: str, endpoint: Optional[str],
                        body: Any, path: str) -> protocol.EndpointOutcome:
        if (method, endpoint) not in protocol.ENDPOINTS:
            return protocol.handle_unknown(path, method)
        if endpoint == "healthz":
            return protocol.EndpointOutcome(200, self._healthz_body())
        if endpoint == "stats":
            return protocol.EndpointOutcome(200, self.stats())
        rejected, browned_out = self._admission_outcome(path, endpoint)
        if rejected is not None:
            return rejected
        self._in_flight += 1
        self._record(metric.SERVE_ADMITTED)
        self._record_series(metric.SERVE_QUEUE_DEPTH, self._in_flight)
        try:
            if endpoint == "optimize":
                shard = self._route_optimize(body)
                return await self._run_on_shard(
                    shard, lambda svc: protocol.handle_optimize(
                        svc, body, path, brownout=browned_out))
            shard = self._route_closure(body)
            return await self._run_on_shard(
                shard, lambda svc: protocol.handle_closure(svc, body, path))
        finally:
            self._in_flight -= 1

    def _healthz_body(self) -> Dict[str, Any]:
        """Per-shard health: overall status plus each breaker snapshot.
        The sync front end keeps the flat ``{"status": "ok"}`` body; the
        sharded tier is where per-shard state exists to report."""
        shards = [{"index": index, "breaker": breaker.snapshot()}
                  for index, breaker in enumerate(self.breakers)]
        degraded = any(s["breaker"]["state"] != STATE_CLOSED
                       for s in shards)
        status = "draining" if self._draining else \
            ("degraded" if degraded else "ok")
        return {"status": status, "draining": self._draining,
                "brownout": self._brownout, "shards": shards,
                "supervisor": self.supervisor.stats()}

    # -- admission ------------------------------------------------------

    def _admission_outcome(self, path: str, endpoint: str
                           ) -> Tuple[Optional[protocol.EndpointOutcome],
                                      bool]:
        """(rejection outcome or None, admit-as-brownout flag).

        Draining beats everything: new work gets 503 + ``Retry-After``.
        Under sustained queue saturation (``brownout_after`` consecutive
        saturated decisions) optimize requests are admitted *degraded*
        — routed through the fast preset — up to a hard cap of twice
        the queue limit, instead of 429'd.  Fault-injected rejections
        stay hard 429s (chaos drills must observe rejects).
        """
        if self._draining:
            self._record(metric.SERVE_DRAIN_REFUSALS)
            record = ServerDrainingError(
                "front end is draining for shutdown; retry elsewhere",
                stage="serve.drain").record
            return protocol.EndpointOutcome(
                503, None, record,
                retry_after_s=self._retry_after_estimate()), False
        try:
            fault_point("serve.admission", key=path)
        except FaultInjected as exc:
            return self._reject(
                f"admission rejected by injected fault: {exc}"), False
        if self._in_flight < self.queue_limit:
            self._pressure = 0
            if self._brownout and self._in_flight <= self.queue_limit // 2:
                self._brownout = False
            return None, False
        self._pressure += 1
        if self.brownout_after is not None \
                and self._pressure >= self.brownout_after \
                and endpoint == "optimize":
            if not self._brownout:
                self._brownout = True
                self._record(metric.SERVE_BROWNOUT_ENTERED)
            if self._in_flight < 2 * self.queue_limit:
                self._record(metric.SERVE_BROWNOUT_ADMITTED)
                return None, True
        return self._reject(
            f"request queue full ({self._in_flight} in flight, "
            f"limit {self.queue_limit})"), False

    def _reject(self, reason: str) -> protocol.EndpointOutcome:
        self._record(metric.SERVE_REJECTED)
        record = AdmissionRejectedError(
            reason, stage="serve.admission").record
        return protocol.EndpointOutcome(
            429, None, record, retry_after_s=self._retry_after_estimate())

    def _retry_after_estimate(self) -> float:
        """Seconds until a queue slot plausibly frees: the mean recent
        request latency, floored at one second (the header is integral
        anyway and sub-second retry storms help nobody)."""
        with self._recorder_lock:
            stats = self.recorder.series.get(metric.SERVE_REQUEST_LATENCY_S)
            mean = stats.mean if stats is not None and stats.count else 0.0
        return max(1.0, mean)

    # -- routing + shard execution --------------------------------------

    def _route_optimize(self, body: Any) -> int:
        """Shard index for an optimize body: the ring position of its
        canonical key.  Unparseable nets route to shard 0 — every shard
        produces the identical 400, so routing is irrelevant there."""
        try:
            net_data = body.get("net", body) if isinstance(body, dict) \
                else body
            net = net_from_dict(net_data)
        except (ValueError, TypeError, AttributeError):
            return 0
        key = self.services[0].canonical_key_for(net)
        return self._ring.shard_for(key)

    def _route_closure(self, body: Any) -> int:
        """Closure spans many nets, so the whole request pins to one
        shard, chosen by a digest of its (sorted-key) body so replays
        route identically."""
        try:
            blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            return 0
        return self._ring.shard_for(
            hashlib.sha256(blob.encode("utf-8")).hexdigest())

    async def _run_on_shard(
            self, shard: int,
            handler: Callable[[OptimizationService],
                              protocol.EndpointOutcome]
    ) -> protocol.EndpointOutcome:
        loop = asyncio.get_running_loop()
        for step in range(len(self.services)):
            index = (shard + step) % len(self.services)
            breaker = self.breakers[index]
            if not breaker.allow():
                # Open breaker: skip the shard without paying a dispatch
                # (the supervisor's probes, not client traffic, are what
                # close it again).
                self._record(metric.SERVE_BREAKER_SHORT_CIRCUITS)
                if step == 0:
                    self._record(metric.SERVE_SHARD_FAILOVERS)
                continue
            try:
                fault_point("serve.shard", key=str(index))
            except FaultInjected:
                # Shard down: degrade to the next shard on the ring
                # (identical answers — the engine is deterministic and
                # the disk tier, when present, is shared).
                self._shard_failed(index)
                if step == 0:
                    self._record(metric.SERVE_SHARD_FAILOVERS)
                continue
            self._record(metric.serve_shard_requests(index))
            try:
                outcome = await loop.run_in_executor(
                    self._executors[index], handler, self.services[index])
            except Exception:
                self._shard_failed(index)
                raise
            # Handler outcomes feed the error-rate threshold: a 5xx is
            # the shard failing the request, everything else is health.
            if outcome.status >= 500:
                self._shard_failed(index)
            else:
                breaker.record_success()
            return outcome
        record = ShardUnavailableError(
            f"shard {shard} is down and no failover shard is available",
            stage="serve.shard").record
        return protocol.EndpointOutcome(503, None, record)

    # -- observability ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` body: front-end gate/ring counters plus
        every shard's own :meth:`OptimizationService.stats` report."""
        with self._recorder_lock:
            report = self.recorder.report()
        return {
            "mode": "async-sharded",
            "shard_count": len(self.services),
            "queue_limit": self.queue_limit,
            "in_flight": self._in_flight,
            "draining": self._draining,
            "brownout": self._brownout,
            "counters": report["counters"],
            "latency": report["series"],
            "shards": [service.stats() for service in self.services],
            "breakers": [breaker.snapshot() for breaker in self.breakers],
            "supervisor": self.supervisor.stats(),
        }

    def _record(self, name: str, n: int = 1) -> None:
        with self._recorder_lock:
            self.recorder.incr(name, n)

    def _record_series(self, name: str, value: float) -> None:
        with self._recorder_lock:
            self.recorder.record(name, value)


def serve_async(host: str, port: int,
                services: Optional[Sequence[OptimizationService]] = None,
                shards: int = 2,
                queue_limit: int = DEFAULT_QUEUE_LIMIT,
                cache_capacity: int = 256,
                disk_dir: Optional[str] = None,
                service_factory: Optional[Callable[[ResultCache],
                                                   OptimizationService]]
                = None,
                brownout_after: Optional[int] = None,
                drain_timeout_s: float = 30.0,
                **service_kwargs: Any) -> None:
    """Blocking entry point behind ``merlin-repro serve --async``.

    SIGTERM triggers a graceful drain (in-flight requests finish, new
    ones get 503 + ``Retry-After``, the disk cache tier is flushed)
    before the process exits; Ctrl-C stays an immediate stop.
    """
    owned = services is None
    if services is None:
        services = build_shard_services(
            shards, cache_capacity=cache_capacity, disk_dir=disk_dir,
            service_factory=service_factory, **service_kwargs)
    server = AsyncShardedServer(services, host=host, port=port,
                                queue_limit=queue_limit,
                                brownout_after=brownout_after)

    async def _main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        sigterm = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        except (NotImplementedError, ValueError):
            pass  # platforms/threads without signal support
        print(f"merlin-repro async service listening on http://{host}:"
              f"{server.port}  ({len(server.services)} shards, queue "
              f"limit {server.queue_limit}; POST /v1/optimize, "
              f"POST /v1/closure, GET /v1/stats, GET /v1/healthz; "
              "SIGTERM drains, Ctrl-C stops)")
        serve_task = asyncio.ensure_future(server.serve_forever())
        drain_task = asyncio.ensure_future(sigterm.wait())
        done, _ = await asyncio.wait(
            {serve_task, drain_task},
            return_when=asyncio.FIRST_COMPLETED)
        if drain_task in done:
            report = await server.drain(timeout_s=drain_timeout_s)
            print("merlin-repro async service drained "
                  f"(flushed {report['flushed']} cache entries, "
                  f"{report['in_flight']} request(s) abandoned)")
        serve_task.cancel()
        drain_task.cancel()
        for task in (serve_task, drain_task):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        server.close(close_services=owned)
