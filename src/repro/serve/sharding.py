"""Consistent-hash routing of canonical net signatures onto shards.

The async front end (:mod:`repro.serve.server`) routes each request to
one of N worker-pool shards by the request's *canonical key* — the same
translation/rename-normalized signature the cache uses
(:mod:`repro.service.canonical`).  Routing on that key (and nothing
else) gives two properties the serving tier leans on:

* **Cache affinity.**  Equivalent requests — including renamed or
  translated twins of earlier nets — always land on the same shard, so
  each shard's in-memory LRU sees every repeat of its keyspace and the
  per-shard hit rate equals the single-pool hit rate.  A shared on-disk
  tier is therefore an optimization, not a correctness requirement.
* **Stability under resharding.**  Keys are placed on a hash ring with
  :data:`DEFAULT_REPLICAS` virtual points per shard; growing N shards to
  N+1 remaps only ~1/(N+1) of the keyspace instead of reshuffling
  everything, so most of the warm per-shard caches survive a resize.

Hashing is SHA-256 (first 8 bytes, big-endian) — deterministic across
processes and Python versions, unlike ``hash()`` which is salted per
process (``PYTHONHASHSEED``) and would silently break replay
comparisons between server runs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List

from repro.resilience.errors import MerlinInputError

#: Virtual points per shard on the ring.  Enough that the largest
#: shard's keyspace share stays within a few percent of the mean for
#: the shard counts this tier targets (2-16), cheap enough that ring
#: construction is microseconds.
DEFAULT_REPLICAS = 96


def _point(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps hex-string keys to shard indices ``0..shards-1``."""

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise MerlinInputError(f"ring needs >= 1 shard, got {shards}")
        if replicas < 1:
            raise MerlinInputError(f"ring needs >= 1 replica, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: List[tuple] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_point(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (first ring point at or after its
        hash, wrapping)."""
        index = bisect.bisect_right(self._hashes, _point(key))
        return self._owners[index % len(self._owners)]

    def distribution(self, keys: Iterable[str]) -> Dict[int, int]:
        """How many of ``keys`` each shard owns (diagnostics/tests)."""
        counts: Dict[int, int] = {shard: 0 for shard in range(self.shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
