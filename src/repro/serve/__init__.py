"""The async sharded serving tier (``merlin-repro serve --async``).

Scales the single-pool :mod:`repro.service` HTTP front end out to N
worker-pool shards behind one asyncio listener with bounded admission:

* :mod:`repro.serve.sharding` — :class:`ConsistentHashRing`, routing
  canonical net signatures to shards with cache affinity and minimal
  remapping on resize;
* :mod:`repro.serve.server` — :class:`AsyncShardedServer`, the stdlib
  asyncio HTTP front end (bounded queue -> 429 + ``Retry-After``,
  per-shard thread pools over :class:`repro.service.OptimizationService`
  instances, shard-down failover along the ring) speaking the same v1
  protocol (:mod:`repro.service.protocol`) as the sync server —
  bit-identical answers, by construction and by CI gate.

Typical embedded use (tests, the load harness)::

    from repro.serve import AsyncShardedServer, build_shard_services

    services = build_shard_services(shards=4, workers=1)
    server = AsyncShardedServer(services, queue_limit=32)
    await server.start()          # server.port is now bound
"""

from repro.serve.server import (
    DEFAULT_QUEUE_LIMIT,
    AsyncShardedServer,
    build_shard_services,
    serve_async,
)
from repro.serve.sharding import ConsistentHashRing

__all__ = [
    "AsyncShardedServer",
    "ConsistentHashRing",
    "DEFAULT_QUEUE_LIMIT",
    "build_shard_services",
    "serve_async",
]
