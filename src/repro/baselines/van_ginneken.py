"""van Ginneken [Gi90]: buffer insertion on a fixed routing tree.

Flow II of the paper's experiments: first a routing tree is built (PTREE),
then buffers are inserted on its wires — the classic bottom-up dynamic
program over (load, required time) curves, here carried as the library's
standard three-dimensional solutions so the area axis stays available.

Candidate buffer sites are the tree's internal nodes plus evenly spaced
split points along each edge's L-shaped embedding (``segment_length``
microns apart, capped per edge).  Because the topology is fixed, the DP is
linear in the number of sites — fast, but unable to reshape the routing
around the buffers, which is precisely the gap MERLIN's unified
construction closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.curves.curve import SolutionCurve
from repro.curves.ops import (
    buffer_solution,
    extend_solution,
    join_solutions,
)
from repro.curves.solution import DriverArm, Solution, sink_leaf_solution
from repro.geometry.point import Point
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder
from repro.routing.builder import build_tree
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    TreeNode,
)
from repro.tech.technology import Technology
from repro.units import fzero


@dataclass
class VanGinnekenResult:
    """Outcome of one buffer-insertion run."""

    tree: RoutingTree
    solution: Solution
    final_solutions: List[Solution]


def van_ginneken_insert(tree: RoutingTree, tech: Technology,
                        config: Optional[MerlinConfig] = None,
                        objective: Optional[Objective] = None,
                        segment_length: float = 400.0,
                        max_segments_per_edge: int = 4,
                        ) -> VanGinnekenResult:
    """Insert buffers into (a copy of) ``tree``.

    ``tree`` must be unbuffered (Steiner/sink nodes under a source root);
    passing an already-buffered tree is a flow-composition error and is
    rejected rather than silently double-buffered.
    """
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    if segment_length <= 0:
        raise ValueError("segment_length must be positive")
    if max_segments_per_edge < 1:
        raise ValueError("max_segments_per_edge must be >= 1")
    for node in tree.walk():
        if isinstance(node, BufferNode):
            raise ValueError("van Ginneken insertion expects an unbuffered tree")

    buffers = list(tech.buffers if config.library_subset is None
                   else tech.buffers.subset(config.library_subset))
    net = tree.net
    inserter = _Inserter(net, tech, buffers, config, segment_length,
                         max_segments_per_edge)

    root = tree.root
    if not isinstance(root, SourceNode):
        raise ValueError("van Ginneken insertion expects a source-rooted tree")
    merged = inserter.node_curve(root)

    driver_curve = SolutionCurve(net.source, config.curve)
    for solution in merged:
        delay = tech.driver_delay(solution.load,
                                  drive_resistance=net.driver_resistance,
                                  intrinsic=net.driver_intrinsic)
        driver_curve.add(Solution(
            root=net.source,
            load=solution.load,
            required_time=solution.required_time - delay,
            area=solution.area,
            detail=DriverArm(solution, 0.0),
        ))
    driver_curve.prune()
    finals = driver_curve.solutions
    if not finals:
        raise RuntimeError(f"net {net.name}: buffer insertion lost all solutions")
    best = objective.select(finals)
    if best is None:
        # Same fallback as BUBBLE_CONSTRUCT: unreachable constraint ->
        # best trade-off near the achievable optimum.
        best = Objective.best_tradeoff(tolerance=25.0).select(finals)
    return VanGinnekenResult(tree=build_tree(net, best), solution=best,
                             final_solutions=finals)


class _Inserter:
    """Bottom-up curve propagation over the fixed topology."""

    def __init__(self, net, tech: Technology, buffers, config: MerlinConfig,
                 segment_length: float, max_segments: int):
        self.net = net
        self.tech = tech
        self.buffers = buffers
        self.config = config
        self.segment_length = segment_length
        self.max_segments = max_segments

    def node_curve(self, node: TreeNode) -> List[Solution]:
        """Non-inferior solutions for the subtree rooted at ``node``."""
        if isinstance(node, SinkNode):
            return [self._sink_solution(node)]
        if not node.children:
            raise ValueError(
                f"{node.kind} at {node.position} has no children — "
                "malformed input tree")

        child_curves: List[List[Solution]] = []
        for child in node.children:
            child_curves.append(self.edge_curve(node, child))

        merged = child_curves[0]
        for other in child_curves[1:]:
            curve = SolutionCurve(node.position, self.config.curve)
            for a in merged:
                for b in other:
                    curve.add(join_solutions(a, b))
            curve.prune()
            merged = curve.solutions
        return merged

    def edge_curve(self, parent: TreeNode, child: TreeNode) -> List[Solution]:
        """Propagate the child subtree's curve up the edge to ``parent``."""
        base = self.node_curve(child)
        points = _split_points(child.position, parent.position,
                               self.segment_length, self.max_segments)
        current = base
        for point in points:
            current = self._hop(current, point)
        return self._hop(current, parent.position)

    def _hop(self, solutions: List[Solution], point: Point) -> List[Solution]:
        """Extend to ``point`` and offer each buffer there; prune."""
        active_recorder().incr(metric.VG_HOPS)
        curve = SolutionCurve(point, self.config.curve)
        for solution in solutions:
            moved = extend_solution(solution, point, self.tech)
            curve.add(moved)
            for buffer in self.buffers:
                curve.add(buffer_solution(moved, buffer, self.tech))
        curve.prune()
        return curve.solutions

    def _sink_solution(self, node: SinkNode) -> Solution:
        sink = self.net.sink(node.sink_index)
        return sink_leaf_solution(node.position, node.sink_index,
                                  sink.load, sink.required_time)


def _split_points(frm: Point, to: Point, spacing: float,
                  max_segments: int) -> List[Point]:
    """Evenly spaced interior points along the L-shaped path ``frm → to``.

    The bend is placed at ``(to.x, frm.y)`` (horizontal first when walking
    from the child up toward the parent); the choice is delay-neutral under
    Elmore with uniform parasitics, so any fixed convention is fine.
    """
    import math

    total = frm.manhattan_to(to)
    if fzero(total):
        return []
    # Fewest segments of length <= spacing, capped.
    segments = min(max_segments, max(1, math.ceil(total / spacing)))
    if segments <= 1:
        return []
    corner = Point(to.x, frm.y)
    leg1 = frm.manhattan_to(corner)
    points: List[Point] = []
    for i in range(1, segments):
        distance = total * i / segments
        if distance <= leg1 and leg1 > 0:
            t = distance / leg1
            points.append(Point(frm.x + (corner.x - frm.x) * t, frm.y))
        else:
            remaining = distance - leg1
            leg2 = corner.manhattan_to(to)
            t = remaining / leg2 if leg2 > 0 else 0.0
            points.append(Point(corner.x, corner.y + (to.y - corner.y) * t))
    return points
