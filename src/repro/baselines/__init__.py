"""The paper's comparison baselines, implemented from scratch.

* :mod:`repro.baselines.ptree` — PTREE [LCLH96]: optimal fixed-order
  rectilinear routing over candidate points (no buffers).
* :mod:`repro.baselines.lttree` — LTTREE [To90]: LT-Tree type-I fanout
  optimization in the logic domain (no wires).
* :mod:`repro.baselines.van_ginneken` — [Gi90]: bottom-up buffer insertion
  on a fixed routing tree.
* :mod:`repro.baselines.flows` — the three experimental setups of
  section IV (Flow I: LTTREE→PTREE, Flow II: PTREE→van Ginneken,
  Flow III: MERLIN) behind one interface.
"""

from repro.baselines.ptree import PTreeResult, ptree_route
from repro.baselines.lttree import FanoutNode, LTTreeResult, lttree_fanout
from repro.baselines.van_ginneken import van_ginneken_insert
from repro.baselines.flows import FlowResult, run_flow, run_all_flows

__all__ = [
    "PTreeResult",
    "ptree_route",
    "FanoutNode",
    "LTTreeResult",
    "lttree_fanout",
    "van_ginneken_insert",
    "FlowResult",
    "run_flow",
    "run_all_flows",
]
