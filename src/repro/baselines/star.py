"""The buffered-star baseline: the degradation ladder's floor.

A star is the simplest valid buffered routing tree: the source drives
one buffer placed at the source, and that buffer drives every sink
directly.  It needs no candidate generation, no solution curves, and no
search — construction is O(n) with zero failure modes beyond an invalid
net — which is exactly the property the resilience ladder
(:mod:`repro.resilience.degrade`) needs from its final rung: *always*
return a valid tree, however adversarial the instance or exhausted the
budget.

Quality is deliberately not the point.  The one buffer decouples the
driver from the full wire+pin load (usually better than nothing on
multi-sink nets), but no topology or sizing optimization happens.  The
tree is deterministic in (net, tech), so its
:func:`~repro.routing.export.tree_signature` is a stable fingerprint —
chaos tests pin degraded answers to it.
"""

from __future__ import annotations

from repro.net import Net
from repro.routing.tree import BufferNode, RoutingTree, SinkNode, SourceNode
from repro.tech.buffer import Buffer
from repro.tech.technology import Technology


def star_buffer(tech: Technology) -> Buffer:
    """The library cell the star uses: the strongest driver (lowest
    drive resistance, ties broken by name) — the safe default when one
    buffer must drive every sink."""
    return min(tech.buffers, key=lambda b: (b.drive_resistance, b.name))


def buffered_star(net: Net, tech: Technology) -> RoutingTree:
    """Build the deterministic buffered star for ``net``; see module
    docstring.  Sinks hang off the buffer in net index order."""
    root = SourceNode(net.source)
    buffer_node = BufferNode(net.source, star_buffer(tech))
    root.add_child(buffer_node)
    for index, sink in enumerate(net.sinks):
        buffer_node.add_child(SinkNode(sink.position, index))
    return RoutingTree(net=net, root=root)
