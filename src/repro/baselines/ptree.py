"""PTREE [LCLH96]: fixed-order optimal routing-tree embedding.

Given a sink order, PTREE finds the optimal embedding of the net into a
candidate-point grid (classically the Hanan grid) by dynamic programming
over contiguous sink runs, propagating two-dimensional non-inferior curves
of load versus required time (total buffer area is identically zero — there
are no buffers; that is what Flow II's separate insertion phase and the
paper's unified *PTREE both improve on).

The implementation reuses the *PTREE kernel with buffering disabled, which
keeps the two code paths comparable in the benchmarks: the measured gap
between Flow II/III and PTREE is algorithmic, not implementation accident.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MerlinConfig
from repro.core.star_ptree import PTreeContext
from repro.curves.curve import SolutionCurve
from repro.curves.ops import extend_solution
from repro.curves.solution import DriverArm, Solution
from repro.geometry.candidates import generate_candidates
from repro.net import Net
from repro.orders.order import Order
from repro.orders.tsp import tsp_order
from repro.routing.builder import build_tree
from repro.routing.tree import RoutingTree
from repro.tech.technology import Technology


@dataclass
class PTreeResult:
    """Outcome of one PTREE run."""

    tree: RoutingTree
    solution: Solution
    #: Final non-inferior curve at the driver (area is 0 throughout).
    final_solutions: List[Solution]


def ptree_route(net: Net, tech: Technology,
                order: Optional[Order] = None,
                config: Optional[MerlinConfig] = None) -> PTreeResult:
    """Route ``net`` with PTREE in the given (default: TSP) sink order.

    The returned tree is unbuffered; required time at the driver is
    maximized over all embeddings consistent with the order.
    """
    config = config or MerlinConfig()
    order = order or tsp_order(net)
    if len(order) != len(net):
        raise ValueError("order size does not match the net")

    candidates = generate_candidates(
        net.source, net.sink_positions,
        strategy=config.candidate_strategy,
        max_candidates=config.max_candidates,
    )
    if net.source not in candidates:
        candidates.append(net.source)
    context = PTreeContext(candidates, tech, config.curve,
                           config.relocation_rounds, use_buffers=False,
                           wire_widths=config.wire_width_options)

    leaf_curves = []
    for sink_index in order:
        sink = net.sink(sink_index)
        leaf_curves.append(context.sink_base_curves(
            sink_index, sink.position, sink.load, sink.required_time))
    final_curves = context.run(leaf_curves)

    driver_curve = SolutionCurve(net.source, config.curve)
    for curve in final_curves:
        for solution in curve:
            at_source = extend_solution(solution, net.source, tech)
            delay = tech.driver_delay(
                at_source.load,
                drive_resistance=net.driver_resistance,
                intrinsic=net.driver_intrinsic,
            )
            driver_curve.add(Solution(
                root=net.source,
                load=at_source.load,
                required_time=at_source.required_time - delay,
                area=at_source.area,
                detail=DriverArm(at_source,
                                 net.source.manhattan_to(solution.root)),
            ))
    driver_curve.prune()
    finals = driver_curve.solutions
    if not finals:
        raise RuntimeError(f"net {net.name}: PTREE produced no solutions")
    best = max(finals, key=lambda s: (s.required_time, -s.load))
    return PTreeResult(tree=build_tree(net, best), solution=best,
                       final_solutions=finals)
