"""The three experimental setups of the paper's section IV.

* **Flow I** — fanout optimization with LTTREE (required-time sink order),
  then buffer placement at sink centroids and per-stage routing with PTREE
  (TSP sink order), mirroring "LTTREE + PTREE".
* **Flow II** — routing with PTREE (TSP order), then buffer insertion with
  van Ginneken's algorithm on the fixed tree: "PTREE + Buffer Insertion".
* **Flow III** — MERLIN: unified hierarchical buffered routing with local
  neighborhood search.

All flows return the same :class:`FlowResult` so the Table 1/2 harnesses
can report them uniformly; every returned tree is validated and evaluated
with the *same* Elmore/gate-delay models, so measured differences are
algorithmic only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.lttree import FanoutNode, lttree_fanout
from repro.baselines.ptree import ptree_route
from repro.baselines.van_ginneken import van_ginneken_insert
from repro.core.config import MerlinConfig
from repro.core.merlin import merlin
from repro.core.objective import Objective
from repro.geometry.point import Point
from repro.instrument import names as metric
from repro.instrument.recorder import active_recorder, use_recorder
from repro.net import Net, Sink
from repro.orders.tsp import tsp_order
from repro.routing.evaluate import TreeEvaluation, evaluate_tree
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    SteinerNode,
    TreeNode,
)
from repro.routing.validate import validate_tree
from repro.tech.technology import Technology

#: Canonical flow names, matching the paper's tables.
FLOW_I = "flow1_lttree_ptree"
FLOW_II = "flow2_ptree_vg"
FLOW_III = "flow3_merlin"
ALL_FLOWS = (FLOW_I, FLOW_II, FLOW_III)


@dataclass
class FlowResult:
    """One flow's outcome on one net."""

    flow: str
    net: Net
    tree: RoutingTree
    evaluation: TreeEvaluation
    runtime_s: float
    #: MERLIN convergence loop count (1 for the sequential flows).
    loops: int = 1
    #: Flow-specific extras (e.g. MERLIN cost trace).
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def delay(self) -> float:
        return self.evaluation.delay

    @property
    def buffer_area(self) -> float:
        return self.evaluation.buffer_area


def run_flow(flow: str, net: Net, tech: Technology,
             config: Optional[MerlinConfig] = None,
             objective: Optional[Objective] = None) -> FlowResult:
    """Run one of the three flows on ``net`` and evaluate the result."""
    config = config or MerlinConfig()
    objective = objective or Objective.max_required_time()
    rec = config.recorder if config.recorder is not None \
        else active_recorder()
    start = time.perf_counter()
    loops = 1
    extra: Dict[str, object] = {}

    with use_recorder(rec), rec.span(metric.span_flow(flow)):
        if flow == FLOW_I:
            tree = _run_flow1(net, tech, config)
        elif flow == FLOW_II:
            routed = ptree_route(net, tech, order=tsp_order(net),
                                 config=config)
            inserted = van_ginneken_insert(routed.tree, tech, config=config,
                                           objective=objective)
            tree = inserted.tree
        elif flow == FLOW_III:
            result = merlin(net, tech, config=config, objective=objective)
            tree = result.tree
            loops = result.iterations
            extra["cost_trace"] = result.cost_trace
            extra["converged"] = result.converged
        else:
            raise ValueError(
                f"unknown flow: {flow!r} (expected one of {ALL_FLOWS})")

    runtime = time.perf_counter() - start
    if rec.enabled:
        rec.record(metric.FLOW_RUNTIME_S, runtime)
        rec.record(metric.flow_runtime(flow), runtime)
    validate_tree(tree)
    evaluation = evaluate_tree(tree, tech)
    return FlowResult(flow=flow, net=net, tree=tree, evaluation=evaluation,
                      runtime_s=runtime, loops=loops, extra=extra)


def run_all_flows(net: Net, tech: Technology,
                  config: Optional[MerlinConfig] = None,
                  objective: Optional[Objective] = None
                  ) -> Dict[str, FlowResult]:
    """Run Flows I–III on ``net``; keyed by flow name."""
    return {flow: run_flow(flow, net, tech, config, objective)
            for flow in ALL_FLOWS}


# ----------------------------------------------------------------------
# Flow I: LTTREE topology -> placement -> per-stage PTREE routing
# ----------------------------------------------------------------------

def _run_flow1(net: Net, tech: Technology, config: MerlinConfig) -> RoutingTree:
    """Embed the LT-Tree fanout topology into the plane.

    Buffers are placed at the centroid of the sinks they transitively
    drive (the classic post-fanout placement heuristic), then each stage's
    fanout net — its direct sinks plus the next buffer in the chain — is
    routed with PTREE in TSP order.
    """
    fanout = lttree_fanout(net, tech, config=config)
    root = SourceNode(net.source)
    for child in _embed_stage(fanout.root, net.source, net, tech, config):
        root.add_child(child)
    return RoutingTree(net=net, root=root)


def _embed_stage(stage: FanoutNode, driver_pos: Point, net: Net,
                 tech: Technology, config: MerlinConfig) -> List[TreeNode]:
    """Route one fanout stage; return the routed subtrees (driver excluded)."""
    pseudo_sinks: List[Sink] = []
    index_map: Dict[int, int] = {}
    for pseudo, real in enumerate(stage.sink_indices):
        sink = net.sink(real)
        pseudo_sinks.append(Sink(name=f"ps{pseudo}", position=sink.position,
                                 load=sink.load,
                                 required_time=sink.required_time))
        index_map[pseudo] = real

    buffer_pseudo_index: Optional[int] = None
    child = stage.child
    if child is not None:
        position = _stage_centroid(child, net)
        buffer_pseudo_index = len(pseudo_sinks)
        pseudo_sinks.append(Sink(
            name="pbuf", position=position,
            load=child.buffer.input_cap if child.buffer else 0.0,
            required_time=_logic_required_time(child, net, tech)))

    if not pseudo_sinks:
        raise ValueError("fanout stage drives nothing")

    driver_res = (stage.buffer.drive_resistance if stage.buffer
                  else net.driver_resistance)
    driver_int = (stage.buffer.intrinsic_delay if stage.buffer
                  else net.driver_intrinsic)
    pseudo_net = Net(name=f"{net.name}__stage", source=driver_pos,
                     sinks=tuple(pseudo_sinks),
                     driver_resistance=driver_res,
                     driver_intrinsic=driver_int)
    routed = ptree_route(pseudo_net, tech, order=tsp_order(pseudo_net),
                         config=config)

    subtrees: List[TreeNode] = []
    for top_child in routed.tree.root.children:
        subtrees.append(_rewrite(top_child, index_map, buffer_pseudo_index,
                                 child, net, tech, config))
    return subtrees


def _rewrite(node: TreeNode, index_map: Dict[int, int],
             buffer_pseudo_index: Optional[int], child: Optional[FanoutNode],
             net: Net, tech: Technology, config: MerlinConfig) -> TreeNode:
    """Map pseudo-net nodes back to real sinks / the next chain buffer."""
    if isinstance(node, SinkNode):
        if node.sink_index == buffer_pseudo_index:
            assert child is not None
            buffer_node = BufferNode(node.position, child.buffer)
            for subtree in _embed_stage(child, node.position, net, tech,
                                        config):
                buffer_node.add_child(subtree)
            return buffer_node
        return SinkNode(node.position, index_map[node.sink_index])
    clone = SteinerNode(node.position)
    for sub in node.children:
        clone.add_child(_rewrite(sub, index_map, buffer_pseudo_index, child,
                                 net, tech, config))
    return clone


def _stage_centroid(stage: FanoutNode, net: Net) -> Point:
    """Placement heuristic: centroid of all transitively driven sinks."""
    sinks = stage.all_sinks()
    xs = sum(net.sink(i).position.x for i in sinks) / len(sinks)
    ys = sum(net.sink(i).position.y for i in sinks) / len(sinks)
    return Point(xs, ys)


def _logic_required_time(stage: FanoutNode, net: Net,
                         tech: Technology) -> float:
    """Zero-wire required time at this stage's buffer input."""
    direct = [net.sink(i) for i in stage.sink_indices]
    load = sum(s.load for s in direct)
    req = min((s.required_time for s in direct), default=float("inf"))
    if stage.child is not None:
        load += (stage.child.buffer.input_cap if stage.child.buffer else 0.0)
        req = min(req, _logic_required_time(stage.child, net, tech))
    if stage.buffer is None:
        return req
    return req - tech.buffer_delay(stage.buffer, load)
