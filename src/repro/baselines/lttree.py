"""LTTREE [To90]: LT-Tree type-I fanout optimization.

Fanout optimization works in the *logic* domain: sinks have loads and
required times but no positions, and wires are free — the paper's Flow I
runs this first and only afterwards routes each resulting fanout net with
PTREE, which is exactly the sequential-flow weakness MERLIN removes.

An LT-Tree of type I (Lemma 3 of the paper: the α = +∞, no-left-sibling
special case of a Cα_Tree) is a buffer chain: every buffer drives a run of
consecutive sinks plus at most one further buffer continuing the chain.
For sinks ordered by criticality the optimal type-I tree is found by a
simple right-to-left dynamic program over (load, required time, area)
curves — polynomial, per [To90].

``lttree_fanout`` returns an abstract :class:`FanoutNode` topology (no
geometry); :mod:`repro.baselines.flows` embeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import MerlinConfig
from repro.curves.curve import CurveConfig, SolutionCurve
from repro.geometry.point import Point
from repro.net import Net
from repro.orders.heuristics import required_time_order
from repro.orders.order import Order
from repro.tech.buffer import Buffer
from repro.tech.technology import Technology


@dataclass
class FanoutNode:
    """A node of the abstract fanout tree.

    ``sink_indices`` are the sinks this stage drives directly;
    ``child`` is the next buffer down the chain (None at the chain tail);
    ``buffer`` is None only at the root (the net driver itself).
    """

    buffer: Optional[Buffer]
    sink_indices: Tuple[int, ...]
    child: Optional["FanoutNode"] = None

    def all_sinks(self) -> List[int]:
        sinks = list(self.sink_indices)
        if self.child is not None:
            sinks.extend(self.child.all_sinks())
        return sinks

    @property
    def buffer_area(self) -> float:
        area = self.buffer.area if self.buffer is not None else 0.0
        if self.child is not None:
            area += self.child.buffer_area
        return area

    @property
    def depth(self) -> int:
        """Number of buffer stages on the chain from here down."""
        own = 0 if self.buffer is None else 1
        return own + (self.child.depth if self.child is not None else 0)


@dataclass
class LTTreeResult:
    """Outcome of LT-Tree fanout optimization."""

    root: FanoutNode
    #: Required time at the driver input (logic-domain, zero-wire model).
    required_time: float
    #: Load presented to the driver.
    driver_load: float
    #: Total buffer area.
    buffer_area: float
    #: The criticality order used.
    order: Order


@dataclass
class _Entry:
    """One DP curve point: chain suffix starting at position ``i``."""

    load: float
    required_time: float
    area: float
    buffer: Optional[Buffer]
    direct_until: int          # stage drives positions [i, direct_until)
    child_choice: Optional["_Entry"]


def lttree_fanout(net: Net, tech: Technology,
                  order: Optional[Order] = None,
                  config: Optional[MerlinConfig] = None,
                  max_direct: int = 12) -> LTTreeResult:
    """Optimize the fanout tree of ``net`` as an LT-Tree type I.

    Parameters
    ----------
    order:
        Sink criticality order; defaults to ascending required time, per
        the paper's Flow I setup ("the sink order for the LTTREE phase is
        based on the required times of sinks").
    max_direct:
        Cap on sinks driven directly by one stage (keeps the DP quadratic
        rather than letting stages grow unboundedly wide; generous enough
        that the cap never binds on experiment-sized nets).
    """
    config = config or MerlinConfig()
    order = order or required_time_order(net)
    if len(order) != len(net):
        raise ValueError("order size does not match the net")
    buffers = list(tech.buffers if config.library_subset is None
                   else tech.buffers.subset(config.library_subset))
    n = len(net)
    loads = [net.sink(order[i]).load for i in range(n)]
    reqs = [net.sink(order[i]).required_time for i in range(n)]

    # Prefix sums let a stage's direct-sink load/req be O(1).
    # suffix[i] = curve of non-inferior entries for driving positions i..n-1.
    suffix: List[List[_Entry]] = [[] for _ in range(n + 1)]
    suffix[n] = [_Entry(0.0, float("inf"), 0.0, None, n, None)]

    for i in range(n - 1, -1, -1):
        entries: List[_Entry] = []
        direct_load = 0.0
        direct_req = float("inf")
        for j in range(i + 1, min(n, i + max_direct) + 1):
            direct_load += loads[j - 1]
            direct_req = min(direct_req, reqs[j - 1])
            children = suffix[j] if j < n else [None]
            for child in children:
                if child is None:
                    total_load = direct_load
                    total_req = direct_req
                    child_area = 0.0
                else:
                    total_load = direct_load + child.load
                    total_req = min(direct_req, child.required_time)
                    child_area = child.area
                for buffer in buffers:
                    entry = _Entry(
                        load=buffer.input_cap,
                        required_time=total_req - tech.buffer_delay(
                            buffer, total_load),
                        area=child_area + buffer.area,
                        buffer=buffer,
                        direct_until=j,
                        child_choice=child,
                    )
                    entries.append(entry)
        suffix[i] = _prune(entries, config.curve)

    # Root: the net driver drives the chain head directly (no root buffer),
    # or, degenerately, all sinks with no buffers at all.
    best_root: Optional[FanoutNode] = None
    best_req = -float("inf")
    best_load = 0.0
    flat_load = sum(loads)
    flat_req = min(reqs) - tech.driver_delay(
        flat_load, net.driver_resistance, net.driver_intrinsic)
    best_root = FanoutNode(buffer=None,
                           sink_indices=tuple(order[i] for i in range(n)))
    best_req = flat_req
    best_load = flat_load

    for entry in suffix[0]:
        req = entry.required_time - tech.driver_delay(
            entry.load, net.driver_resistance, net.driver_intrinsic)
        if req > best_req:
            best_req = req
            best_load = entry.load
            best_root = FanoutNode(buffer=None, sink_indices=(),
                                   child=_materialize(entry, order))

    return LTTreeResult(
        root=best_root,
        required_time=best_req,
        driver_load=best_load,
        buffer_area=best_root.buffer_area,
        order=order,
    )


def _materialize(entry: _Entry, order: Order, start: int = 0) -> FanoutNode:
    """Turn the winning DP entry chain into :class:`FanoutNode` objects."""
    sinks = tuple(order[q] for q in range(start, entry.direct_until))
    child = None
    if entry.child_choice is not None:
        child = _materialize(entry.child_choice, order, entry.direct_until)
    return FanoutNode(buffer=entry.buffer, sink_indices=sinks, child=child)


def _prune(entries: List[_Entry], config: CurveConfig) -> List[_Entry]:
    """Keep the non-inferior entries (Definition 6 on the entry triples)."""
    if not entries:
        return entries
    entries.sort(key=lambda e: (e.load, -e.required_time, e.area))
    kept: List[_Entry] = []
    for entry in entries:
        if any(other.load <= entry.load
               and other.area <= entry.area
               and other.required_time >= entry.required_time
               for other in kept):
            continue
        kept.append(entry)
    if len(kept) > config.max_solutions:
        kept.sort(key=lambda e: -e.required_time)
        kept = kept[:config.max_solutions]
    return kept
