"""Typed stdlib HTTP client for the MERLIN v1 serving API.

:class:`MerlinClient` is the one sanctioned way for in-repo code (the
load harness, the CLI, service tests, CI smoke jobs) to talk to a
running front end — sync or async, same protocol.  Raw ``urllib`` call
sites drift out of sync with the envelope; the client centralizes:

* envelope decoding into :class:`ClientResponse`;
* error mapping back onto the :mod:`repro.resilience.errors` taxonomy
  (a 400 raises :class:`~repro.resilience.errors.MerlinInputError`
  subclasses, a 429 raises ``AdmissionRejectedError``, and so on —
  reconstructed from the wire record, so callers catch typed errors);
* bounded retries with seeded, jittered exponential backoff on 429/503
  and transport failures, honoring ``Retry-After``;
* optional hedged requests (:class:`HedgePolicy`) — a second, identical
  attempt after the observed p95 latency for idempotent endpoints,
  first answer wins, extra load capped by a hedge budget.
"""

from repro.client.http import (
    ClientResponse,
    ClientTransportError,
    HedgePolicy,
    MerlinClient,
    RetryPolicy,
)

__all__ = [
    "ClientResponse",
    "ClientTransportError",
    "HedgePolicy",
    "MerlinClient",
    "RetryPolicy",
]
