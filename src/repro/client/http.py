""":class:`MerlinClient` — the typed v1 API client (stdlib only).

Retry semantics: a request is retried only when retrying can plausibly
change the answer — HTTP **429** (queue full; the server names a
``Retry-After``) , **503** (transient resource exhaustion), and
transport-level failures (connection refused/reset while a server
restarts).  Input errors (4xx other than 429) and internal errors (500)
are *not* retried: the same request would fail the same way, and
hammering a broken server helps nobody.

Backoff between attempts is exponential with full jitter, drawn from a
**seeded** ``random.Random`` (the repo-wide determinism rule: replayed
load runs sleep the same schedule).  A server-provided ``Retry-After``
floors the computed delay — the server knows its queue better than the
client's guess.

Hedging (off by default; pass a :class:`HedgePolicy`): for idempotent
requests — ``GET``\\ s and ``POST /v1/optimize``, whose answer is a
deterministic, cache-backed function of the body — the client fires a
*second* identical attempt when the first has been in flight longer
than the observed p95 latency (seeded initial guess until enough
samples accumulate), and takes whichever answer lands first.  A hedge
budget caps extra load at a fraction of eligible traffic, so tail
trimming cannot double the fleet's work.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Mapping, Optional, Tuple, \
    Union

from repro.net import Net, net_to_dict
from repro.resilience.errors import (
    ErrorRecord,
    MerlinError,
    MerlinResourceError,
    error_from_record,
)

#: Statuses worth retrying (see module docstring).
RETRYABLE_STATUSES = (429, 503)


class ClientTransportError(MerlinResourceError):
    """The server could not be reached (or retries ran out trying)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded jittered exponential backoff.

    ``sleep`` is injectable so tests assert the schedule without
    actually sleeping.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    seed: int = 1999
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def delay_s(self, attempt: int, rng: random.Random,
                retry_after_s: Optional[float] = None) -> float:
        """Delay before retry number ``attempt`` (1-based): full-jitter
        exponential backoff, floored by the server's ``Retry-After``."""
        ceiling = min(self.max_delay_s,
                      self.base_delay_s * (2 ** (attempt - 1)))
        delay = rng.uniform(0.0, ceiling)
        if retry_after_s is not None:
            delay = max(delay, retry_after_s)
        return delay


@dataclass(frozen=True)
class HedgePolicy:
    """When and how aggressively to hedge idempotent requests.

    The hedge fires after the rolling ``percentile`` latency of past
    successes (``delay_s`` until ``min_samples`` have been observed).
    ``budget_fraction`` bounds issued hedges as a fraction of
    hedge-eligible requests — the classic tail-at-scale guard against a
    slow server turning every request into two.
    """

    #: Hedge delay before enough latency samples exist (seconds).
    delay_s: float = 0.05
    #: Latency percentile that arms the hedge once samples accumulate.
    percentile: float = 0.95
    #: Samples required before the percentile replaces ``delay_s``.
    min_samples: int = 8
    #: Rolling latency-sample window.
    window: int = 64
    #: Max fraction of eligible requests that may grow a hedge.
    budget_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.delay_s <= 0.0:
            raise ValueError("delay_s must be positive")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if self.min_samples < 1 or self.window < self.min_samples:
            raise ValueError("need 1 <= min_samples <= window")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")


@dataclass
class ClientResponse:
    """One decoded v1 response (or legacy body, for shim testing)."""

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str]
    #: Retries performed before this answer arrived (0 = first try).
    retries: int = 0

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        return self.body.get("result")

    @property
    def error(self) -> Optional[Dict[str, Any]]:
        return self.body.get("error")

    @property
    def request_id(self) -> Optional[str]:
        return self.body.get("request_id")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300 and self.error is None

    def error_record(self) -> Optional[ErrorRecord]:
        """The structured failure, rebuilt from the envelope (or from a
        legacy ``error_detail`` body)."""
        error = self.body.get("error")
        if isinstance(error, dict) and isinstance(error.get("detail"), dict):
            return ErrorRecord.from_dict(error["detail"])
        detail = self.body.get("error_detail")
        if isinstance(detail, dict):
            return ErrorRecord.from_dict(detail)
        return None

    def raise_for_error(self) -> None:
        """Raise the typed taxonomy error this response carries, if any."""
        if self.ok:
            return
        record = self.error_record()
        if record is not None:
            raise error_from_record(record)
        raise MerlinError(f"HTTP {self.status}: {self.body!r}",
                          stage="client")


class MerlinClient:
    """Talk v1 to a MERLIN front end at ``base_url``.

    The client is stateless apart from its RNG, so one instance may be
    shared across threads for *distinct* requests; the load harness
    gives each worker its own (seeded) client so replayed schedules
    stay per-worker deterministic.
    """

    def __init__(self, base_url: str,
                 timeout_s: float = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 hedge: Optional[HedgePolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge = hedge
        self._rng = random.Random(self.retry.seed)
        self._hedge_lock = threading.Lock()
        self._latencies: Deque[float] = deque(
            maxlen=hedge.window if hedge is not None else 64)
        self._hedge_eligible = 0
        self._hedge_issued = 0
        self._hedge_wins = 0

    # -- endpoint methods ----------------------------------------------

    def optimize(self, net: Union[Net, Mapping[str, Any]],
                 timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Optimize one net; returns the result payload (tree, signature,
        evaluation, ``cached``) or raises the typed taxonomy error."""
        payload: Dict[str, Any] = {
            "net": net_to_dict(net) if isinstance(net, Net) else dict(net)}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        response = self.request("POST", "/v1/optimize", payload)
        response.raise_for_error()
        assert response.result is not None
        return response.result

    def closure(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        """Run full-netlist timing closure; returns the closure report."""
        response = self.request("POST", "/v1/closure", dict(body))
        response.raise_for_error()
        assert response.result is not None
        return response.result

    def stats(self) -> Dict[str, Any]:
        response = self.request("GET", "/v1/stats")
        response.raise_for_error()
        assert response.result is not None
        return response.result

    def healthz(self) -> bool:
        try:
            response = self.request("GET", "/v1/healthz")
        except MerlinError:
            return False
        return response.ok

    def wait_healthy(self, timeout_s: float = 10.0,
                     interval_s: float = 0.05) -> bool:
        """Poll ``/v1/healthz`` until it answers ok or ``timeout_s``
        passes (servers bind asynchronously in tests and CI)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                if self._request_once("GET", "/v1/healthz").ok:
                    return True
            except (ClientTransportError, MerlinError):
                pass
            if time.monotonic() >= deadline:
                return False
            self.retry.sleep(interval_s)

    # -- transport ------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Mapping[str, Any]] = None
                ) -> ClientResponse:
        """One logical request, with the retry policy applied."""
        attempts = max(1, self.retry.max_attempts)
        last: Optional[ClientResponse] = None
        last_exc: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                response = self._attempt(method, path, payload)
            except ClientTransportError as exc:
                last, last_exc = None, exc
                if attempt < attempts:
                    self.retry.sleep(self.retry.delay_s(attempt, self._rng))
                continue
            if response.status not in RETRYABLE_STATUSES:
                response.retries = attempt - 1
                return response
            last, last_exc = response, None
            if attempt < attempts:
                retry_after = _parse_retry_after(response.headers)
                self.retry.sleep(
                    self.retry.delay_s(attempt, self._rng, retry_after))
        if last is not None:
            last.retries = attempts - 1
            return last
        raise ClientTransportError(
            f"{method} {self.base_url}{path} failed after {attempts} "
            f"attempts: {last_exc}", stage="client")

    # -- hedging --------------------------------------------------------

    def hedge_delay_s(self) -> float:
        """The current hedge trigger: the policy's rolling-percentile
        latency once enough samples exist, its fixed guess before."""
        assert self.hedge is not None
        with self._hedge_lock:
            samples = sorted(self._latencies)
        if len(samples) < self.hedge.min_samples:
            return self.hedge.delay_s
        rank = int(self.hedge.percentile * (len(samples) - 1))
        return samples[rank]

    def hedge_stats(self) -> Dict[str, Any]:
        """Hedge accounting for the load harness and tests."""
        with self._hedge_lock:
            return {
                "enabled": self.hedge is not None,
                "eligible": self._hedge_eligible,
                "issued": self._hedge_issued,
                "wins": self._hedge_wins,
                "latency_samples": len(self._latencies),
            }

    def _hedgeable(self, method: str, path: str) -> bool:
        """Only idempotent work is hedged: GETs, and ``/v1/optimize``
        whose answer is a deterministic function of the body (the
        engine is seeded and cache-backed, so a duplicate is free on
        the server and identical on the wire)."""
        if self.hedge is None:
            return False
        return method == "GET" or path == "/v1/optimize"

    def _hedge_budget_ok(self) -> bool:
        """Issued hedges must stay under ``budget_fraction`` of the
        eligible traffic (with a one-hedge floor so the budget is not
        permanently zero at startup).  Caller holds the lock."""
        assert self.hedge is not None
        cap = max(1.0, self.hedge.budget_fraction * self._hedge_eligible)
        return self._hedge_issued < cap

    def _attempt(self, method: str, path: str,
                 payload: Optional[Mapping[str, Any]] = None
                 ) -> ClientResponse:
        """One attempt of the retry loop: plain, or raced with a hedge."""
        if not self._hedgeable(method, path):
            return self._request_once(method, path, payload)
        with self._hedge_lock:
            self._hedge_eligible += 1
            may_hedge = self._hedge_budget_ok()

        started = time.monotonic()
        outcomes: "queue.Queue[Tuple[str, Optional[ClientResponse], " \
            "Optional[Exception]]]" = queue.Queue()

        def run(which: str) -> None:
            try:
                outcomes.put((which,
                              self._request_once(method, path, payload),
                              None))
            except Exception as exc:  # first-wins needs both outcomes
                outcomes.put((which, None, exc))

        threading.Thread(target=run, args=("primary",),
                         name="merlin-client-primary", daemon=True).start()
        racers = 1
        if may_hedge:
            try:
                which, response, exc = outcomes.get(
                    timeout=self.hedge_delay_s())
            except queue.Empty:
                with self._hedge_lock:
                    self._hedge_issued += 1
                threading.Thread(target=run, args=("hedge",),
                                 name="merlin-client-hedge",
                                 daemon=True).start()
                racers = 2
                which, response, exc = outcomes.get()
        else:
            which, response, exc = outcomes.get()
        if response is None and racers == 2:
            # First finisher failed; the straggler may still answer.
            which, response, second_exc = outcomes.get()
            exc = exc if response is None else None
        if response is None:
            assert exc is not None
            raise exc
        with self._hedge_lock:
            self._latencies.append(time.monotonic() - started)
            if which == "hedge":
                self._hedge_wins += 1
        return response

    def _request_once(self, method: str, path: str,
                      payload: Optional[Mapping[str, Any]] = None
                      ) -> ClientResponse:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as raw:
                return _decode(raw.status, raw.read(), raw.headers)
        except urllib.error.HTTPError as exc:
            # Non-2xx still carries a JSON envelope — decode, don't raise.
            return _decode(exc.code, exc.read(), exc.headers)
        except (urllib.error.URLError, ConnectionError, TimeoutError,
                OSError) as exc:
            raise ClientTransportError(
                f"{method} {url}: {exc}", stage="client")


def _decode(status: int, blob: bytes, headers: Any) -> ClientResponse:
    try:
        body = json.loads(blob) if blob else {}
    except json.JSONDecodeError:
        body = {"raw": blob.decode("utf-8", "replace")}
    if not isinstance(body, dict):
        body = {"raw": body}
    return ClientResponse(status=status, body=body,
                          headers={k: v for k, v in headers.items()})


def _parse_retry_after(headers: Mapping[str, str]) -> Optional[float]:
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except ValueError:
                return None
    return None
