""":class:`MerlinClient` — the typed v1 API client (stdlib only).

Retry semantics: a request is retried only when retrying can plausibly
change the answer — HTTP **429** (queue full; the server names a
``Retry-After``) , **503** (transient resource exhaustion), and
transport-level failures (connection refused/reset while a server
restarts).  Input errors (4xx other than 429) and internal errors (500)
are *not* retried: the same request would fail the same way, and
hammering a broken server helps nobody.

Backoff between attempts is exponential with full jitter, drawn from a
**seeded** ``random.Random`` (the repo-wide determinism rule: replayed
load runs sleep the same schedule).  A server-provided ``Retry-After``
floors the computed delay — the server knows its queue better than the
client's guess.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.net import Net, net_to_dict
from repro.resilience.errors import (
    ErrorRecord,
    MerlinError,
    MerlinResourceError,
    error_from_record,
)

#: Statuses worth retrying (see module docstring).
RETRYABLE_STATUSES = (429, 503)


class ClientTransportError(MerlinResourceError):
    """The server could not be reached (or retries ran out trying)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded jittered exponential backoff.

    ``sleep`` is injectable so tests assert the schedule without
    actually sleeping.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    seed: int = 1999
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def delay_s(self, attempt: int, rng: random.Random,
                retry_after_s: Optional[float] = None) -> float:
        """Delay before retry number ``attempt`` (1-based): full-jitter
        exponential backoff, floored by the server's ``Retry-After``."""
        ceiling = min(self.max_delay_s,
                      self.base_delay_s * (2 ** (attempt - 1)))
        delay = rng.uniform(0.0, ceiling)
        if retry_after_s is not None:
            delay = max(delay, retry_after_s)
        return delay


@dataclass
class ClientResponse:
    """One decoded v1 response (or legacy body, for shim testing)."""

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str]
    #: Retries performed before this answer arrived (0 = first try).
    retries: int = 0

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        return self.body.get("result")

    @property
    def error(self) -> Optional[Dict[str, Any]]:
        return self.body.get("error")

    @property
    def request_id(self) -> Optional[str]:
        return self.body.get("request_id")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300 and self.error is None

    def error_record(self) -> Optional[ErrorRecord]:
        """The structured failure, rebuilt from the envelope (or from a
        legacy ``error_detail`` body)."""
        error = self.body.get("error")
        if isinstance(error, dict) and isinstance(error.get("detail"), dict):
            return ErrorRecord.from_dict(error["detail"])
        detail = self.body.get("error_detail")
        if isinstance(detail, dict):
            return ErrorRecord.from_dict(detail)
        return None

    def raise_for_error(self) -> None:
        """Raise the typed taxonomy error this response carries, if any."""
        if self.ok:
            return
        record = self.error_record()
        if record is not None:
            raise error_from_record(record)
        raise MerlinError(f"HTTP {self.status}: {self.body!r}",
                          stage="client")


class MerlinClient:
    """Talk v1 to a MERLIN front end at ``base_url``.

    The client is stateless apart from its RNG, so one instance may be
    shared across threads for *distinct* requests; the load harness
    gives each worker its own (seeded) client so replayed schedules
    stay per-worker deterministic.
    """

    def __init__(self, base_url: str,
                 timeout_s: float = 60.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(self.retry.seed)

    # -- endpoint methods ----------------------------------------------

    def optimize(self, net: Union[Net, Mapping[str, Any]],
                 timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Optimize one net; returns the result payload (tree, signature,
        evaluation, ``cached``) or raises the typed taxonomy error."""
        payload: Dict[str, Any] = {
            "net": net_to_dict(net) if isinstance(net, Net) else dict(net)}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        response = self.request("POST", "/v1/optimize", payload)
        response.raise_for_error()
        assert response.result is not None
        return response.result

    def closure(self, body: Mapping[str, Any]) -> Dict[str, Any]:
        """Run full-netlist timing closure; returns the closure report."""
        response = self.request("POST", "/v1/closure", dict(body))
        response.raise_for_error()
        assert response.result is not None
        return response.result

    def stats(self) -> Dict[str, Any]:
        response = self.request("GET", "/v1/stats")
        response.raise_for_error()
        assert response.result is not None
        return response.result

    def healthz(self) -> bool:
        try:
            response = self.request("GET", "/v1/healthz")
        except MerlinError:
            return False
        return response.ok

    def wait_healthy(self, timeout_s: float = 10.0,
                     interval_s: float = 0.05) -> bool:
        """Poll ``/v1/healthz`` until it answers ok or ``timeout_s``
        passes (servers bind asynchronously in tests and CI)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                if self._request_once("GET", "/v1/healthz").ok:
                    return True
            except (ClientTransportError, MerlinError):
                pass
            if time.monotonic() >= deadline:
                return False
            self.retry.sleep(interval_s)

    # -- transport ------------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Mapping[str, Any]] = None
                ) -> ClientResponse:
        """One logical request, with the retry policy applied."""
        attempts = max(1, self.retry.max_attempts)
        last: Optional[ClientResponse] = None
        last_exc: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                response = self._request_once(method, path, payload)
            except ClientTransportError as exc:
                last, last_exc = None, exc
                if attempt < attempts:
                    self.retry.sleep(self.retry.delay_s(attempt, self._rng))
                continue
            if response.status not in RETRYABLE_STATUSES:
                response.retries = attempt - 1
                return response
            last, last_exc = response, None
            if attempt < attempts:
                retry_after = _parse_retry_after(response.headers)
                self.retry.sleep(
                    self.retry.delay_s(attempt, self._rng, retry_after))
        if last is not None:
            last.retries = attempts - 1
            return last
        raise ClientTransportError(
            f"{method} {self.base_url}{path} failed after {attempts} "
            f"attempts: {last_exc}", stage="client")

    def _request_once(self, method: str, path: str,
                      payload: Optional[Mapping[str, Any]] = None
                      ) -> ClientResponse:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as raw:
                return _decode(raw.status, raw.read(), raw.headers)
        except urllib.error.HTTPError as exc:
            # Non-2xx still carries a JSON envelope — decode, don't raise.
            return _decode(exc.code, exc.read(), exc.headers)
        except (urllib.error.URLError, ConnectionError, TimeoutError,
                OSError) as exc:
            raise ClientTransportError(
                f"{method} {url}: {exc}", stage="client")


def _decode(status: int, blob: bytes, headers: Any) -> ClientResponse:
    try:
        body = json.loads(blob) if blob else {}
    except json.JSONDecodeError:
        body = {"raw": blob.decode("utf-8", "replace")}
    if not isinstance(body, dict):
        body = {"raw": body}
    return ClientResponse(status=status, body=body,
                          headers={k: v for k, v in headers.items()})


def _parse_retry_after(headers: Mapping[str, str]) -> Optional[float]:
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except ValueError:
                return None
    return None
