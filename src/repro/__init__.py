"""MERLIN reproduction: hierarchical buffered routing tree generation.

A from-scratch Python implementation of *"MERLIN: Semi-Order-Independent
Hierarchical Buffered Routing Tree Generation Using Local Neighborhood
Search"* (Salek, Lou, Pedram — DAC 1999), together with every substrate the
paper's evaluation depends on: the P-Tree router of Lillis et al., Touati's
LT-Tree fanout optimization, van Ginneken buffer insertion, an Elmore/
4-parameter timing model, a synthetic 0.35um buffer library, and a
netlist/STA/placement flow for the circuit-level experiment.

Quick start::

    from repro import Net, Sink, Point, optimize

    net = Net("demo", source=Point(0, 0), sinks=(
        Sink("a", Point(900, 300), load=12.0, required_time=900.0),
        Sink("b", Point(300, 1200), load=20.0, required_time=880.0),
    ))
    outcome = optimize(net)
    print(outcome.tree.buffer_area, outcome.iterations)

:func:`optimize` is the facade over every execution path (single run,
multi-start restarts, the cached batch service); ``merlin()`` remains
the bare deterministic engine underneath it.

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.geometry.point import Point
from repro.net import Net, Sink, make_net
from repro.tech.technology import Technology, default_technology
from repro.core.config import MerlinConfig
from repro.core.objective import Objective
from repro.core.merlin import MerlinResult, merlin
from repro.core.bubble_construct import BubbleConstructResult, bubble_construct
from repro.routing.evaluate import TreeEvaluation, evaluate_tree
from repro.routing.tree import RoutingTree
from repro.instrument import NullRecorder, Recorder, use_recorder
from repro.resilience import (
    ComputeBudget,
    FaultPlan,
    MerlinError,
    MerlinInputError,
    MerlinInternalError,
    MerlinResourceError,
)
from repro.api import OptimizeOutcome, optimize
from repro.service import (
    OptimizationService,
    ResultCache,
    ServiceResult,
    optimize_many,
)

__version__ = "1.3.0"

__all__ = [
    "Point",
    "Net",
    "Sink",
    "make_net",
    "Technology",
    "default_technology",
    "MerlinConfig",
    "Objective",
    "MerlinResult",
    "merlin",
    "BubbleConstructResult",
    "bubble_construct",
    "TreeEvaluation",
    "evaluate_tree",
    "RoutingTree",
    "Recorder",
    "NullRecorder",
    "use_recorder",
    "ComputeBudget",
    "FaultPlan",
    "MerlinError",
    "MerlinInputError",
    "MerlinResourceError",
    "MerlinInternalError",
    "optimize",
    "OptimizeOutcome",
    "OptimizationService",
    "ServiceResult",
    "ResultCache",
    "optimize_many",
    "__version__",
]
