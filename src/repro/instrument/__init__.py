"""Zero-dependency observability for the MERLIN engine.

Counters, value series, structured events, and hierarchical timing
spans, recorded through one tiny interface with a no-op default so the
engine's hot paths stay cheap when instrumentation is off.  See
:mod:`repro.instrument.names` for the stable metric-name contract and
README.md ("Instrumentation") for usage and an example report.

Typical use::

    from repro.instrument import Recorder
    rec = Recorder()
    result = merlin(net, tech, config=config.with_(recorder=rec))
    print(report_to_json(rec.report()))
"""

from repro.instrument.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SeriesStats,
    SpanStats,
    active_recorder,
    install_recorder,
    use_recorder,
)
from repro.instrument.report import (
    dump_report,
    load_report,
    merge_reports,
    report_from_json,
    report_to_json,
    validate_report,
)
from repro.instrument import names

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SeriesStats",
    "SpanStats",
    "active_recorder",
    "install_recorder",
    "use_recorder",
    "merge_reports",
    "report_to_json",
    "report_from_json",
    "dump_report",
    "load_report",
    "validate_report",
    "names",
]
