"""Counters, series, events, and hierarchical timing spans.

The engine is instrumented against one tiny interface (``incr`` /
``record`` / ``event`` / ``span`` plus the ``enabled`` flag) with two
implementations:

* :class:`Recorder` — accumulates everything in plain dicts and can dump
  a JSON-serializable report.
* :class:`NullRecorder` — the module-wide default.  Every method is a
  no-op and ``enabled`` is False, so instrumented call sites reduce to
  one attribute check; expensive metric *inputs* (curve sizes, order
  snapshots) must be guarded by ``if rec.enabled:`` at the call site and
  therefore cost nothing when disabled.

A recorder is activated either by passing it explicitly through
``MerlinConfig.recorder`` or by installing it as the process-wide active
recorder with :func:`use_recorder`; low-level code (curve pruning, the
*PTREE kernels) always reads the active recorder so it needs no plumbing
through every call signature.  The engine is single-threaded; the active
recorder is a plain module global, not a context-var.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class SeriesStats:
    """Streaming summary of one observed value series."""

    __slots__ = ("count", "total", "minimum", "maximum", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.last = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "last": self.last,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SeriesStats":
        stats = cls()
        stats.count = int(data["count"])
        stats.total = float(data["total"])
        stats.minimum = float(data["min"])
        stats.maximum = float(data["max"])
        stats.last = float(data["last"])
        return stats


class SpanStats:
    """Aggregate of every execution of one span path."""

    __slots__ = ("count", "total_s")

    def __init__(self, count: int = 0, total_s: float = 0.0) -> None:
        self.count = count
        self.total_s = total_s

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total_s": self.total_s}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SpanStats":
        return cls(count=int(data["count"]), total_s=float(data["total_s"]))


class _Span:
    """Context manager for one live span; created by :meth:`Recorder.span`."""

    __slots__ = ("_rec", "_name", "_path", "_start")

    def __init__(self, rec: "Recorder", name: str) -> None:
        self._rec = rec
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = self._rec._span_stack
        self._path = f"{stack[-1]}/{self._name}" if stack else self._name
        stack.append(self._path)
        self._start = self._rec._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = self._rec._clock() - self._start
        self._rec._span_stack.pop()
        stats = self._rec.spans.get(self._path)
        if stats is None:
            stats = self._rec.spans[self._path] = SpanStats()
        stats.count += 1
        stats.total_s += elapsed


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Current schema version of :meth:`Recorder.report`.
REPORT_VERSION = 1


class NullRecorder:
    """The disabled recorder: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def incr(self, name: str, n: int = 1) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, **fields: Any) -> None:
        return None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: Shared no-op instance; identity-compared nowhere, safe to reuse.
NULL_RECORDER = NullRecorder()


class Recorder:
    """Accumulates counters, series, events, and timing spans.

    ``clock`` is injectable for deterministic tests; it defaults to
    :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.counters: Dict[str, int] = {}
        self.series: Dict[str, SeriesStats] = {}
        self.events: Dict[str, List[Dict[str, Any]]] = {}
        self.spans: Dict[str, SpanStats] = {}
        self._span_stack: List[str] = []
        self._clock = clock or time.perf_counter

    # -- write API -----------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def record(self, name: str, value: float) -> None:
        """Observe ``value`` on series ``name``."""
        stats = self.series.get(name)
        if stats is None:
            stats = self.series[name] = SeriesStats()
        stats.observe(value)

    def event(self, name: str, **fields: Any) -> None:
        """Append one structured record to the ``name`` event stream.

        Field values must be JSON-serializable; the caller guards the
        (possibly expensive) field construction with ``rec.enabled``.
        """
        self.events.setdefault(name, []).append(fields)

    def span(self, name: str) -> _Span:
        """Open a timing span; nest via ``with`` to build span paths."""
        return _Span(self, name)

    # -- read API ------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def report(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of everything recorded."""
        return {
            "version": REPORT_VERSION,
            "counters": dict(self.counters),
            "series": {k: v.as_dict() for k, v in self.series.items()},
            "spans": {k: v.as_dict() for k, v in self.spans.items()},
            "events": {k: [dict(e) for e in v]
                       for k, v in self.events.items()},
        }

    @classmethod
    def from_report(cls, report: Dict[str, Any]) -> "Recorder":
        """Rebuild a recorder from :meth:`report` output (round-trip)."""
        version = report.get("version")
        if version != REPORT_VERSION:
            raise ValueError(f"unsupported report version: {version!r}")
        rec = cls()
        rec.counters = {str(k): int(v)
                        for k, v in report.get("counters", {}).items()}
        rec.series = {str(k): SeriesStats.from_dict(v)
                      for k, v in report.get("series", {}).items()}
        rec.spans = {str(k): SpanStats.from_dict(v)
                     for k, v in report.get("spans", {}).items()}
        rec.events = {str(k): [dict(e) for e in v]
                      for k, v in report.get("events", {}).items()}
        return rec


# ----------------------------------------------------------------------
# The process-wide active recorder
# ----------------------------------------------------------------------

_ACTIVE: Any = NULL_RECORDER


def active_recorder() -> Any:
    """The currently installed recorder (the no-op one by default)."""
    return _ACTIVE


def install_recorder(recorder: Any) -> Any:
    """Install ``recorder`` as the active one; return the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Any) -> Iterator[Any]:
    """Scope ``recorder`` as the active recorder for a ``with`` block."""
    previous = install_recorder(recorder)
    try:
        yield recorder
    finally:
        install_recorder(previous)
