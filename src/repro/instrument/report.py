"""Serialize, load, and validate instrumentation reports.

A *report* is the plain-dict snapshot produced by
:meth:`repro.instrument.Recorder.report`; this module owns its JSON
framing so every producer (the ``--stats`` CLI flag, test fixtures) and
consumer (``repro.analysis.instrument_summary``) agrees on one format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Union

from repro.instrument.recorder import (
    REPORT_VERSION,
    Recorder,
    SeriesStats,
    SpanStats,
)

_SECTIONS = ("counters", "series", "spans", "events")


def report_to_json(report: Dict[str, Any], indent: int = 2) -> str:
    """Render ``report`` as deterministic (sorted-key) JSON."""
    validate_report(report)
    return json.dumps(report, indent=indent, sort_keys=True)


def report_from_json(text: str) -> Dict[str, Any]:
    """Parse and validate a JSON report string."""
    report = json.loads(text)
    validate_report(report)
    return report


def dump_report(report: Dict[str, Any], path: str) -> None:
    """Write ``report`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report_to_json(report))
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Read a JSON report from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return report_from_json(handle.read())


def validate_report(report: Any) -> None:
    """Raise ``ValueError`` unless ``report`` has the expected shape."""
    if not isinstance(report, dict):
        raise ValueError("report must be a dict")
    if report.get("version") != REPORT_VERSION:
        raise ValueError(
            f"unsupported report version: {report.get('version')!r}")
    for section in _SECTIONS:
        if not isinstance(report.get(section), dict):
            raise ValueError(f"report section {section!r} missing or invalid")


def merge_reports(reports: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-worker reports into one, deterministically.

    The merge is a pure fold over ``reports`` *in the given order* —
    callers (the :mod:`repro.parallel` drivers) pass reports in task
    submission order, so the merged output is independent of worker
    scheduling and completion order.  Counters and span aggregates sum;
    series combine their streaming summaries (``last`` takes the value
    from the last report that observed the series); event streams
    concatenate.
    """
    merged = Recorder()
    for report in reports:
        validate_report(report)
        for name, value in report["counters"].items():
            merged.incr(str(name), int(value))
        for name, data in report["series"].items():
            incoming = SeriesStats.from_dict(data)
            if incoming.count == 0:
                continue
            stats = merged.series.get(str(name))
            if stats is None:
                merged.series[str(name)] = incoming
                continue
            stats.count += incoming.count
            stats.total += incoming.total
            stats.minimum = min(stats.minimum, incoming.minimum)
            stats.maximum = max(stats.maximum, incoming.maximum)
            stats.last = incoming.last
        for name, data in report["spans"].items():
            incoming_span = SpanStats.from_dict(data)
            span = merged.spans.get(str(name))
            if span is None:
                merged.spans[str(name)] = incoming_span
            else:
                span.count += incoming_span.count
                span.total_s += incoming_span.total_s
        for name, events in report["events"].items():
            merged.events.setdefault(str(name), []).extend(
                dict(e) for e in events)
    return merged.report()


def coerce_recorder(source: Union[Recorder, Dict[str, Any], str]) -> Recorder:
    """Accept a recorder, a report dict, or a JSON string; return a Recorder."""
    if isinstance(source, Recorder):
        return source
    if isinstance(source, str):
        source = report_from_json(source)
    return Recorder.from_report(source)
