"""Stable metric names emitted by the instrumented engine.

These constants are the *interface contract* of the instrumentation
layer: downstream tooling (the ``--stats`` CLI report, the
``repro.analysis.instrument_summary`` helper, and any perf dashboards
built on recorded runs) keys on these exact strings, so renaming one is
a breaking change and must be treated like renaming a public function.

Naming scheme: ``<subsystem>.<thing>[.<aspect>]``, all lowercase, dots as
separators.  Timing spans use bare subsystem names; nested spans are
reported under their slash-joined path (e.g.
``merlin/bubble_construct/ptree``).
"""

from __future__ import annotations

# -- counters ----------------------------------------------------------

#: Outer-loop BUBBLE_CONSTRUCT invocations ("Loops" column of Table 1).
MERLIN_ITERATIONS = "merlin.iterations"

#: Γ-table cells materialized (single-sink base cells + parent cells).
BUBBLE_CELLS = "bubble.cells"
#: Hierarchy levels routed (one *PTREE range per level).
BUBBLE_LEVELS = "bubble.levels"
#: Distinct *PTREE sub-ranges computed (after memoization).
BUBBLE_RANGES = "bubble.ranges"
#: Range-memo hits — the Lemma 7 sharing actually realized.
BUBBLE_RANGE_MEMO_HITS = "bubble.range_memo_hits"
#: Child groups with a non-trivial grouping structure (e != 0) that
#: contributed solutions — how often the bubbling neighborhood pays off.
BUBBLE_NEIGHBORHOOD_HITS = "bubble.neighborhood_hits"

#: *PTREE join invocations (one per split point per range).
PTREE_JOIN_CALLS = "ptree.join.calls"
#: Candidate solution pairs enumerated across all joins.
PTREE_JOIN_PAIRS = "ptree.join.pairs"
#: Buffer options offered at range roots (per ``_buffer_all`` call site).
PTREE_BUFFER_OFFERS = "ptree.buffer.offers"
#: Root-relocation relaxation passes executed.
PTREE_RELOCATE_PASSES = "ptree.relocate.passes"
#: Sink base curves built (cache misses; hits stay silent).
PTREE_BASE_CURVES = "ptree.base_curves"
#: Buffer offers skipped by the Li & Shi predecessor (shadow) table —
#: candidates provably rejected by the bucket map without computing keys.
PTREE_BUFFER_SHADOW_SKIPS = "ptree.buffer.shadow_skips"

#: Γ-table cells reused across MERLIN iterations via the content-keyed
#: group memo (leaf fingerprints unchanged → prior slice reused).
BUBBLE_GAMMA_MEMO_HITS = "bubble.gamma_memo_hits"

#: SolutionCurve.prune invocations that had work to do.
CURVE_PRUNE_CALLS = "curve.prune.calls"
#: Solutions discarded by those prunes (dominated or over-cap).
CURVE_PRUNE_REMOVED = "curve.prune.removed"

#: repro.curves.ops combinator invocations (the non-hot convenience API).
OPS_EXTEND = "curve.ops.extend"
OPS_JOIN = "curve.ops.join"
OPS_BUFFER = "curve.ops.buffer"

#: van Ginneken buffer-insertion candidate sites visited (hops).
VG_HOPS = "vg.hops"

#: Optimization-service requests served (HTTP and library entry points).
SERVICE_REQUESTS = "service.requests"
#: Requests rejected or failed (bad payload, engine error, timeout).
SERVICE_ERRORS = "service.errors"
#: Canonical-net cache hits (memory or disk) — no DP run needed.
SERVICE_CACHE_HITS = "service.cache.hits"
#: Canonical-net cache misses — a full engine run was paid.
SERVICE_CACHE_MISSES = "service.cache.misses"
#: Batch-engine jobs dispatched (cache misses that became pool work).
SERVICE_JOBS = "service.jobs"
#: Jobs that raised inside a worker (isolated, not fatal to the batch).
SERVICE_JOB_FAILURES = "service.job.failures"
#: Jobs abandoned after exceeding the per-job timeout.
SERVICE_JOB_TIMEOUTS = "service.job.timeouts"
#: Requests arriving on a deprecated pre-v1 HTTP path (`/optimize`,
#: `/closure`, `/stats`, `/healthz` without the `/v1` prefix).
SERVICE_HTTP_LEGACY_PATH = "service.http.legacy_path"

#: Requests accepted by the async front end's admission control.
SERVE_ADMITTED = "serve.admitted"
#: Requests rejected with 429 because the bounded queue was full.
SERVE_REJECTED = "serve.rejected"
#: Requests rerouted inline because their shard could not take them.
SERVE_SHARD_FAILOVERS = "serve.shard.failovers"
#: Circuit-breaker trips (closed/half-open -> open), summed over shards.
SERVE_BREAKER_OPENS = "serve.breaker.opens"
#: Dispatches skipped because the shard's breaker was open.
SERVE_BREAKER_SHORT_CIRCUITS = "serve.breaker.short_circuits"
#: Supervisor health probes dispatched (all shards).
SERVE_SUPERVISOR_PROBES = "serve.supervisor.probes"
#: Supervisor health probes that failed (fed the shard's breaker).
SERVE_SUPERVISOR_PROBE_FAILURES = "serve.supervisor.probe_failures"
#: Shard worker pools restarted by the supervisor after a breaker trip.
SERVE_SUPERVISOR_RESTARTS = "serve.supervisor.restarts"
#: Times sustained admission pressure flipped the front end into
#: brownout (degrade-don't-reject) mode.
SERVE_BROWNOUT_ENTERED = "serve.brownout.entered"
#: Would-be-429 requests admitted as fast-preset (degraded) work while
#: browned out.
SERVE_BROWNOUT_ADMITTED = "serve.brownout.admitted"
#: Requests refused with 503 because the front end was draining.
SERVE_DRAIN_REFUSALS = "serve.drain.refusals"

#: Timing-closure pipeline iterations executed (STA -> pick -> optimize).
PIPELINE_ITERATIONS = "pipeline.iterations"
#: Nets (re-)optimized by the closure pipeline, summed over iterations.
PIPELINE_NETS_REOPTIMIZED = "pipeline.nets.reoptimized"
#: Closure jobs answered from the canonical-net cache.
PIPELINE_CACHE_HITS = "pipeline.cache.hits"
#: Closure jobs answered by a degradation-ladder fallback.
PIPELINE_NETS_DEGRADED = "pipeline.nets.degraded"
#: Closure jobs that failed outright (net kept its star estimate).
PIPELINE_NETS_FAILED = "pipeline.nets.failed"
#: Iterations whose re-timing got *worse* and were rolled back.
PIPELINE_ROLLBACKS = "pipeline.rollbacks"
#: Records appended to the write-ahead closure journal (header included).
PIPELINE_JOURNAL_RECORDS = "pipeline.journal.records"
#: Completed iterations restored from a journal by ``--resume``.
PIPELINE_JOURNAL_REPLAYED = "pipeline.journal.replayed"
#: Torn/corrupt final journal lines discarded by the reader.
PIPELINE_JOURNAL_TORN = "pipeline.journal.torn"

#: Faults fired by the injection framework (chaos runs only; zero in
#: production unless a FaultPlan is active).
RESILIENCE_FAULTS_INJECTED = "resilience.faults.injected"
#: Warm-pool rebuilds after a worker process died (BrokenProcessPool).
RESILIENCE_POOL_REBUILDS = "resilience.pool.rebuilds"
#: Jobs resubmitted to a rebuilt pool (each retry of each job counts).
RESILIENCE_JOB_RETRIES = "resilience.job.retries"
#: Disk-cache entries that failed their checksum/schema check.
RESILIENCE_CACHE_CORRUPTIONS = "resilience.cache.corruptions"
#: Corrupt disk-cache entries moved aside into the quarantine directory.
RESILIENCE_CACHE_QUARANTINED = "resilience.cache.quarantined"
#: Memory-tier entries written to the disk tier by a shutdown flush.
RESILIENCE_CACHE_FLUSHED = "resilience.cache.flushed"
#: Jobs answered by a degradation-ladder fallback (valid but degraded).
RESILIENCE_DEGRADED = "resilience.degraded"
#: Ladder rungs abandoned because their compute budget ran out.
RESILIENCE_BUDGET_EXHAUSTED = "resilience.budget.exhausted"

# -- series (value distributions) --------------------------------------

#: Objective cost after each MERLIN iteration.
MERLIN_ITERATION_COST = "merlin.iteration.cost"
#: Curve sizes summed over candidates for one parent Γ cell, pre-prune.
BUBBLE_CURVE_SIZE_PRE = "bubble.curve_size_pre"
#: Same cell, post-prune.
BUBBLE_CURVE_SIZE_POST = "bubble.curve_size_post"
#: post/pre survivor ratio per parent Γ cell.
BUBBLE_PRUNE_RATIO = "bubble.prune_ratio"
#: Per-prune survivor ratio (kept/before) across every curve prune.
CURVE_PRUNE_SURVIVOR_RATIO = "curve.prune.survivor_ratio"
#: Wall-clock seconds of one flow run (per flow, see ``flow_runtime``).
FLOW_RUNTIME_S = "flow.runtime_s"
#: End-to-end latency (s) of one service request (cache hits included).
SERVICE_REQUEST_LATENCY_S = "service.request.latency_s"
#: End-to-end latency (s) of one async-front-end request.
SERVE_REQUEST_LATENCY_S = "serve.request.latency_s"
#: Queue depth (in-flight requests) sampled at each admission decision.
SERVE_QUEUE_DEPTH = "serve.queue.depth"
#: Engine wall-clock (s) of one service job (cache misses only).
SERVICE_JOB_LATENCY_S = "service.job.latency_s"
#: STA critical delay (ps) after each closure-pipeline iteration.
PIPELINE_ITERATION_DELAY_PS = "pipeline.iteration.delay_ps"
#: Wall-clock seconds of one closure-pipeline iteration.
PIPELINE_ITERATION_WALL_S = "pipeline.iteration.wall_s"


def service_endpoint_requests(endpoint: str) -> str:
    """Per-endpoint request counter (``service.endpoint.<name>.requests``,
    endpoint names without the leading slash: optimize, stats, healthz)."""
    return f"service.endpoint.{endpoint}.requests"


def serve_shard_requests(shard: int) -> str:
    """Per-shard dispatch counter of the async front end
    (``serve.shard.<index>.requests``)."""
    return f"serve.shard.{shard}.requests"


def resilience_fault(site: str) -> str:
    """Per-site injected-fault counter
    (``resilience.fault.<site>.injected``)."""
    return f"resilience.fault.{site}.injected"


def level_curve_size_pre(level_size: int) -> str:
    """Per-level pre-prune curve-size series (level = group size)."""
    return f"bubble.level.{level_size}.curve_size_pre"


def level_curve_size_post(level_size: int) -> str:
    """Per-level post-prune curve-size series."""
    return f"bubble.level.{level_size}.curve_size_post"


def flow_runtime(flow: str) -> str:
    """Per-flow runtime series name (``flow.<name>.runtime_s``)."""
    return f"flow.{flow}.runtime_s"


# -- events ------------------------------------------------------------

#: One record per MERLIN outer-loop iteration
#: (fields: index, cost, order, improved).
EVENT_MERLIN_ITERATION = "merlin.iteration"
#: One record per MERLIN run
#: (fields: net, sinks, iterations, converged, best_cost).
EVENT_MERLIN_RESULT = "merlin.result"
#: One record per degraded answer
#: (fields: net, rung, reason, attempts).
EVENT_DEGRADATION = "resilience.degradation"
#: One record per closure-pipeline iteration (fields: index, policy,
#: candidates, selected, critical_delay, worst_slack, cache_hits).
EVENT_CLOSURE_ITERATION = "pipeline.iteration"

# -- span names --------------------------------------------------------

SPAN_MERLIN = "merlin"
SPAN_BUBBLE_CONSTRUCT = "bubble_construct"
SPAN_PTREE = "ptree"
SPAN_FINALIZE = "finalize"

#: Kernel-contract operation spans (recorded only when a recorder is
#: enabled; the spans attribute hot-path regressions to the operation —
#: join vs buffer vs relocate vs prune — not just to the scenario).
SPAN_KERNEL_JOIN = "curves.kernel.join"
SPAN_KERNEL_BUFFER = "curves.kernel.buffer"
SPAN_KERNEL_RELOCATE = "curves.kernel.relocate"
SPAN_KERNEL_PRUNE = "curves.kernel.prune"


def span_flow(flow: str) -> str:
    """Span name wrapping one baseline/MERLIN flow run."""
    return f"flow.{flow}"
