"""Export routing trees to plain dictionaries and Graphviz DOT."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    TreeNode,
)


def tree_to_dict(tree: RoutingTree) -> Dict[str, Any]:
    """Return a JSON-serializable description of ``tree``."""
    return {
        "net": tree.net.name,
        "source": tree.net.source.as_tuple(),
        "wire_length": tree.wire_length,
        "buffer_area": tree.buffer_area,
        "root": _node_to_dict(tree.root),
    }


def _node_to_dict(node: TreeNode) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "kind": node.kind,
        "position": node.position.as_tuple(),
    }
    if isinstance(node, BufferNode):
        entry["buffer"] = node.buffer.name
    if isinstance(node, SinkNode):
        entry["sink_index"] = node.sink_index
    if node.children:
        entry["children"] = [_node_to_dict(c) for c in node.children]
    return entry


def tree_signature(tree: RoutingTree) -> str:
    """A compact, deterministic topology fingerprint of ``tree``.

    Encodes every node's kind, exact position, buffer cell, sink index,
    and child order in one string, so two trees compare equal iff their
    routed topologies are identical.  Used by the golden-regression
    tests to pin engine behavior across refactors.
    """

    def encode(node: TreeNode) -> str:
        pos = node.position
        if isinstance(node, SinkNode):
            tag = f"K{node.sink_index}"
        elif isinstance(node, BufferNode):
            tag = f"B{node.buffer.name}"
        elif isinstance(node, SourceNode):
            tag = "S"
        else:
            tag = "T"
        body = "".join(encode(child) for child in node.children)
        return f"{tag}({pos.x:.3f},{pos.y:.3f})[{body}]"

    return encode(tree.root)


def tree_to_dot(tree: RoutingTree) -> str:
    """Return a Graphviz DOT rendering of ``tree`` (for debugging/docs)."""
    lines: List[str] = [
        "digraph routing_tree {",
        '  rankdir="TB";',
        '  node [fontname="monospace", fontsize=10];',
    ]
    counter = [0]

    def emit(node: TreeNode) -> str:
        name = f"n{counter[0]}"
        counter[0] += 1
        label = f"{node.kind}\\n({node.position.x:.0f},{node.position.y:.0f})"
        shape = "ellipse"
        if isinstance(node, SourceNode):
            shape = "house"
        elif isinstance(node, BufferNode):
            shape = "invtriangle"
            label = f"{node.buffer.name}\\n({node.position.x:.0f},{node.position.y:.0f})"
        elif isinstance(node, SinkNode):
            shape = "box"
            label = (f"{tree.net.sink(node.sink_index).name}\\n"
                     f"({node.position.x:.0f},{node.position.y:.0f})")
        lines.append(f'  {name} [label="{label}", shape={shape}];')
        for child in node.children:
            child_name = emit(child)
            length = node.edge_length(child)
            lines.append(f'  {name} -> {child_name} [label="{length:.0f}um"];')
        return name

    emit(tree.root)
    lines.append("}")
    return "\n".join(lines)
