"""Export routing trees to plain dictionaries and Graphviz DOT — and
rebuild trees from those dictionaries (the service-cache round trip)."""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.geometry.point import Point
from repro.net import Net
from repro.routing.evaluate import TreeEvaluation
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    SteinerNode,
    TreeNode,
)
from repro.tech.buffer import BufferLibrary
from repro.units import feq


def tree_to_dict(tree: RoutingTree) -> Dict[str, Any]:
    """Return a JSON-serializable description of ``tree``."""
    return {
        "net": tree.net.name,
        "source": tree.net.source.as_tuple(),
        "wire_length": tree.wire_length,
        "buffer_area": tree.buffer_area,
        "root": _node_to_dict(tree.root),
    }


def _node_to_dict(node: TreeNode) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "kind": node.kind,
        "position": node.position.as_tuple(),
    }
    if isinstance(node, BufferNode):
        entry["buffer"] = node.buffer.name
    if isinstance(node, SinkNode):
        entry["sink_index"] = node.sink_index
    if not feq(node.upstream_width, 1.0):
        entry["upstream_width"] = node.upstream_width
    if node.children:
        entry["children"] = [_node_to_dict(c) for c in node.children]
    return entry


def tree_from_dict(data: Dict[str, Any], net: Net, buffers: BufferLibrary,
                   offset: Tuple[float, float] = (0.0, 0.0)) -> RoutingTree:
    """Rebuild a :class:`RoutingTree` from :func:`tree_to_dict` output.

    ``buffers`` resolves buffer-node cell names back to library cells
    (unknown names raise ``ValueError``).  ``offset`` is added to every
    steiner/buffer node position — the service cache stores trees in the
    producing net's frame and rebuilds them in the requesting net's
    frame; a zero offset reproduces the exported tree bit-identically
    (``x + 0.0 == x`` for every finite ``x``).  Source and sink nodes
    are pinned to ``net``'s exact pin coordinates rather than offset
    arithmetic, so the rebuilt tree passes ``validate_tree`` even when
    the two frames differ by an amount that doesn't survive float
    subtraction exactly.
    """
    dx, dy = offset
    return RoutingTree(net=net,
                       root=_node_from_dict(data["root"], net, buffers,
                                            dx, dy))


def _node_from_dict(entry: Dict[str, Any], net: Net, buffers: BufferLibrary,
                    dx: float, dy: float) -> TreeNode:
    kind = entry["kind"]
    position = Point(entry["position"][0] + dx, entry["position"][1] + dy)
    node: TreeNode
    if kind == "SourceNode":
        node = SourceNode(net.source)
    elif kind == "BufferNode":
        try:
            buffer = buffers.by_name(entry["buffer"])
        except KeyError:
            raise ValueError(
                f"tree references unknown buffer cell {entry['buffer']!r}")
        node = BufferNode(position, buffer)
    elif kind == "SinkNode":
        node = SinkNode(net.sink(entry["sink_index"]).position,
                        entry["sink_index"])
    elif kind == "SteinerNode":
        node = SteinerNode(position)
    else:
        raise ValueError(f"unknown tree node kind: {kind!r}")
    node.upstream_width = entry.get("upstream_width", 1.0)
    for child in entry.get("children", ()):
        node.children.append(_node_from_dict(child, net, buffers, dx, dy))
    return node


def evaluation_to_dict(evaluation: TreeEvaluation) -> Dict[str, Any]:
    """JSON-serializable view of a :class:`TreeEvaluation` (service
    response body; sink arrival keys become strings as JSON requires)."""
    return {
        "sink_arrivals": {str(i): t
                          for i, t in evaluation.sink_arrivals.items()},
        "required_time_at_driver": evaluation.required_time_at_driver,
        "driver_load": evaluation.driver_load,
        "buffer_area": evaluation.buffer_area,
        "wire_length": evaluation.wire_length,
        "buffer_count": evaluation.buffer_count,
        "delay": evaluation.delay,
        "slack_is_met": evaluation.slack_is_met,
    }


def tree_signature(tree: RoutingTree) -> str:
    """A compact, deterministic topology fingerprint of ``tree``.

    Encodes every node's kind, exact position, buffer cell, sink index,
    and child order in one string, so two trees compare equal iff their
    routed topologies are identical.  Used by the golden-regression
    tests to pin engine behavior across refactors.
    """

    def encode(node: TreeNode) -> str:
        pos = node.position
        if isinstance(node, SinkNode):
            tag = f"K{node.sink_index}"
        elif isinstance(node, BufferNode):
            tag = f"B{node.buffer.name}"
        elif isinstance(node, SourceNode):
            tag = "S"
        else:
            tag = "T"
        body = "".join(encode(child) for child in node.children)
        return f"{tag}({pos.x:.3f},{pos.y:.3f})[{body}]"

    return encode(tree.root)


def tree_to_dot(tree: RoutingTree) -> str:
    """Return a Graphviz DOT rendering of ``tree`` (for debugging/docs)."""
    lines: List[str] = [
        "digraph routing_tree {",
        '  rankdir="TB";',
        '  node [fontname="monospace", fontsize=10];',
    ]
    counter = [0]

    def emit(node: TreeNode) -> str:
        name = f"n{counter[0]}"
        counter[0] += 1
        label = f"{node.kind}\\n({node.position.x:.0f},{node.position.y:.0f})"
        shape = "ellipse"
        if isinstance(node, SourceNode):
            shape = "house"
        elif isinstance(node, BufferNode):
            shape = "invtriangle"
            label = f"{node.buffer.name}\\n({node.position.x:.0f},{node.position.y:.0f})"
        elif isinstance(node, SinkNode):
            shape = "box"
            label = (f"{tree.net.sink(node.sink_index).name}\\n"
                     f"({node.position.x:.0f},{node.position.y:.0f})")
        lines.append(f'  {name} [label="{label}", shape={shape}];')
        for child in node.children:
            child_name = emit(child)
            length = node.edge_length(child)
            lines.append(f'  {name} -> {child_name} [label="{length:.0f}um"];')
        return name

    emit(tree.root)
    lines.append("}")
    return "\n".join(lines)
