"""The routing-tree intermediate representation.

A tree node sits at a point; the edge from a node to each child is an
L-shaped rectilinear wire whose length is the Manhattan distance between
their positions (zero-length edges occur where the DP joined structures at
a shared candidate point and are harmless).  Child order is meaningful: a
left-to-right depth-first traversal visits the sinks in the tree's sink
order, which is what MERLIN extracts between iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.geometry.point import Point
from repro.net import Net
from repro.tech.buffer import Buffer
from repro.units import fzero


class TreeNode:
    """Base class for routing-tree nodes.

    ``upstream_width`` is the sizing multiplier of the wire from this
    node's parent down to it (1.0 = minimum width); set by the builder
    when the winning solution used wire sizing.
    """

    __slots__ = ("position", "children", "upstream_width")

    def __init__(self, position: Point, children: Optional[List["TreeNode"]] = None):
        self.position = position
        self.children: List[TreeNode] = list(children or [])
        self.upstream_width = 1.0

    def add_child(self, child: "TreeNode") -> "TreeNode":
        self.children.append(child)
        return child

    def edge_length(self, child: "TreeNode") -> float:
        """Wire length (um) of the edge from this node to ``child``."""
        return self.position.manhattan_to(child.position)

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order depth-first traversal (children left to right)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    @property
    def kind(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}@{self.position}<{len(self.children)} children>"


class SourceNode(TreeNode):
    """The net driver; always the tree root, always exactly one in a tree."""

    __slots__ = ()


class BufferNode(TreeNode):
    """A library buffer inserted at a candidate location."""

    __slots__ = ("buffer",)

    def __init__(self, position: Point, buffer: Buffer,
                 children: Optional[List[TreeNode]] = None):
        super().__init__(position, children)
        self.buffer = buffer


class SteinerNode(TreeNode):
    """A branching or via point with no cell."""

    __slots__ = ()


class SinkNode(TreeNode):
    """A leaf: one of the net's sinks.  Never has children."""

    __slots__ = ("sink_index",)

    def __init__(self, position: Point, sink_index: int):
        super().__init__(position, children=None)
        self.sink_index = sink_index

    def add_child(self, child: TreeNode) -> TreeNode:
        raise TypeError("sink nodes are leaves and cannot have children")


@dataclass
class RoutingTree:
    """A complete buffered routing tree for a net.

    ``root`` is normally a :class:`SourceNode`; partial trees (used in
    tests and by the flow glue) may be rooted elsewhere.
    """

    net: Net
    root: TreeNode

    def walk(self) -> Iterator[TreeNode]:
        return self.root.walk()

    @property
    def buffer_nodes(self) -> List[BufferNode]:
        return [n for n in self.walk() if isinstance(n, BufferNode)]

    @property
    def sink_nodes(self) -> List[SinkNode]:
        return [n for n in self.walk() if isinstance(n, SinkNode)]

    @property
    def buffer_area(self) -> float:
        """Total inserted buffer area (um^2)."""
        return sum(n.buffer.area for n in self.buffer_nodes)

    @property
    def wire_length(self) -> float:
        """Total routed wire length (um)."""
        total = 0.0
        for node in self.walk():
            for child in node.children:
                total += node.edge_length(child)
        return total

    def simplified(self) -> "RoutingTree":
        """Return a copy with pass-through Steiner nodes collapsed.

        A Steiner node with exactly one child and a zero-length edge to its
        parent (or a single-child chain) adds nothing; collapsing them makes
        exported trees readable.  Evaluation results are unchanged because
        Elmore delay of concatenated wire segments with no intermediate
        load only differs across segmentations when a segment boundary
        carries load — and pass-through Steiner points carry none.
        """
        return RoutingTree(net=self.net, root=_simplify(self.root))


def _simplify(node: TreeNode) -> TreeNode:
    children = [_simplify(c) for c in node.children]
    # Collapse pass-through Steiner children that sit at the same position
    # as this node or have exactly one child and no branching role.
    flattened: List[TreeNode] = []
    for child in children:
        if (isinstance(child, SteinerNode) and len(child.children) == 1
                and fzero(node.position.manhattan_to(child.position))):
            flattened.append(child.children[0])
        else:
            flattened.append(child)
    clone = _clone_without_children(node)
    clone.children = flattened
    clone.upstream_width = node.upstream_width
    return clone


def _clone_without_children(node: TreeNode) -> TreeNode:
    if isinstance(node, BufferNode):
        return BufferNode(node.position, node.buffer)
    if isinstance(node, SinkNode):
        return SinkNode(node.position, node.sink_index)
    if isinstance(node, SourceNode):
        return SourceNode(node.position)
    return SteinerNode(node.position)
