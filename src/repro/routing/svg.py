"""SVG rendering of buffered routing trees.

Produces a self-contained SVG picture of a routing tree in its placement
region: rectilinear (L-shaped) wires, the driver, buffers as triangles,
sinks as squares, Steiner points as dots.  No external dependencies — the
file writes plain SVG markup — so exported layouts can be viewed in any
browser and embedded in documentation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.geometry.bbox import BoundingBox
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    TreeNode,
)

_STYLE = (
    "text { font-family: monospace; font-size: 11px; fill: #333; }"
    ".wire { stroke: #4878a8; stroke-width: 2; fill: none; }"
    ".source { fill: #c03028; }"
    ".buffer { fill: #e8a33d; stroke: #8a5a00; }"
    ".sink { fill: #3a7d44; }"
    ".steiner { fill: #888; }"
)


def tree_to_svg(tree: RoutingTree, width: float = 640.0,
                margin: float = 40.0, labels: bool = True) -> str:
    """Render ``tree`` as an SVG document string.

    The viewport is fitted to the net's bounding box; ``width`` fixes the
    output width in pixels and the height follows the aspect ratio.
    """
    if width <= 2 * margin:
        raise ValueError("width must exceed twice the margin")
    positions = [node.position for node in tree.walk()]
    box = BoundingBox.of_points(positions).expanded(1.0)
    scale = (width - 2 * margin) / max(box.width, 1e-9)
    height = max(box.height * scale, 1.0) + 2 * margin

    def sx(x: float) -> float:
        return margin + (x - box.xmin) * scale

    def sy(y: float) -> float:
        # SVG's y grows downward; flip so the layout reads naturally.
        return height - margin - (y - box.ymin) * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f"<style>{_STYLE}</style>",
        f'<rect width="100%" height="100%" fill="#fcfcf8"/>',
    ]

    # Wires first (under the markers): L-shaped, horizontal leg first.
    for node in tree.walk():
        for child in node.children:
            x0, y0 = sx(node.position.x), sy(node.position.y)
            x1, y1 = sx(child.position.x), sy(child.position.y)
            parts.append(
                f'<polyline class="wire" '
                f'points="{x0:.1f},{y0:.1f} {x1:.1f},{y0:.1f} '
                f'{x1:.1f},{y1:.1f}"/>')

    for node in tree.walk():
        parts.append(_marker(node, sx(node.position.x), sy(node.position.y),
                             tree, labels))
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(tree: RoutingTree, path: str, **kwargs) -> None:
    """Render ``tree`` and write it to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(tree_to_svg(tree, **kwargs))


def _marker(node: TreeNode, x: float, y: float, tree: RoutingTree,
            labels: bool) -> str:
    if isinstance(node, SourceNode):
        shape = (f'<circle class="source" cx="{x:.1f}" cy="{y:.1f}" r="7"/>')
        label = tree.net.name
    elif isinstance(node, BufferNode):
        shape = (f'<polygon class="buffer" points="'
                 f'{x - 7:.1f},{y - 6:.1f} {x - 7:.1f},{y + 6:.1f} '
                 f'{x + 7:.1f},{y:.1f}"/>')
        label = node.buffer.name
    elif isinstance(node, SinkNode):
        shape = (f'<rect class="sink" x="{x - 5:.1f}" y="{y - 5:.1f}" '
                 f'width="10" height="10"/>')
        label = tree.net.sink(node.sink_index).name
    else:
        shape = f'<circle class="steiner" cx="{x:.1f}" cy="{y:.1f}" r="3"/>'
        label = ""
    if labels and label:
        shape += (f'<text x="{x + 9:.1f}" y="{y - 7:.1f}">{label}</text>')
    return shape
