"""Elmore evaluation of complete routing trees.

The evaluator recomputes, from the materialized tree alone, the same
quantities the dynamic program tracked incrementally: downstream loads,
per-sink delays, the required time at the driver, buffer area and wire
length.  Agreement between the two is one of the library's strongest
correctness checks (tested in ``tests/integration``).

Delay semantics
---------------
Arrival time is 0 at the driver input.  The driver contributes
``driver_delay(load at source output)``; every wire edge contributes its
Elmore delay ``R_wire * (C_wire/2 + C_downstream)``; every buffer
contributes ``buffer_delay(load at buffer output)``.  The *required time at
the driver input* is ``min_i (r_i - arrival_i)``; the reported *delay* of a
net is ``max_i r_i - required_time_at_driver`` — the critical path length
with required-time offsets, which is monotone-consistent with the paper's
objective of maximizing the driver required time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net import Net
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    TreeNode,
)
from repro.tech.technology import Technology


@dataclass(frozen=True)
class TreeEvaluation:
    """Everything the experiments report about one routing tree."""

    #: Arrival time (ps) at every sink, measured from the driver input.
    sink_arrivals: Dict[int, float]
    #: min_i (r_i - arrival_i): latest moment the signal may reach the
    #: driver input with every sink still meeting its requirement.
    required_time_at_driver: float
    #: Capacitance (fF) presented to the driver output.
    driver_load: float
    #: Total inserted buffer area (um^2).
    buffer_area: float
    #: Total routed wire length (um).
    wire_length: float
    #: Number of inserted buffers.
    buffer_count: int
    #: max_i r_i - required_time_at_driver: the net's critical delay (ps).
    delay: float

    @property
    def slack_is_met(self) -> bool:
        """True when the signal may arrive at time 0 or later (r_root >= 0)."""
        return self.required_time_at_driver >= 0.0


def evaluate_tree(tree: RoutingTree, tech: Technology) -> TreeEvaluation:
    """Evaluate ``tree`` under ``tech``; see module docstring for semantics."""
    net = tree.net
    loads = _downstream_loads(tree, tech)
    arrivals: Dict[int, float] = {}
    root = tree.root

    if isinstance(root, SourceNode):
        start_delay = tech.driver_delay(
            loads[id(root)],
            drive_resistance=net.driver_resistance,
            intrinsic=net.driver_intrinsic,
        )
        _propagate(root, start_delay, loads, arrivals, tech)
        driver_load = loads[id(root)]
    else:
        # Partial tree: no driver stage; arrival starts at 0 at the root.
        _propagate(root, 0.0, loads, arrivals, tech)
        driver_load = loads[id(root)]

    missing = set(range(len(net.sinks))) - set(arrivals)
    if missing:
        raise ValueError(f"tree does not reach sinks {sorted(missing)}")

    required = min(net.sink(i).required_time - arrivals[i] for i in arrivals)
    return TreeEvaluation(
        sink_arrivals=arrivals,
        required_time_at_driver=required,
        driver_load=driver_load,
        buffer_area=tree.buffer_area,
        wire_length=tree.wire_length,
        buffer_count=len(tree.buffer_nodes),
        delay=net.max_required_time - required,
    )


def _downstream_loads(tree: RoutingTree, tech: Technology) -> Dict[int, float]:
    """Map ``id(node)`` to the capacitance driven *from* that node.

    For a buffer node the value is the load at the buffer *output*; the
    load the buffer presents upstream is its input capacitance.  For the
    source node the value is the load at the driver output.
    """
    net = tree.net
    loads: Dict[int, float] = {}

    def visit(node: TreeNode) -> float:
        """Return the cap ``node`` presents to its driving wire."""
        downstream = 0.0
        for child in node.children:
            wire_cap = (tech.wire_cap(node.edge_length(child))
                        * child.upstream_width)
            downstream += wire_cap + visit(child)
        loads[id(node)] = downstream
        if isinstance(node, SinkNode):
            presented = net.sink(node.sink_index).load
            loads[id(node)] = presented  # a sink drives nothing
            return presented
        if isinstance(node, BufferNode):
            return node.buffer.input_cap
        return downstream

    visit(tree.root)
    return loads


def _propagate(node: TreeNode, arrival: float, loads: Dict[int, float],
               arrivals: Dict[int, float], tech: Technology) -> None:
    """Push arrival times down the tree (iterative to spare the stack)."""
    stack = [(node, arrival)]
    while stack:
        current, time_here = stack.pop()
        if isinstance(current, SinkNode):
            arrivals[current.sink_index] = time_here
            continue
        if isinstance(current, BufferNode):
            time_here += tech.buffer_delay(current.buffer, loads[id(current)])
        for child in current.children:
            length = current.edge_length(child)
            child_cap = (child.buffer.input_cap if isinstance(child, BufferNode)
                         else loads[id(child)])
            width = child.upstream_width
            edge_res = tech.wire.resistance(length) / width
            edge_cap = tech.wire.capacitance(length) * width
            edge_delay = edge_res * (0.5 * edge_cap + child_cap)
            stack.append((child, time_here + edge_delay))
