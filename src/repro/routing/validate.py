"""Structural validation of routing trees.

The checks here are invariants every construction algorithm must satisfy,
independent of quality: exactly one source at the root, every sink reached
exactly once at its pin position, sinks are leaves, no node is shared
between branches (it is a tree, not a DAG), and buffer fanouts are sane.
Validation is cheap and runs inside the integration tests and (optionally)
at the end of every flow.
"""

from __future__ import annotations

from typing import List, Set

from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    TreeNode,
)


class TreeValidationError(AssertionError):
    """Raised when a routing tree violates a structural invariant."""


def validate_tree(tree: RoutingTree, max_buffer_fanout: int = 0) -> None:
    """Validate ``tree``; raise :class:`TreeValidationError` on violation.

    Parameters
    ----------
    tree:
        The tree to check.
    max_buffer_fanout:
        When positive, additionally assert that no buffer node drives more
        than this many buffer/sink descendants reachable without passing
        through another buffer — the Cα_Tree branching bound α.
    """
    net = tree.net
    problems: List[str] = []

    if not isinstance(tree.root, SourceNode):
        problems.append(f"root is {tree.root.kind}, expected SourceNode")
    if tree.root.position != net.source:
        problems.append(
            f"root at {tree.root.position}, net source at {net.source}")

    seen_ids: Set[int] = set()
    seen_sinks: List[int] = []
    for node in tree.walk():
        if id(node) in seen_ids:
            problems.append(f"node {node!r} appears in multiple branches")
            continue
        seen_ids.add(id(node))
        if isinstance(node, SourceNode) and node is not tree.root:
            problems.append("interior SourceNode found")
        if isinstance(node, SinkNode):
            seen_sinks.append(node.sink_index)
            if node.children:
                problems.append(f"sink {node.sink_index} has children")
            sink = net.sink(node.sink_index)
            if node.position != sink.position:
                problems.append(
                    f"sink {node.sink_index} placed at {node.position}, "
                    f"pin is at {sink.position}")

    expected = list(range(len(net.sinks)))
    if sorted(seen_sinks) != expected:
        problems.append(
            f"sink coverage {sorted(seen_sinks)} != expected {expected}")

    if max_buffer_fanout > 0:
        for node in tree.walk():
            if isinstance(node, (BufferNode, SourceNode)):
                fanout = _stage_fanout(node)
                if fanout > max_buffer_fanout:
                    problems.append(
                        f"{node.kind} at {node.position} drives {fanout} "
                        f"stage loads > alpha={max_buffer_fanout}")

    if problems:
        raise TreeValidationError("; ".join(problems))


def _stage_fanout(node: TreeNode) -> int:
    """Count sinks/buffers reachable from ``node`` without crossing a buffer."""
    count = 0
    stack = list(node.children)
    while stack:
        current = stack.pop()
        if isinstance(current, (BufferNode, SinkNode)):
            count += 1
            continue
        stack.extend(current.children)
    return count
