"""Sink-order extraction from a routing tree.

A depth-first traversal of any P-Tree/Cα_Tree-structured tree, visiting
children left to right, meets the sinks in the tree's sink order (the paper
phrases the same fact as a *reverse* DFS for its mirrored child convention).
MERLIN's outer loop (line 7, ``SINK_ORDER(R)``) extracts this order after
every inner optimization and feeds it to the next iteration.
"""

from __future__ import annotations

from typing import List

from repro.routing.tree import RoutingTree, SinkNode, TreeNode


def extract_sink_order(tree: RoutingTree) -> List[int]:
    """Return sink indices (0-based) in tree order.

    Raises :class:`ValueError` when a sink appears more than once or is
    missing — either indicates a malformed tree, and silently returning a
    non-permutation would corrupt the outer search.
    """
    order: List[int] = []
    _collect(tree.root, order)
    expected = set(range(len(tree.net.sinks)))
    if len(order) != len(expected) or set(order) != expected:
        raise ValueError(
            f"tree sink traversal {order} is not a permutation of "
            f"{sorted(expected)}")
    return order


def _collect(node: TreeNode, order: List[int]) -> None:
    if isinstance(node, SinkNode):
        order.append(node.sink_index)
        return
    for child in node.children:
        _collect(child, order)
