"""Buffered rectilinear routing trees.

The output of every construction algorithm in this library is a
:class:`~repro.routing.tree.RoutingTree`: a rooted tree of source, buffer,
Steiner and sink nodes whose edges are rectilinear wires.  This subpackage
provides the tree IR, the Elmore-based evaluator (which must agree exactly
with the DP's incremental bookkeeping — a key cross-check), reconstruction
from solution-curve traceback records, structural validation, sink-order
extraction (what MERLIN's outer loop feeds back), and export helpers.
"""

from repro.routing.tree import (
    TreeNode,
    SourceNode,
    BufferNode,
    SteinerNode,
    SinkNode,
    RoutingTree,
)
from repro.routing.builder import build_tree
from repro.routing.evaluate import TreeEvaluation, evaluate_tree
from repro.routing.sink_order import extract_sink_order
from repro.routing.validate import validate_tree
from repro.routing.export import (
    evaluation_to_dict,
    tree_from_dict,
    tree_signature,
    tree_to_dict,
    tree_to_dot,
)

__all__ = [
    "TreeNode",
    "SourceNode",
    "BufferNode",
    "SteinerNode",
    "SinkNode",
    "RoutingTree",
    "build_tree",
    "TreeEvaluation",
    "evaluate_tree",
    "extract_sink_order",
    "validate_tree",
    "tree_to_dict",
    "tree_from_dict",
    "tree_signature",
    "evaluation_to_dict",
    "tree_to_dot",
]
