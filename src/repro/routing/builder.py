"""Reconstruct a routing tree from a solution's traceback records.

This implements lines 21–22 of BUBBLE_CONSTRUCT: after the DP picks the
winning solution on the final curve, the buffered routing tree is retrieved
by following the pointers (here: the nested ``detail`` records) stored while
the solution curves were generated.
"""

from __future__ import annotations

from typing import Optional

from repro.curves.solution import (
    Buffered,
    DriverArm,
    Extend,
    Join,
    SinkLeaf,
    Solution,
)
from repro.net import Net
from repro.routing.tree import (
    BufferNode,
    RoutingTree,
    SinkNode,
    SourceNode,
    SteinerNode,
    TreeNode,
)


def build_tree(net: Net, solution: Solution) -> RoutingTree:
    """Materialize ``solution`` into a :class:`RoutingTree` for ``net``.

    When the outermost detail is a :class:`DriverArm` the returned tree is
    rooted at a :class:`SourceNode`; otherwise a source node is synthesized
    at the net's source position and wired to the solution root, so callers
    always get a complete, evaluable tree.
    """
    if isinstance(solution.detail, DriverArm):
        inner = _build(solution.detail.child)
        root = SourceNode(net.source)
        root.add_child(inner)
    else:
        root = SourceNode(net.source)
        root.add_child(_build(solution))
    return RoutingTree(net=net, root=root)


def _build(solution: Solution) -> TreeNode:
    """Recursively materialize one solution into a subtree node."""
    detail = solution.detail
    if isinstance(detail, SinkLeaf):
        return SinkNode(solution.root, detail.sink_index)
    if isinstance(detail, Extend):
        node = SteinerNode(solution.root)
        child = _build(detail.child)
        child.upstream_width = detail.width
        node.add_child(child)
        return node
    if isinstance(detail, Join):
        node = SteinerNode(solution.root)
        node.add_child(_build(detail.left))
        node.add_child(_build(detail.right))
        return node
    if isinstance(detail, Buffered):
        node = BufferNode(solution.root, detail.buffer)
        node.add_child(_build(detail.child))
        return node
    if isinstance(detail, DriverArm):
        raise ValueError("DriverArm may only appear at the outermost level")
    raise TypeError(f"unknown detail record: {type(detail).__name__}")
