"""The net model: a driver and a set of sinks to be connected.

This is the problem input of section III.1: the source position, and for
every sink its position, capacitive load and required time.  Nets are
immutable; algorithms communicate sink identity by index into
:attr:`Net.sinks`, and sink *orders* (permutations over those indices) live
in :mod:`repro.orders`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.resilience.errors import MalformedNetError


@dataclass(frozen=True)
class Sink:
    """A net sink: ``s_i = (x, y, load, required_time)``.

    Attributes
    ----------
    name:
        Identifier used in reports and exported trees.
    position:
        Pin location (um).
    load:
        Input capacitance of the driven pin (fF).
    required_time:
        Latest time (ps) at which the signal may arrive; larger is less
        critical.  Required times propagate upward through the tree as
        ``r_parent = min(r_child - delay(parent -> child))``.
    """

    name: str
    position: Point
    load: float
    required_time: float

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError(f"sink {self.name}: load must be non-negative")


@dataclass(frozen=True)
class Net:
    """A net: one driver (source) and ``n >= 1`` sinks.

    The optional driver parameters override the technology defaults when
    the net comes from a netlist whose driving gate is known.
    """

    name: str
    source: Point
    sinks: Tuple[Sink, ...]
    driver_resistance: Optional[float] = None
    driver_intrinsic: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name}: at least one sink required")
        names = [s.name for s in self.sinks]
        if len(set(names)) != len(names):
            raise ValueError(f"net {self.name}: sink names must be unique")

    def __len__(self) -> int:
        return len(self.sinks)

    def __iter__(self) -> Iterator[Sink]:
        return iter(self.sinks)

    @property
    def sink_positions(self) -> Tuple[Point, ...]:
        return tuple(s.position for s in self.sinks)

    @property
    def bounding_box(self) -> BoundingBox:
        """Bounding box of all terminals (source included)."""
        return BoundingBox.of_points([self.source, *self.sink_positions])

    @property
    def max_required_time(self) -> float:
        return max(s.required_time for s in self.sinks)

    @property
    def min_required_time(self) -> float:
        return min(s.required_time for s in self.sinks)

    @property
    def total_sink_load(self) -> float:
        return sum(s.load for s in self.sinks)

    def sink(self, index: int) -> Sink:
        """Return the sink at 0-based ``index`` (paper's s_{index+1})."""
        return self.sinks[index]


def make_net(name: str, source_xy: Tuple[float, float],
             sink_specs: Sequence[Tuple[float, float, float, float]]) -> Net:
    """Convenience constructor from plain tuples.

    ``sink_specs`` entries are ``(x, y, load, required_time)``; sinks are
    named ``<net>_s<i>``.
    """
    sinks = tuple(
        Sink(name=f"{name}_s{i}", position=Point(x, y), load=load,
             required_time=req)
        for i, (x, y, load, req) in enumerate(sink_specs)
    )
    return Net(name=name, source=Point(*source_xy), sinks=sinks)


def net_to_dict(net: Net) -> Dict[str, Any]:
    """Serialize ``net`` to the plain-JSON net interchange schema.

    This is the request format of the optimization service
    (``POST /optimize``) and the inverse of :func:`net_from_dict`::

        {"name": "...", "source": [x, y],
         "driver_resistance": ... | null, "driver_intrinsic": ... | null,
         "sinks": [{"name": "...", "position": [x, y],
                    "load": ..., "required_time": ...}, ...]}
    """
    data: Dict[str, Any] = {
        "name": net.name,
        "source": list(net.source.as_tuple()),
        "sinks": [
            {
                "name": s.name,
                "position": list(s.position.as_tuple()),
                "load": s.load,
                "required_time": s.required_time,
            }
            for s in net.sinks
        ],
    }
    if net.driver_resistance is not None:
        data["driver_resistance"] = net.driver_resistance
    if net.driver_intrinsic is not None:
        data["driver_intrinsic"] = net.driver_intrinsic
    return data


def _payload_error(where: str, problem: str) -> MalformedNetError:
    return MalformedNetError(f"malformed net payload: {where}: {problem}",
                             stage="net")


def _get_field(mapping: Any, field: str, where: str) -> Any:
    if not isinstance(mapping, dict):
        raise _payload_error(
            where, f"expected a JSON object, got {type(mapping).__name__}")
    if field not in mapping:
        raise _payload_error(where, f"missing field {field!r}")
    return mapping[field]


def _as_number(value: Any, field: str, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _payload_error(
            where, f"field {field!r} must be a number, got {value!r}")
    return float(value)


def _as_point(value: Any, field: str, where: str) -> Point:
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise _payload_error(
            where, f"field {field!r} must be an [x, y] pair, got {value!r}")
    return Point(_as_number(value[0], field, where),
                 _as_number(value[1], field, where))


def _sink_from_dict(entry: Any, index: int) -> Sink:
    label = f"sink #{index}"
    if isinstance(entry, dict) and isinstance(entry.get("name"), str):
        label = f"sink #{index} ({entry['name']!r})"
    sink = Sink(
        name=str(_get_field(entry, "name", label)),
        position=_as_point(_get_field(entry, "position", label),
                           "position", label),
        load=_as_number(_get_field(entry, "load", label), "load", label),
        required_time=_as_number(_get_field(entry, "required_time", label),
                                 "required_time", label),
    )
    return sink


def net_from_dict(data: Dict[str, Any]) -> Net:
    """Deserialize a net from the interchange schema.

    Malformed input raises :class:`MalformedNetError` (a ``ValueError``)
    naming the offending field — and, for sink fields, the offending
    sink by index and name — so service clients and the CLI can report
    exactly what to fix instead of a generic parse failure.
    """
    name = str(_get_field(data, "name", "net"))
    where = f"net {name!r}"
    source = _as_point(_get_field(data, "source", where), "source", where)
    raw_sinks = _get_field(data, "sinks", where)
    if not isinstance(raw_sinks, (list, tuple)):
        raise _payload_error(
            where, f"field 'sinks' must be a list, got {raw_sinks!r}")
    if not raw_sinks:
        raise _payload_error(where, "field 'sinks' must be non-empty")
    try:
        sinks = tuple(_sink_from_dict(entry, i)
                      for i, entry in enumerate(raw_sinks))
        resistance = data.get("driver_resistance")
        intrinsic = data.get("driver_intrinsic")
        if resistance is not None:
            resistance = _as_number(resistance, "driver_resistance", where)
        if intrinsic is not None:
            intrinsic = _as_number(intrinsic, "driver_intrinsic", where)
        return Net(
            name=name,
            source=source,
            sinks=sinks,
            driver_resistance=resistance,
            driver_intrinsic=intrinsic,
        )
    except MalformedNetError:
        raise
    except ValueError as exc:
        # Net/Sink invariants (duplicate sink names, negative load...)
        # re-raised with the net named, same taxonomy kind.
        raise _payload_error(where, str(exc)) from exc
