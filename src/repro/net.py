"""The net model: a driver and a set of sinks to be connected.

This is the problem input of section III.1: the source position, and for
every sink its position, capacitive load and required time.  Nets are
immutable; algorithms communicate sink identity by index into
:attr:`Net.sinks`, and sink *orders* (permutations over those indices) live
in :mod:`repro.orders`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


@dataclass(frozen=True)
class Sink:
    """A net sink: ``s_i = (x, y, load, required_time)``.

    Attributes
    ----------
    name:
        Identifier used in reports and exported trees.
    position:
        Pin location (um).
    load:
        Input capacitance of the driven pin (fF).
    required_time:
        Latest time (ps) at which the signal may arrive; larger is less
        critical.  Required times propagate upward through the tree as
        ``r_parent = min(r_child - delay(parent -> child))``.
    """

    name: str
    position: Point
    load: float
    required_time: float

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError(f"sink {self.name}: load must be non-negative")


@dataclass(frozen=True)
class Net:
    """A net: one driver (source) and ``n >= 1`` sinks.

    The optional driver parameters override the technology defaults when
    the net comes from a netlist whose driving gate is known.
    """

    name: str
    source: Point
    sinks: Tuple[Sink, ...]
    driver_resistance: Optional[float] = None
    driver_intrinsic: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"net {self.name}: at least one sink required")
        names = [s.name for s in self.sinks]
        if len(set(names)) != len(names):
            raise ValueError(f"net {self.name}: sink names must be unique")

    def __len__(self) -> int:
        return len(self.sinks)

    def __iter__(self) -> Iterator[Sink]:
        return iter(self.sinks)

    @property
    def sink_positions(self) -> Tuple[Point, ...]:
        return tuple(s.position for s in self.sinks)

    @property
    def bounding_box(self) -> BoundingBox:
        """Bounding box of all terminals (source included)."""
        return BoundingBox.of_points([self.source, *self.sink_positions])

    @property
    def max_required_time(self) -> float:
        return max(s.required_time for s in self.sinks)

    @property
    def min_required_time(self) -> float:
        return min(s.required_time for s in self.sinks)

    @property
    def total_sink_load(self) -> float:
        return sum(s.load for s in self.sinks)

    def sink(self, index: int) -> Sink:
        """Return the sink at 0-based ``index`` (paper's s_{index+1})."""
        return self.sinks[index]


def make_net(name: str, source_xy: Tuple[float, float],
             sink_specs: Sequence[Tuple[float, float, float, float]]) -> Net:
    """Convenience constructor from plain tuples.

    ``sink_specs`` entries are ``(x, y, load, required_time)``; sinks are
    named ``<net>_s<i>``.
    """
    sinks = tuple(
        Sink(name=f"{name}_s{i}", position=Point(x, y), load=load,
             required_time=req)
        for i, (x, y, load, req) in enumerate(sink_specs)
    )
    return Net(name=name, source=Point(*source_xy), sinks=sinks)


def net_to_dict(net: Net) -> Dict[str, Any]:
    """Serialize ``net`` to the plain-JSON net interchange schema.

    This is the request format of the optimization service
    (``POST /optimize``) and the inverse of :func:`net_from_dict`::

        {"name": "...", "source": [x, y],
         "driver_resistance": ... | null, "driver_intrinsic": ... | null,
         "sinks": [{"name": "...", "position": [x, y],
                    "load": ..., "required_time": ...}, ...]}
    """
    data: Dict[str, Any] = {
        "name": net.name,
        "source": list(net.source.as_tuple()),
        "sinks": [
            {
                "name": s.name,
                "position": list(s.position.as_tuple()),
                "load": s.load,
                "required_time": s.required_time,
            }
            for s in net.sinks
        ],
    }
    if net.driver_resistance is not None:
        data["driver_resistance"] = net.driver_resistance
    if net.driver_intrinsic is not None:
        data["driver_intrinsic"] = net.driver_intrinsic
    return data


def net_from_dict(data: Dict[str, Any]) -> Net:
    """Deserialize a net; validation is delegated to ``Net`` itself."""
    try:
        sinks = tuple(
            Sink(
                name=str(entry["name"]),
                position=Point(float(entry["position"][0]),
                               float(entry["position"][1])),
                load=float(entry["load"]),
                required_time=float(entry["required_time"]),
            )
            for entry in data["sinks"]
        )
        source = Point(float(data["source"][0]), float(data["source"][1]))
        name = str(data["name"])
    except (KeyError, IndexError, TypeError) as exc:
        raise ValueError(f"malformed net payload: {exc!r}") from exc
    resistance = data.get("driver_resistance")
    intrinsic = data.get("driver_intrinsic")
    return Net(
        name=name,
        source=source,
        sinks=sinks,
        driver_resistance=float(resistance) if resistance is not None
        else None,
        driver_intrinsic=float(intrinsic) if intrinsic is not None
        else None,
    )
