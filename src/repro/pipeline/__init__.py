"""Full-netlist timing closure driven by the optimization service.

Public surface:

* :func:`repro.pipeline.closure.run_closure` — place, time, rank,
  batch-optimize, re-time, iterate to a worst-slack fixpoint.
* :mod:`repro.pipeline.ordering` — the pluggable net-ordering policy
  registry (``criticality``, ``fanout``, ``slack_weighted``,
  ``learned``).
* :mod:`repro.pipeline.learned` — the stdlib-only trained ranker and
  its ``--train`` entry point.
* :mod:`repro.pipeline.journal` — the write-ahead closure journal that
  makes ``run_closure`` crash-safe and resumable.
"""

from repro.pipeline.closure import (
    ClosureConfig,
    ClosureIteration,
    ClosureResult,
    run_closure,
)
from repro.pipeline.journal import (
    ClosureJournal,
    JournalReplay,
    read_journal,
)
from repro.pipeline.ordering import (
    ORDERING_POLICIES,
    OrderingPolicy,
    available_orderings,
    get_ordering,
    register_ordering,
)

__all__ = [
    "ClosureConfig",
    "ClosureIteration",
    "ClosureResult",
    "run_closure",
    "ClosureJournal",
    "JournalReplay",
    "read_journal",
    "ORDERING_POLICIES",
    "OrderingPolicy",
    "available_orderings",
    "get_ordering",
    "register_ordering",
]
