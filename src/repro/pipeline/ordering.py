"""Pluggable net-ordering policies for the timing-closure pipeline.

The closure driver re-optimizes a *batch* of nets per iteration; when the
batch is smaller than the candidate set, the order in which nets are
picked decides how fast the circuit converges (and, on resource-bounded
runs, which nets get the compute at all).  "Machine Learning Optimal
Ordering in Global Routing Problems" (PAPERS.md) motivates treating this
ordering as a first-class, swappable policy rather than a hard-coded
heuristic — so policies register here exactly like staticcheck rules,
and the CLI / HTTP / bench layers select them by name.

A policy ranks *candidate* nets (most urgent first) from an
:class:`OrderingContext`: the placed netlist, the current STA, and a
precomputed :class:`NetFeatures` record per candidate.  Policies must be
deterministic — same context, same ranking — so closure runs replay
bit-identically; every built-in breaks ties on the net name.

Built-ins:

``criticality``
    Most negative driver slack first — classic timing-driven ordering.
``fanout``
    Largest sink count first — topology-driven, slack-blind.
``slack_weighted``
    Criticality discounted by geometric span: a slightly-critical net
    spanning half the die outranks an equally-critical short net,
    because long nets have the most recoverable wire delay.
``learned``
    A feature-based linear ranker trained on self-generated labeled
    runs (:mod:`repro.pipeline.learned`) predicting per-net delay
    improvement; nets whose optimization should buy the most delay go
    first, criticality-weighted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.netlist.netlist import CircuitNet, Netlist
from repro.netlist.sta import StaResult
from repro.resilience.errors import MerlinInputError


@dataclass(frozen=True)
class NetFeatures:
    """Per-net facts every policy may rank on (cheap to compute)."""

    name: str
    #: Sink count of the net.
    fanout: int
    #: Driver-input slack (ps) under the current STA; negative = late.
    driver_slack: float
    #: Worst slack over the net's sinks (ps).
    min_sink_slack: float
    #: Half-perimeter of the net's terminal bounding box (um).
    span: float
    #: Sum of sink pin capacitances (fF).
    total_sink_load: float
    #: Driving gate's drive resistance (kOhm).
    driver_resistance: float

    def vector(self) -> List[float]:
        """Feature vector used by the learned ranker (fixed order)."""
        return [
            float(self.fanout),
            self.driver_slack,
            self.min_sink_slack,
            self.span,
            self.total_sink_load,
            self.driver_resistance,
        ]


#: Order of :meth:`NetFeatures.vector` entries (training + inference).
FEATURE_NAMES = ("fanout", "driver_slack", "min_sink_slack", "span",
                 "total_sink_load", "driver_resistance")


@dataclass(frozen=True)
class OrderingContext:
    """Everything a policy sees when ranking one iteration's candidates."""

    netlist: Netlist
    sta: StaResult
    #: Candidate net names, in netlist order (the policy's input set).
    candidates: Sequence[str]
    #: Feature record per candidate (keys == ``candidates``).
    features: Dict[str, NetFeatures]
    #: 0-based closure iteration about to run.
    iteration: int = 0


def net_features(netlist: Netlist, net: CircuitNet,
                 sta: StaResult) -> NetFeatures:
    """Compute the policy feature record of ``net`` under ``sta``."""
    driver = netlist.gates[net.driver]
    positions = [driver.position] + [
        netlist.gates[s].position for s in net.sinks]
    xs = [p.x for p in positions]
    ys = [p.y for p in positions]
    return NetFeatures(
        name=net.name,
        fanout=len(net.sinks),
        driver_slack=sta.slack(net.driver),
        min_sink_slack=min(sta.slack(s) for s in net.sinks),
        span=(max(xs) - min(xs)) + (max(ys) - min(ys)),
        total_sink_load=sum(
            netlist.gates[s].cell.input_cap for s in net.sinks),
        driver_resistance=driver.cell.drive_resistance,
    )


def build_context(netlist: Netlist, sta: StaResult,
                  candidates: Sequence[CircuitNet],
                  iteration: int = 0) -> OrderingContext:
    """Assemble the ranking context for one closure iteration."""
    return OrderingContext(
        netlist=netlist,
        sta=sta,
        candidates=[net.name for net in candidates],
        features={net.name: net_features(netlist, net, sta)
                  for net in candidates},
        iteration=iteration,
    )


class OrderingPolicy:
    """A named, deterministic ranking rule over candidate nets.

    Subclasses (or :func:`register_ordering`-decorated scorers) override
    :meth:`rank`; the base class sorts by :meth:`score` descending with
    the net name as the deterministic tiebreak, which is enough for
    every scalar-scored policy.
    """

    #: Registry key; set by :func:`register_ordering`.
    name: str = ""
    #: One-line description shown by ``merlin-repro closure --help``.
    describe: str = ""

    def score(self, features: NetFeatures) -> float:
        """Urgency scalar of one net (higher = optimize earlier)."""
        raise NotImplementedError

    def rank(self, context: OrderingContext) -> List[str]:
        """Candidate net names, most urgent first (deterministic)."""
        return sorted(
            context.candidates,
            key=lambda name: (-self.score(context.features[name]), name))


#: The policy registry; :func:`register_ordering` populates it.
ORDERING_POLICIES: Dict[str, OrderingPolicy] = {}


def register_ordering(name: str, describe: str = ""
                      ) -> Callable[[type], type]:
    """Class decorator registering an :class:`OrderingPolicy`.

    Registration is idempotent per name only in the sense that a repeat
    registration is an error — policies are module-level singletons and
    a silent overwrite would make ``--order`` ambiguous.
    """
    def _register(cls: type) -> type:
        if name in ORDERING_POLICIES:
            if type(ORDERING_POLICIES[name]).__qualname__ == cls.__qualname__:
                # The same class executed twice — ``python -m`` runs the
                # defining module once as itself and once as __main__.
                # Keep the first registration.
                return cls
            raise MerlinInputError(
                f"ordering policy {name!r} is already registered")
        policy = cls()
        policy.name = name
        policy.describe = describe or (cls.__doc__ or "").strip().split(
            "\n")[0]
        ORDERING_POLICIES[name] = policy
        return cls
    return _register


def get_ordering(name: str) -> OrderingPolicy:
    """Look up a registered policy; raises with the known names."""
    try:
        return ORDERING_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(ORDERING_POLICIES))
        raise MerlinInputError(
            f"unknown ordering policy {name!r} (known: {known})") from None


def available_orderings() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(ORDERING_POLICIES)


# -- built-in policies -------------------------------------------------


@register_ordering("criticality",
                   "most negative driver slack first (timing-driven)")
class CriticalityOrdering(OrderingPolicy):
    """Most timing-critical net first.

    The driver slack already folds in everything downstream of the net
    (required times propagate backward through its sinks), so sorting on
    it alone reproduces the classic "peel the critical path" schedule.
    Fanout breaks exact slack ties — among equally late nets the one
    feeding more gates moves more of the timing graph per optimization.
    """

    def score(self, features: NetFeatures) -> float:
        return -features.driver_slack + 1e-6 * features.fanout


@register_ordering("fanout", "largest sink count first (topology-driven)")
class FanoutOrdering(OrderingPolicy):
    """Largest fanout first, slack-blind.

    The paper's Table 2 baseline mindset: big fanout nets are where
    buffered-tree construction has the most structural freedom.  Used
    here mostly as the comparison anchor the criticality policies must
    beat on iterations-to-converge.
    """

    def score(self, features: NetFeatures) -> float:
        return float(features.fanout)


@register_ordering("slack_weighted",
                   "criticality discounted by geometric span")
class SlackWeightedOrdering(OrderingPolicy):
    """Criticality weighted by how much wire there is to fix.

    Score is ``-slack + span_bonus``: among similarly critical nets the
    geometrically long one (more recoverable Elmore delay) wins.  The
    span bonus is log-compressed so a die-spanning net cannot outrank a
    genuinely late short net.
    """

    #: ps of equivalent urgency granted per e-fold of span (um).
    SPAN_WEIGHT_PS = 18.0

    def score(self, features: NetFeatures) -> float:
        return (-features.driver_slack
                + self.SPAN_WEIGHT_PS * math.log1p(features.span / 100.0))


def _register_learned() -> None:
    """Import-cycle-free registration of the learned ranker.

    :mod:`repro.pipeline.learned` imports this module for the feature
    schema, so the registration must run from here, lazily enough that
    the learned module sees a fully initialized registry API.
    """
    from repro.pipeline import learned as _learned  # noqa: F401


_register_learned()
