"""Write-ahead closure journal: crash-safe, resumable timing closure.

A multi-hour :func:`repro.pipeline.closure.run_closure` run that dies at
iteration 40 should not restart from zero.  The journal makes the loop
durable: after each completed iteration the full loop state — exact
per-sink delays, accepted trees, buffer areas, degraded set, attempted
required-time vectors, the previous critical delay — plus the iteration
report is appended to an append-only JSONL file.  ``merlin-repro
closure --resume <journal>`` then replays the completed iterations
bit-identically (the state is *restored*, not recomputed) and continues
from the crash point.

Durability contract:

* every record carries a SHA-256 checksum over its canonical JSON body
  (sorted keys, no whitespace, checksum field excluded);
* appends are atomic at the line level: one ``write`` of the full line,
  then ``flush`` + ``os.fsync`` before the append returns, so a crash
  can tear at most the final line;
* the reader tolerates exactly that: a torn or checksum-failing *final*
  line is discarded (and counted); corruption anywhere earlier raises
  :class:`~repro.resilience.errors.JournalCorruptError`, because silent
  state loss in the middle of a journal is never safe to resume over;
* resuming truncates the file back to the last valid record boundary
  before appending, so a torn tail cannot shadow later records.

The header pins the run identity (circuit fingerprint, closure config,
ordering policy, timing target); ``--resume`` refuses a journal written
for a different design or configuration rather than silently producing
a franken-run.

Chaos seams: ``pipeline.journal.append`` and ``pipeline.journal.read``
are registered fault sites, so the chaos suite can tear records and
corrupt reads deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.instrument import names as metric
from repro.instrument.recorder import NULL_RECORDER, Recorder
from repro.resilience.errors import JournalCorruptError, MerlinInputError
from repro.resilience.faults import fault_point

__all__ = [
    "JOURNAL_VERSION",
    "ClosureJournal",
    "JournalReplay",
    "read_journal",
]

JOURNAL_VERSION = 1

RECORD_HEADER = "header"
RECORD_ITERATION = "iteration"


def _canonical(record: Dict[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != "checksum"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _checksum(record: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(record).encode("utf-8")).hexdigest()


def _sealed(record: Dict[str, Any]) -> str:
    """The full journal line (checksummed, newline-terminated)."""
    record = dict(record)
    record["checksum"] = _checksum(record)
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")) + "\n"


@dataclass
class JournalReplay:
    """What :func:`read_journal` recovered from a journal file."""

    header: Dict[str, Any]
    #: Completed-iteration records, in index order.
    records: List[Dict[str, Any]]
    #: 1 when a torn/corrupt final line was discarded, else 0.
    torn: int
    #: Byte offset just past the last valid record (truncation point).
    valid_bytes: int

    @property
    def last_index(self) -> int:
        """Index of the last journaled iteration (-1 when none)."""
        return self.records[-1]["index"] if self.records else -1

    @property
    def stopped(self) -> bool:
        """True when the journaled run reached a terminal iteration."""
        return bool(self.records) and bool(self.records[-1].get("stop"))


def read_journal(path: str, recorder: Optional[Recorder] = None
                 ) -> JournalReplay:
    """Parse and verify a journal; see the module docstring for the
    torn-tail vs mid-file corruption contract."""
    rec = recorder or NULL_RECORDER
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise MerlinInputError(
            f"cannot read closure journal {path!r}: {exc}") from exc

    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    torn = 0
    valid_bytes = 0
    offset = 0
    lines = blob.split(b"\n")
    for number, raw in enumerate(lines):
        # Everything before the final element is a newline-terminated
        # line; the final element is either b"" (clean tail) or a torn
        # write that never got its newline.
        terminated = number < len(lines) - 1
        line_bytes = raw + (b"\n" if terminated else b"")
        if not raw:
            offset += len(line_bytes)
            continue
        is_last = not any(lines[number + 1:])
        record = _verify_line(path, raw, number, is_last and torn == 0)
        if record is None:
            torn += 1
            rec.incr(metric.PIPELINE_JOURNAL_TORN)
            break
        if header is None:
            if record.get("type") != RECORD_HEADER:
                raise JournalCorruptError(
                    f"journal {path!r} does not start with a header "
                    f"record (line {number + 1} is "
                    f"{record.get('type')!r})")
            if record.get("version") != JOURNAL_VERSION:
                raise MerlinInputError(
                    f"journal {path!r} has version "
                    f"{record.get('version')!r}; this build reads "
                    f"version {JOURNAL_VERSION}")
            header = record
        else:
            if record.get("type") != RECORD_ITERATION:
                raise JournalCorruptError(
                    f"journal {path!r} line {number + 1} has unexpected "
                    f"record type {record.get('type')!r}")
            expected = records[-1]["index"] + 1 if records else 0
            if record.get("index") != expected:
                raise JournalCorruptError(
                    f"journal {path!r} line {number + 1} is iteration "
                    f"{record.get('index')!r}, expected {expected} — "
                    f"records are missing or reordered")
            records.append(record)
        offset += len(line_bytes)
        valid_bytes = offset
    if header is None:
        raise MerlinInputError(
            f"journal {path!r} holds no valid header record"
            + (" (file is empty or fully torn)" if torn else ""))
    return JournalReplay(header=header, records=records, torn=torn,
                         valid_bytes=valid_bytes)


def _verify_line(path: str, raw: bytes, number: int, tolerate: bool
                 ) -> Optional[Dict[str, Any]]:
    """Decode + checksum one line; None = discarded torn tail."""
    raw = fault_point("pipeline.journal.read", raw, key=str(number))
    try:
        record = json.loads(raw.decode("utf-8"))
        if not isinstance(record, dict):
            raise ValueError("record is not an object")
        stamp = record.get("checksum")
        if stamp != _checksum(record):
            raise ValueError("checksum mismatch")
    except (ValueError, UnicodeDecodeError) as exc:
        if tolerate:
            return None
        raise JournalCorruptError(
            f"journal {path!r} line {number + 1} is corrupt ({exc}); "
            f"mid-file corruption cannot be resumed over") from exc
    return record


class ClosureJournal:
    """Appender for one closure run's journal (crash-safe writes).

    ``ClosureJournal.create`` starts a fresh journal (truncating any
    stale file at that path); ``ClosureJournal.resume`` re-opens an
    existing one after :func:`read_journal`, truncated back to its last
    valid record so new appends extend clean state.
    """

    def __init__(self, path: str, handle: Any,
                 recorder: Optional[Recorder] = None) -> None:
        self.path = path
        self._handle = handle
        self._rec = recorder or NULL_RECORDER

    @classmethod
    def create(cls, path: str, header: Dict[str, Any],
               recorder: Optional[Recorder] = None) -> "ClosureJournal":
        journal = cls(path, open(path, "wb"), recorder)
        record = dict(header)
        record["type"] = RECORD_HEADER
        record["version"] = JOURNAL_VERSION
        journal._append(record, key="header")
        return journal

    @classmethod
    def resume(cls, path: str, replay: JournalReplay,
               recorder: Optional[Recorder] = None) -> "ClosureJournal":
        handle = open(path, "r+b")
        handle.truncate(replay.valid_bytes)
        handle.seek(replay.valid_bytes)
        return cls(path, handle, recorder)

    def append_iteration(self, index: int, state: Dict[str, Any],
                         report: Dict[str, Any], stop: bool) -> None:
        """Seal one completed iteration (state snapshot + report)."""
        self._append({
            "type": RECORD_ITERATION,
            "index": index,
            "state": state,
            "report": report,
            "stop": bool(stop),
        }, key=str(index))

    def _append(self, record: Dict[str, Any], key: str) -> None:
        line = _sealed(record).encode("utf-8")
        line = fault_point("pipeline.journal.append", line, key=key)
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._rec.incr(metric.PIPELINE_JOURNAL_RECORDS)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ClosureJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
