"""The learned net-ordering ranker (stdlib-only linear model).

Follows the direction of "Machine Learning Optimal Ordering in Global
Routing Problems" (PAPERS.md): learn which nets to optimize first from
data instead of hand-picking a heuristic.  The model is deliberately
small — ridge-regularized linear regression over the six
:data:`repro.pipeline.ordering.FEATURE_NAMES` features, fit by solving
the normal equations with Gaussian elimination — because the training
set is self-generated and the win comes from the *pipeline hook*, not
model capacity.

**Labels are self-generated**: :func:`generate_training_set` places
seeded synthetic circuits, runs the pre-optimization STA, optimizes
every multi-sink net exactly the way the closure pipeline would (same
per-net ``min_area`` objective), and labels each net with its measured
delay improvement — star-estimate worst sink delay minus optimized
worst sink arrival (ps).  :func:`train` standardizes features, fits,
and returns a weights record; :func:`save_weights` writes the committed
``learned_weights.json`` next to this module.

Regenerate the committed weights after changing features or the
training suite::

    PYTHONPATH=src python -m repro.pipeline.learned --train

At ranking time the policy scores each candidate with its predicted
improvement plus its lateness (``max(0, -driver_slack)``) so the model
prioritizes nets where predicted gain and urgency coincide; a missing
or unreadable weights file falls back to pinned coefficients so the
policy never crashes a closure run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.pipeline.ordering import (
    FEATURE_NAMES,
    NetFeatures,
    OrderingPolicy,
    net_features,
    register_ordering,
)

#: Committed weights live next to this module (regenerable, reviewed
#: like any other source change).
WEIGHTS_PATH = os.path.join(os.path.dirname(__file__),
                            "learned_weights.json")

#: Schema version of the weights record; bump when features change.
WEIGHTS_VERSION = 1

#: Ridge strength: tiny, just enough to keep the normal equations
#: well-conditioned when a feature is constant across the training set.
RIDGE_LAMBDA = 1e-6

#: Pinned fallback when no weights file is readable: span and fanout
#: dominate (long, wide nets gain the most from buffered-tree
#: construction), mildly boosted by lateness.  Values are a snapshot of
#: an early training run — deterministic, not load-bearing for quality.
_FALLBACK = {
    "version": WEIGHTS_VERSION,
    "features": list(FEATURE_NAMES),
    "mean": [3.0, 0.0, 0.0, 1500.0, 15.0, 7.5],
    "std": [1.5, 50.0, 50.0, 900.0, 8.0, 1.5],
    "coefficients": [8.0, -2.0, -1.0, 14.0, 3.0, 1.0],
    "intercept": 20.0,
}


@dataclass(frozen=True)
class LearnedWeights:
    """A trained standardize-then-linear scoring model."""

    features: Tuple[str, ...]
    mean: Tuple[float, ...]
    std: Tuple[float, ...]
    coefficients: Tuple[float, ...]
    intercept: float

    def predict(self, vector: Sequence[float]) -> float:
        """Predicted delay improvement (ps) for one feature vector."""
        total = self.intercept
        for value, mu, sigma, coef in zip(vector, self.mean, self.std,
                                          self.coefficients):
            total += coef * ((value - mu) / sigma)
        return total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": WEIGHTS_VERSION,
            "features": list(self.features),
            "mean": list(self.mean),
            "std": list(self.std),
            "coefficients": list(self.coefficients),
            "intercept": self.intercept,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LearnedWeights":
        if data.get("version") != WEIGHTS_VERSION \
                or list(data.get("features", ())) != list(FEATURE_NAMES):
            raise ValueError("incompatible learned-weights record")
        std = [s if s > 0 else 1.0 for s in data["std"]]
        return cls(
            features=tuple(data["features"]),
            mean=tuple(float(v) for v in data["mean"]),
            std=tuple(float(v) for v in std),
            coefficients=tuple(float(v) for v in data["coefficients"]),
            intercept=float(data["intercept"]),
        )


def load_weights(path: Optional[str] = None) -> LearnedWeights:
    """Load the committed weights; fall back to the pinned defaults.

    The fallback keeps the ``learned`` policy usable in stripped-down
    installs (the JSON is package data); ranking quality degrades, the
    pipeline does not.
    """
    candidate = path or WEIGHTS_PATH
    try:
        with open(candidate, encoding="utf-8") as handle:
            return LearnedWeights.from_dict(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError):
        return LearnedWeights.from_dict(_FALLBACK)


def save_weights(weights: LearnedWeights,
                 path: Optional[str] = None) -> str:
    target = path or WEIGHTS_PATH
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(weights.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


# -- training ----------------------------------------------------------


def training_specs() -> List[Any]:
    """The pinned training circuits (disjoint from the golden fixtures).

    Seeds and shapes are fixed so training is reproducible bit-for-bit;
    they deliberately do *not* reuse the Table 2 suite seeds, keeping
    the evaluation circuits out of the training set.
    """
    from repro.netlist.generator import CircuitSpec

    shapes = (
        ("train_a", 18, 4, 5, 4),
        ("train_b", 26, 5, 7, 5),
        ("train_c", 34, 5, 8, 6),
        ("train_d", 22, 4, 6, 5),
    )
    return [
        CircuitSpec(name=name, primary_inputs=pis, primary_outputs=pos,
                    logic_gates=gates, levels=levels, max_fanout=6,
                    seed=7919 + 31 * index)
        for index, (name, gates, levels, pis, pos) in enumerate(shapes)
    ]


def generate_training_set(specs: Optional[Sequence[Any]] = None,
                          config: Optional[Any] = None,
                          target_scale: float = 0.88,
                          ) -> Tuple[List[List[float]], List[float]]:
    """Self-generated labeled runs: (feature vectors, improvements).

    Mirrors one closure-pipeline iteration per circuit: place, derive
    tightened required times, optimize every multi-sink net with the
    per-net ``min_area`` objective, and record how much each net's worst
    sink delay improved over the star estimate.
    """
    from repro.core.config import MerlinConfig
    from repro.core.merlin import merlin
    from repro.core.objective import Objective
    from repro.netlist.flow_runner import _to_routing_net
    from repro.netlist.generator import generate_circuit
    from repro.netlist.placement import place_netlist
    from repro.netlist.sta import run_sta, star_net_delay
    from repro.routing.evaluate import evaluate_tree
    from repro.tech.technology import default_technology

    config = config or MerlinConfig.test_preset()
    tech = default_technology()
    samples: List[List[float]] = []
    labels: List[float] = []
    for spec in (specs if specs is not None else training_specs()):
        netlist = generate_circuit(spec)
        place_netlist(netlist)
        estimate = run_sta(netlist, tech)
        sta = run_sta(netlist, tech,
                      target=target_scale * estimate.critical_delay)
        star = star_net_delay(netlist, tech)
        for circuit_net in netlist.nets:
            if len(circuit_net.sinks) < 2:
                continue
            features = net_features(netlist, circuit_net, sta)
            net = _to_routing_net(netlist, circuit_net, sta)
            objective = Objective.min_area(
                required_time_floor=sta.arrival[circuit_net.driver])
            result = merlin(net, tech, config=config, objective=objective)
            evaluation = evaluate_tree(result.tree, tech)
            star_worst = max(star(circuit_net, s)
                             for s in circuit_net.sinks)
            optimized_worst = max(evaluation.sink_arrivals)
            samples.append(features.vector())
            labels.append(star_worst - optimized_worst)
    return samples, labels


def train(samples: Optional[Sequence[Sequence[float]]] = None,
          labels: Optional[Sequence[float]] = None) -> LearnedWeights:
    """Fit the ridge model; generates the training set when not given."""
    if samples is None or labels is None:
        samples, labels = generate_training_set()
    if len(samples) != len(labels) or not samples:
        raise ValueError("training set must be non-empty and aligned")
    n_features = len(FEATURE_NAMES)
    count = len(samples)

    mean = [sum(row[j] for row in samples) / count
            for j in range(n_features)]
    std = []
    for j in range(n_features):
        var = sum((row[j] - mean[j]) ** 2 for row in samples) / count
        std.append(var ** 0.5 if var > 0 else 1.0)
    z = [[(row[j] - mean[j]) / std[j] for j in range(n_features)]
         for row in samples]

    # Normal equations with an intercept column and ridge on the slopes.
    dim = n_features + 1
    xtx = [[0.0] * dim for _ in range(dim)]
    xty = [0.0] * dim
    for row, label in zip(z, labels):
        augmented = list(row) + [1.0]
        for a in range(dim):
            xty[a] += augmented[a] * label
            for b in range(dim):
                xtx[a][b] += augmented[a] * augmented[b]
    for j in range(n_features):  # no penalty on the intercept
        xtx[j][j] += RIDGE_LAMBDA * count
    solution = _solve(xtx, xty)
    return LearnedWeights(
        features=tuple(FEATURE_NAMES),
        mean=tuple(mean),
        std=tuple(std),
        coefficients=tuple(solution[:n_features]),
        intercept=solution[n_features],
    )


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (tiny dense system)."""
    dim = len(rhs)
    aug = [list(matrix[i]) + [rhs[i]] for i in range(dim)]
    for col in range(dim):
        pivot = max(range(col, dim), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            raise ValueError("singular normal equations (add ridge)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(col + 1, dim):
            factor = aug[row][col] / aug[col][col]
            for k in range(col, dim + 1):
                aug[row][k] -= factor * aug[col][k]
    out = [0.0] * dim
    for row in range(dim - 1, -1, -1):
        acc = aug[row][dim] - sum(aug[row][k] * out[k]
                                  for k in range(row + 1, dim))
        out[row] = acc / aug[row][row]
    return out


# -- the registered policy ---------------------------------------------


@register_ordering("learned",
                   "feature-based ranker trained on self-generated runs")
class LearnedOrdering(OrderingPolicy):
    """Predicted-improvement ranking from the trained linear model.

    Score = predicted delay improvement (ps) + lateness
    (``max(0, -driver_slack)``): the model supplies "where is there
    delay to recover", the lateness term supplies "where does it matter
    right now".  Weights load lazily on first use and are cached for
    the process lifetime.
    """

    _weights: Optional[LearnedWeights] = None

    @property
    def weights(self) -> LearnedWeights:
        if LearnedOrdering._weights is None:
            LearnedOrdering._weights = load_weights()
        return LearnedOrdering._weights

    def score(self, features: NetFeatures) -> float:
        predicted = self.weights.predict(features.vector())
        return predicted + max(0.0, -features.driver_slack)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.pipeline.learned --train`` regenerates the
    committed weights file (review the JSON diff like code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline.learned",
        description="train the learned net-ordering ranker")
    parser.add_argument("--train", action="store_true", required=True,
                        help="regenerate learned_weights.json from the "
                             "pinned training circuits")
    parser.add_argument("--out", default=None,
                        help="output path (default: the committed "
                             "learned_weights.json)")
    args = parser.parse_args(argv)
    weights = train()
    path = save_weights(weights, args.out)
    print(f"wrote {path}")
    for name, coef in zip(FEATURE_NAMES, weights.coefficients):
        print(f"  {name:18s} {coef:+10.3f}")
    print(f"  {'intercept':18s} {weights.intercept:+10.3f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
