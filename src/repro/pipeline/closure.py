"""Full-netlist timing closure: the paper's Table 2, iterated to a fixpoint.

:func:`run_closure` promotes the engine from "optimize one net" to
"close timing on a whole design":

1. place the netlist and derive a deliberately over-constrained timing
   target (``target_scale`` x the pre-optimization STA critical delay,
   exactly like :func:`repro.netlist.flow_runner.run_circuit_flow`);
2. run STA, select the *stale* multi-sink nets (never optimized, or
   timing-failing with materially drifted required times), and rank
   them with the configured ordering policy
   (:mod:`repro.pipeline.ordering`);
3. batch the top of the ranking through
   :meth:`repro.service.OptimizationService.optimize_many` — warm pool,
   canonical-net cache, per-job compute budgets, per-net ``min_area``
   objectives carrying each net's own required-time floor;
4. re-time with the optimized trees' **exact** per-sink delays and
   iterate until the critical delay stops improving (worst-slack
   fixpoint), no stale nets remain, or the iteration cap is hit.

Monotonicity contract: the reported critical delay never increases
across iterations — an iteration whose re-timing comes out *worse*
(possible when shifting required times lead the per-net optimizer
astray) is rolled back to the previous tree set and closure stops.
Equivalently, the circuit's worst slack is non-decreasing iteration
over iteration.

Failure containment mirrors the service contract: a net whose job
fails keeps its star estimate (still a valid circuit, just unoptimized
there); degraded answers are accepted into the tree set but — because
the service never caches degraded payloads — are recomputed at full
quality if their net is ever re-selected in a later iteration.

Every iteration emits a :class:`ClosureIteration` report and, when a
recorder is active, ``pipeline.*`` counters/series plus one
``pipeline.iteration`` event (:mod:`repro.instrument.names`).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.objective import Objective
from repro.instrument import names as metric
from repro.instrument.recorder import Recorder, active_recorder
from repro.net import Net
from repro.netlist.flow_runner import _to_routing_net
from repro.netlist.netlist import CircuitNet, Netlist
from repro.netlist.placement import place_netlist
from repro.netlist.sta import NetDelayFn, StaResult, run_sta, star_net_delay
from repro.pipeline.journal import ClosureJournal, read_journal
from repro.pipeline.ordering import build_context, get_ordering
from repro.resilience.errors import MerlinInputError
from repro.routing.export import tree_from_dict, tree_signature, tree_to_dict
from repro.routing.tree import RoutingTree


@dataclass(frozen=True)
class ClosureConfig:
    """Knobs of one timing-closure run (validated on construction)."""

    #: Registered ordering-policy name (see ``repro.pipeline.ordering``).
    order: str = "criticality"
    #: Nets below this sink count are left on their star estimates.
    min_sinks: int = 2
    #: Timing target as a fraction of the pre-optimization critical
    #: delay; < 1 over-constrains so optimizers must *improve* delay.
    target_scale: float = 0.88
    #: Nets re-optimized per iteration (None = every stale candidate).
    batch_size: Optional[int] = None
    #: Hard cap on closure iterations.
    max_iterations: int = 10
    #: Required-time drift (ps) below which an already-optimized net is
    #: not considered stale — the fixpoint detector.
    retime_tolerance_ps: float = 0.5
    #: Critical-delay improvement (ps) below which a full-coverage
    #: iteration declares convergence.
    improvement_tolerance_ps: float = 1e-6

    def __post_init__(self) -> None:
        if not 0.0 < self.target_scale <= 1.0:
            raise MerlinInputError("target_scale must be in (0, 1]")
        if self.min_sinks < 1:
            raise MerlinInputError("min_sinks must be >= 1")
        if self.max_iterations < 1:
            raise MerlinInputError("max_iterations must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise MerlinInputError("batch_size must be >= 1 (or None)")
        if self.retime_tolerance_ps < 0:
            raise MerlinInputError("retime_tolerance_ps must be >= 0")


@dataclass
class ClosureIteration:
    """One STA -> rank -> optimize -> re-time round's report."""

    index: int
    #: Stale nets eligible this round (before the batch cut).
    candidates: int
    #: Net names actually sent to the service, in policy order.
    selected: List[str]
    #: Jobs that produced a tree (cache hits included).
    reoptimized: int
    #: Jobs answered from the canonical-net cache.
    cache_hits: int
    #: Nets answered by a degradation-ladder fallback this round.
    degraded: List[str]
    #: Nets whose job failed (they keep their previous/star delays).
    failed: List[str]
    #: STA critical delay (ps) after this round's re-timing.
    critical_delay: float
    #: Circuit worst slack (ps) after this round (target fixed).
    worst_slack: float
    #: Total inserted buffer area (um^2) after this round.
    buffer_area: float
    wall_s: float
    #: True when this round's trees were discarded (worse re-timing).
    rolled_back: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "candidates": self.candidates,
            "selected": list(self.selected),
            "reoptimized": self.reoptimized,
            "cache_hits": self.cache_hits,
            "degraded": list(self.degraded),
            "failed": list(self.failed),
            "critical_delay": self.critical_delay,
            "worst_slack": self.worst_slack,
            "buffer_area": self.buffer_area,
            "wall_s": self.wall_s,
            "rolled_back": self.rolled_back,
        }


@dataclass
class ClosureResult:
    """The converged (or capped) outcome of one closure run."""

    circuit: str
    policy: str
    #: Pre-optimization STA critical delay (star estimates, ps).
    estimate_delay: float
    #: The timing target the run closed against (ps).
    target: float
    converged: bool
    iterations: List[ClosureIteration]
    critical_delay: float
    worst_slack: float
    gate_area: float
    buffer_area: float
    total_area: float
    #: Nets holding an optimized tree at the end.
    nets_optimized: int
    runtime_s: float
    #: Final STA (exact optimized delays where available).
    sta: StaResult = field(repr=False)
    #: Optimized tree per net name (the final accepted set).
    trees: Dict[str, RoutingTree] = field(default_factory=dict, repr=False)
    #: Nets whose final tree came from the degradation ladder.
    degraded_nets: Set[str] = field(default_factory=set)

    @property
    def iterations_to_converge(self) -> int:
        return len(self.iterations)

    def signatures(self) -> Dict[str, str]:
        """Deterministic topology fingerprint per optimized net."""
        return {name: tree_signature(tree)
                for name, tree in sorted(self.trees.items())}

    def to_dict(self, include_trees: bool = False) -> Dict[str, Any]:
        """JSON report (the ``POST /closure`` response body)."""
        data: Dict[str, Any] = {
            "circuit": self.circuit,
            "policy": self.policy,
            "estimate_delay": self.estimate_delay,
            "target": self.target,
            "converged": self.converged,
            "iterations": [it.to_dict() for it in self.iterations],
            "iterations_to_converge": self.iterations_to_converge,
            "critical_delay": self.critical_delay,
            "worst_slack": self.worst_slack,
            "gate_area": self.gate_area,
            "buffer_area": self.buffer_area,
            "total_area": self.total_area,
            "nets_optimized": self.nets_optimized,
            "degraded_nets": sorted(self.degraded_nets),
            "runtime_s": self.runtime_s,
            "signatures": self.signatures(),
        }
        if include_trees:
            data["trees"] = {name: tree_to_dict(tree)
                             for name, tree in sorted(self.trees.items())}
        return data


def run_closure(netlist: Netlist,
                tech: Optional[Any] = None,
                config: Optional[Any] = None,
                closure: Optional[ClosureConfig] = None,
                service: Optional[Any] = None,
                workers: Optional[int] = None,
                recorder: Optional[Recorder] = None,
                journal_path: Optional[str] = None,
                resume: bool = False) -> ClosureResult:
    """Close timing on ``netlist``; see the module docstring.

    Pass a long-lived :class:`~repro.service.OptimizationService` to
    share its warm pool and cache across closure runs (its tech/config
    then apply, and ``tech``/``config``/``workers`` must be omitted);
    otherwise a transient service is spun up and shut down here.

    ``journal_path`` makes the run crash-safe: each completed iteration
    is sealed into a write-ahead journal
    (:mod:`repro.pipeline.journal`).  With ``resume=True`` the journal
    is replayed first — completed iterations are *restored*
    bit-identically, not recomputed — and the loop continues from the
    crash point.  Resuming refuses a journal written for a different
    circuit, policy, closure config, or technology.
    """
    from repro.service.engine import OptimizationService
    from repro.tech.technology import default_technology

    closure = closure or ClosureConfig()
    policy = get_ordering(closure.order)
    if resume and journal_path is None:
        raise MerlinInputError("resume=True requires journal_path")
    if service is not None:
        if tech is not None or config is not None or workers is not None:
            raise MerlinInputError(
                "run_closure(service=...) uses the service's own "
                "tech/config/workers; configure the service instead")
        return _run(netlist, service, closure, policy,
                    recorder or active_recorder(),
                    journal_path=journal_path, resume=resume)
    tech = tech or default_technology()
    with OptimizationService(tech=tech, config=config,
                             workers=workers) as transient:
        return _run(netlist, transient, closure, policy,
                    recorder or active_recorder(),
                    journal_path=journal_path, resume=resume)


def _run(netlist: Netlist, service: Any, closure: ClosureConfig,
         policy: Any, rec: Recorder,
         journal_path: Optional[str] = None,
         resume: bool = False) -> ClosureResult:
    start = time.perf_counter()
    tech = service.tech
    place_netlist(netlist)
    estimate = run_sta(netlist, tech)
    target = closure.target_scale * estimate.critical_delay
    star = star_net_delay(netlist, tech)

    eligible = [net for net in netlist.nets
                if len(net.sinks) >= closure.min_sinks]
    #: net name -> exact per-sink delays of the accepted optimized tree.
    delays: Dict[str, List[float]] = {}
    trees: Dict[str, RoutingTree] = {}
    buffer_areas: Dict[str, float] = {}
    degraded: Set[str] = set()
    #: net name -> required-time vector at the last optimization attempt
    #: (failures included, so a persistently failing job is not retried
    #: until its timing context actually changes).
    attempted: Dict[str, Tuple[float, ...]] = {}

    def net_delay(net: CircuitNet, sink_name: str) -> float:
        arrivals = delays.get(net.name)
        if arrivals is None:
            return star(net, sink_name)
        return arrivals[net.sinks.index(sink_name)]

    iterations: List[ClosureIteration] = []
    converged = False
    sta = run_sta(netlist, tech, net_delay=net_delay, target=target)
    previous_delay = sta.critical_delay

    journal: Optional[ClosureJournal] = None
    start_index = 0
    if journal_path is not None:
        header = _journal_header(netlist, service, closure, policy,
                                 estimate.critical_delay, target)
        journal_rec = rec if rec.enabled else None
        if resume:
            replay = read_journal(journal_path, journal_rec)
            _check_journal_header(journal_path, replay.header, header)
            if replay.records:
                state = replay.records[-1]["state"]
                delays.update({name: [float(d) for d in arr]
                               for name, arr in state["delays"].items()})
                buffer_areas.update({name: float(area) for name, area
                                     in state["buffer_areas"].items()})
                degraded.update(state["degraded"])
                attempted.update({name: tuple(vec) for name, vec
                                  in state["attempted"].items()})
                previous_delay = float(state["previous_delay"])
                # The restored delays drive the re-timing, so this STA
                # lands exactly where the journaled iteration left it.
                sta = run_sta(netlist, tech, net_delay=net_delay,
                              target=target)
                trees.update(_restore_trees(netlist, state["trees"],
                                            sta, tech))
                iterations.extend(ClosureIteration(**record["report"])
                                  for record in replay.records)
                start_index = replay.last_index + 1
                converged = replay.stopped
                if rec.enabled:
                    rec.incr(metric.PIPELINE_JOURNAL_REPLAYED,
                             len(replay.records))
            journal = ClosureJournal.resume(journal_path, replay,
                                            journal_rec)
        else:
            journal = ClosureJournal.create(journal_path, header,
                                            journal_rec)

    try:
        if not converged:
            converged = _iterate(
                netlist, service, closure, policy, rec, tech, target,
                eligible, delays, trees, buffer_areas, degraded, attempted,
                net_delay, iterations, journal, start_index,
                previous_delay, lambda: run_sta(
                    netlist, tech, net_delay=net_delay, target=target))
    finally:
        if journal is not None:
            journal.close()

    sta = run_sta(netlist, tech, net_delay=net_delay, target=target)
    gate_area = netlist.gate_area
    buffer_area = sum(buffer_areas.values())
    return ClosureResult(
        circuit=netlist.name,
        policy=policy.name,
        estimate_delay=estimate.critical_delay,
        target=target,
        converged=converged,
        iterations=iterations,
        critical_delay=sta.critical_delay,
        worst_slack=sta.worst_slack,
        gate_area=gate_area,
        buffer_area=buffer_area,
        total_area=gate_area + buffer_area,
        nets_optimized=len(trees),
        runtime_s=time.perf_counter() - start,
        sta=sta,
        trees=trees,
        degraded_nets=degraded,
    )


def _iterate(netlist: Netlist, service: Any, closure: ClosureConfig,
             policy: Any, rec: Recorder, tech: Any, target: float,
             eligible: List[CircuitNet],
             delays: Dict[str, List[float]],
             trees: Dict[str, RoutingTree],
             buffer_areas: Dict[str, float],
             degraded: Set[str],
             attempted: Dict[str, Tuple[float, ...]],
             net_delay: NetDelayFn,
             iterations: List[ClosureIteration],
             journal: Optional[ClosureJournal],
             start_index: int, previous_delay: float,
             retime: Any) -> bool:
    """The STA -> rank -> optimize -> re-time loop (state mutated in
    place); returns the converged flag."""
    converged = False
    sta = retime()
    for index in range(start_index, closure.max_iterations):
        iter_start = time.perf_counter()
        candidates = [net for net in eligible
                      if _is_stale(net, sta, attempted, closure)]
        if not candidates:
            converged = True
            break
        context = build_context(netlist, sta, candidates, iteration=index)
        ranked = policy.rank(context)
        selected = ranked if closure.batch_size is None \
            else ranked[:closure.batch_size]
        by_name = {net.name: net for net in candidates}

        jobs: List[Net] = []
        objectives: List[Objective] = []
        for name in selected:
            circuit_net = by_name[name]
            jobs.append(_to_routing_net(netlist, circuit_net, sta))
            objectives.append(Objective.min_area(
                required_time_floor=sta.arrival[circuit_net.driver]))
            attempted[name] = tuple(
                sta.required[s] for s in circuit_net.sinks)

        results = service.optimize_many(jobs, objectives=objectives)

        snapshot = (dict(delays), dict(trees), dict(buffer_areas),
                    set(degraded))
        cache_hits = 0
        round_degraded: List[str] = []
        round_failed: List[str] = []
        reoptimized = 0
        for name, result in zip(selected, results):
            if not result.ok:
                round_failed.append(name)
                continue
            reoptimized += 1
            cache_hits += int(result.cached)
            arrivals = result.evaluation["sink_arrivals"]
            delays[name] = [arrivals[str(i)]
                            for i in range(len(by_name[name].sinks))]
            trees[name] = result.tree
            buffer_areas[name] = result.evaluation["buffer_area"]
            if result.degraded:
                degraded.add(name)
                round_degraded.append(name)
            else:
                degraded.discard(name)

        sta = run_sta(netlist, tech, net_delay=net_delay, target=target)
        rolled_back = False
        if sta.critical_delay > previous_delay \
                + closure.improvement_tolerance_ps:
            # Worse circuit after this round: discard its trees and stop
            # (keeps the critical delay monotone non-increasing, i.e.
            # the worst slack monotone non-decreasing).  Restored in
            # place — the caller's net_delay closure shares these dicts.
            delays.clear(), delays.update(snapshot[0])
            trees.clear(), trees.update(snapshot[1])
            buffer_areas.clear(), buffer_areas.update(snapshot[2])
            degraded.clear(), degraded.update(snapshot[3])
            sta = run_sta(netlist, tech, net_delay=net_delay, target=target)
            rolled_back = True
            if rec.enabled:
                rec.incr(metric.PIPELINE_ROLLBACKS)

        improvement = previous_delay - sta.critical_delay
        previous_delay = sta.critical_delay
        report = ClosureIteration(
            index=index,
            candidates=len(candidates),
            selected=list(selected),
            reoptimized=reoptimized,
            cache_hits=cache_hits,
            degraded=round_degraded if not rolled_back else [],
            failed=round_failed,
            critical_delay=sta.critical_delay,
            worst_slack=sta.worst_slack,
            buffer_area=sum(buffer_areas.values()),
            wall_s=time.perf_counter() - iter_start,
            rolled_back=rolled_back,
        )
        iterations.append(report)
        if rec.enabled:
            rec.incr(metric.PIPELINE_ITERATIONS)
            rec.incr(metric.PIPELINE_NETS_REOPTIMIZED, reoptimized)
            rec.incr(metric.PIPELINE_CACHE_HITS, cache_hits)
            rec.incr(metric.PIPELINE_NETS_DEGRADED, len(round_degraded))
            rec.incr(metric.PIPELINE_NETS_FAILED, len(round_failed))
            rec.record(metric.PIPELINE_ITERATION_DELAY_PS,
                       sta.critical_delay)
            rec.record(metric.PIPELINE_ITERATION_WALL_S, report.wall_s)
            rec.event(metric.EVENT_CLOSURE_ITERATION,
                      index=index, policy=policy.name,
                      candidates=len(candidates),
                      selected=len(selected),
                      critical_delay=sta.critical_delay,
                      worst_slack=sta.worst_slack,
                      cache_hits=cache_hits,
                      rolled_back=rolled_back)
        # A rolled-back round stops closure (monotonicity); a
        # full-coverage round with no measurable gain is the fixpoint.
        stop = rolled_back or (len(selected) == len(candidates)
                               and improvement
                               <= closure.improvement_tolerance_ps)
        if journal is not None:
            journal.append_iteration(
                index,
                _journal_state(delays, trees, buffer_areas, degraded,
                               attempted, previous_delay),
                report.to_dict(), stop)
        if stop:
            converged = True
            break
    return converged


def _journal_header(netlist: Netlist, service: Any,
                    closure: ClosureConfig, policy: Any,
                    estimate_delay: float, target: float
                    ) -> Dict[str, Any]:
    """The run identity a journal pins (and ``--resume`` checks)."""
    return {
        "circuit": netlist.name,
        "nets": len(netlist.nets),
        "policy": policy.name,
        "closure": dataclasses.asdict(closure),
        "tech": service.tech_fingerprint,
        "estimate_delay": estimate_delay,
        "target": target,
    }


def _check_journal_header(path: str, stored: Dict[str, Any],
                          expected: Dict[str, Any]) -> None:
    """Refuse to resume a journal written for a different run."""
    for key in ("circuit", "policy", "closure", "tech"):
        if stored.get(key) != expected[key]:
            raise MerlinInputError(
                f"journal {path!r} was written for a different run: "
                f"{key} is {stored.get(key)!r} there but "
                f"{expected[key]!r} here")


def _journal_state(delays: Dict[str, List[float]],
                   trees: Dict[str, RoutingTree],
                   buffer_areas: Dict[str, float],
                   degraded: Set[str],
                   attempted: Dict[str, Tuple[float, ...]],
                   previous_delay: float) -> Dict[str, Any]:
    """JSON snapshot of the loop state at the end of one iteration."""
    return {
        "delays": {name: list(arr)
                   for name, arr in sorted(delays.items())},
        "trees": {name: tree_to_dict(tree)
                  for name, tree in sorted(trees.items())},
        "buffer_areas": dict(sorted(buffer_areas.items())),
        "degraded": sorted(degraded),
        "attempted": {name: list(vec)
                      for name, vec in sorted(attempted.items())},
        "previous_delay": previous_delay,
    }


def _restore_trees(netlist: Netlist, tree_dicts: Dict[str, Any],
                   sta: StaResult, tech: Any) -> Dict[str, RoutingTree]:
    """Rebuild the accepted tree set from journaled ``tree_to_dict``
    exports (placement is deterministic, so frames line up exactly)."""
    by_name = {net.name: net for net in netlist.nets}
    trees: Dict[str, RoutingTree] = {}
    for name, data in tree_dicts.items():
        circuit_net = by_name.get(name)
        if circuit_net is None:
            raise MerlinInputError(
                f"journaled tree for unknown net {name!r}")
        routing_net = _to_routing_net(netlist, circuit_net, sta)
        trees[name] = tree_from_dict(data, routing_net, tech.buffers)
    return trees


def _is_stale(net: CircuitNet, sta: StaResult,
              attempted: Dict[str, Tuple[float, ...]],
              closure: ClosureConfig) -> bool:
    """Does ``net`` need (re-)optimization under the current STA?

    Never-attempted nets always qualify.  An attempted net re-qualifies
    only when it is still timing-failing (some sink slack < 0) *and*
    its required times have drifted materially since the last attempt —
    otherwise re-running the engine would reproduce the same tree (or
    churn on sub-tolerance noise forever).
    """
    previous = attempted.get(net.name)
    if previous is None:
        return True
    if min(sta.slack(s) for s in net.sinks) >= 0.0:
        return False
    drift = max(abs(sta.required[s] - prev)
                for s, prev in zip(net.sinks, previous))
    return drift > closure.retime_tolerance_ps
