"""Ratchet baseline: tolerate committed findings, fail on new ones.

A baseline file (``staticcheck-baseline.json``, committed) records
known findings as ``(rule, path, message)`` triples — line numbers are
deliberately excluded so unrelated edits that shift a tolerated
finding do not break the build, while any *new* finding (or a second
instance of a tolerated one) still fails.  Matching is multiset-style:
a baseline entry absorbs at most one live finding per occurrence
recorded.

Paths are stored relative to the config root with posix separators, so
the committed file is stable across checkouts and operating systems.

``merlin-repro check --update-baseline`` rewrites the file from the
current findings; reviewers see the ratchet loosen or tighten in the
diff.  Deleting the file (or shrinking it) is how the ratchet
advances — the engine never widens it implicitly.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.engine import Finding

BASELINE_VERSION = 1

#: Default baseline filename, resolved against the config root.
BASELINE_BASENAME = "staticcheck-baseline.json"

_Key = Tuple[str, str, str]


def _normalize_path(path: str, config_root: Optional[str]) -> str:
    if config_root:
        rel = os.path.relpath(os.path.abspath(path), config_root)
        if not rel.startswith(".."):
            return rel.replace(os.sep, "/")
    return os.path.normpath(path).replace(os.sep, "/")


class Baseline:
    """A loaded baseline: a multiset of tolerated finding keys."""

    def __init__(self, keys: Optional[Counter] = None) -> None:
        self._keys: Counter = keys if keys is not None else Counter()

    def __len__(self) -> int:
        return sum(self._keys.values())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load ``path``; a missing or malformed file is an empty
        baseline (the ratchet fails closed: every finding counts)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return cls()
        if (not isinstance(document, dict)
                or document.get("version") != BASELINE_VERSION):
            return cls()
        keys: Counter = Counter()
        for entry in document.get("findings", ()):
            if not isinstance(entry, dict):
                continue
            try:
                keys[(str(entry["rule"]), str(entry["path"]),
                      str(entry["message"]))] += 1
            except KeyError:
                continue
        return cls(keys)

    def filter(self, findings: Sequence[Finding],
               config_root: Optional[str] = None,
               ) -> Tuple[List[Finding], int]:
        """Split ``findings`` into (new, number-baselined)."""
        remaining = Counter(self._keys)
        kept: List[Finding] = []
        absorbed = 0
        for finding in findings:
            key: _Key = (finding.rule_id,
                         _normalize_path(finding.path, config_root),
                         finding.message)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                absorbed += 1
            else:
                kept.append(finding)
        return kept, absorbed


def write_baseline(path: str, findings: Sequence[Finding],
                   config_root: Optional[str] = None) -> int:
    """Serialize ``findings`` as the new baseline; returns the count."""
    entries: List[Dict[str, str]] = sorted(
        ({"rule": f.rule_id,
          "path": _normalize_path(f.path, config_root),
          "message": f.message} for f in findings),
        key=lambda e: (e["rule"], e["path"], e["message"]))
    document = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
