"""Phase-1 fact collection: one context-free summary per source file.

The two-phase engine (see :mod:`repro.staticcheck.engine`) never hands
an AST to a project-level pass.  Instead, phase 1 distills each file
into a :class:`FileFacts` — everything any whole-program rule needs,
expressed as plain data: unresolved import statements, async-function
names, statement-expression calls, ``fault_point`` site definitions and
``FaultSpec``/plan-dict site references, instrument metric definitions /
emits / reads, kernel- and ordering-registry definitions and lookups,
and the inline-suppression map.  Facts are JSON-serializable, so the
incremental cache (:mod:`repro.staticcheck.cache`) can persist them and
a warm run can feed phase 2 without re-parsing unchanged files.

Everything here must stay *context-free*: a fact may only depend on the
file's own bytes (plus its derived module name), never on which other
files are in the run — that is what makes per-file caching sound.
Resolution against the rest of the project (e.g. ``from repro.curves
import kernels`` → submodule vs package ``__init__``) happens in
phase 2, over the merged fact base.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Bump whenever the fact schema (or any collector's semantics) changes;
#: the cache treats entries from another version as misses.
FACTS_VERSION = 1

#: Attribute names that *emit* a metric when called with the name as the
#: first argument: the recorder interface itself plus the thin
#: ``_record*``-style wrappers front ends keep around their lock.
EMIT_CALL_ATTRS = frozenset({"incr", "record", "event", "span"})

#: String literals longer than this cannot be metric names / registry
#: keys and are not worth caching.
_MAX_LITERAL_LEN = 80

#: The dotted module whose module-level string constants form the
#: instrument-metric catalogue.
METRIC_NAMES_MODULE = "repro.instrument.names"


@dataclass(frozen=True)
class RawImport:
    """One import statement, unresolved (no project context applied)."""

    kind: str                 # "import" | "from"
    module: str               # target for "import"; prefix for "from"
    names: Tuple[str, ...]    # imported names ("from" only)
    level: int                # relative-import level ("from" only)
    line: int
    lazy: bool                # inside a function/lambda body
    type_only: bool           # inside an `if TYPE_CHECKING:` block

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "module": self.module,
            "names": list(self.names), "level": self.level,
            "line": self.line, "lazy": self.lazy,
            "type_only": self.type_only,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RawImport":
        return cls(kind=data["kind"], module=data["module"],
                   names=tuple(data["names"]), level=data["level"],
                   line=data["line"], lazy=data["lazy"],
                   type_only=data["type_only"])


@dataclass(frozen=True)
class StmtCall:
    """A statement-expression call (``foo()`` / ``obj.meth()`` on its
    own line) — the shape an unawaited coroutine takes."""

    name: str                 # bare callee name (attr or function name)
    dotted: Optional[str]     # full dotted chain when derivable
    line: int
    in_async: bool            # lexically inside an `async def`

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "dotted": self.dotted,
                "line": self.line, "in_async": self.in_async}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StmtCall":
        return cls(name=data["name"], dotted=data["dotted"],
                   line=data["line"], in_async=data["in_async"])


@dataclass
class FileFacts:
    """The phase-2 interface to one analyzed file."""

    path: str
    module: Optional[str] = None
    package: Optional[str] = None
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)
    imports: List[RawImport] = field(default_factory=list)
    #: Bare names of every ``async def`` in the file (methods included).
    async_defs: Tuple[str, ...] = ()
    #: Statement-expression calls, for the unawaited-coroutine pass.
    stmt_calls: List[StmtCall] = field(default_factory=list)
    #: ``fault_point("<site>", ...)`` literal site definitions.
    fault_sites: List[Tuple[str, int]] = field(default_factory=list)
    #: ``fault_point(<non-literal>)`` call count (degrades REG-UNKNOWN-SITE
    #: to silence — a dynamic site could match anything).
    dynamic_fault_sites: int = 0
    #: ``FaultSpec(site=...)`` / ``{"site": "..."}`` literal references
    #: (may be globs).
    fault_refs: List[Tuple[str, int]] = field(default_factory=list)
    #: ``CONST = "value"`` module-level string assignments when this file
    #: is the metric-names module.
    metric_defs: List[Tuple[str, str, int]] = field(default_factory=list)
    #: ``metric.CONST`` / ``names.CONST`` attribute references:
    #: (const, line, is_emit_context).
    metric_refs: List[Tuple[str, int, bool]] = field(default_factory=list)
    #: String literals passed as the first argument of an emit call.
    metric_literal_emits: List[Tuple[str, int]] = field(
        default_factory=list)
    #: Names imported via ``from repro.instrument.names import X`` —
    #: counted as reads (their use context is unknown).
    metric_imports: Tuple[str, ...] = ()
    #: Registry definitions: (kind, name, line); kind in
    #: {"kernel", "ordering"}.
    registry_defs: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Registry lookups with a literal key: (kind, name, line).
    registry_refs: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Every short string literal in the file (sorted, deduplicated) —
    #: membership probes for "is this metric name asserted anywhere".
    string_literals: Tuple[str, ...] = ()

    def suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self.suppressions:
            return False
        ids = self.suppressions[line]
        return ids is None or rule_id in ids

    # -- (de)serialization for the incremental cache --------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "package": self.package,
            "suppressions": {
                str(line): (None if ids is None else sorted(ids))
                for line, ids in self.suppressions.items()},
            "imports": [imp.to_dict() for imp in self.imports],
            "async_defs": list(self.async_defs),
            "stmt_calls": [call.to_dict() for call in self.stmt_calls],
            "fault_sites": [list(item) for item in self.fault_sites],
            "dynamic_fault_sites": self.dynamic_fault_sites,
            "fault_refs": [list(item) for item in self.fault_refs],
            "metric_defs": [list(item) for item in self.metric_defs],
            "metric_refs": [list(item) for item in self.metric_refs],
            "metric_literal_emits": [list(item) for item
                                     in self.metric_literal_emits],
            "metric_imports": list(self.metric_imports),
            "registry_defs": [list(item) for item in self.registry_defs],
            "registry_refs": [list(item) for item in self.registry_refs],
            "string_literals": list(self.string_literals),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileFacts":
        return cls(
            path=data["path"],
            module=data["module"],
            package=data["package"],
            suppressions={
                int(line): (None if ids is None else frozenset(ids))
                for line, ids in data["suppressions"].items()},
            imports=[RawImport.from_dict(d) for d in data["imports"]],
            async_defs=tuple(data["async_defs"]),
            stmt_calls=[StmtCall.from_dict(d) for d in data["stmt_calls"]],
            fault_sites=[(s, line) for s, line in data["fault_sites"]],
            dynamic_fault_sites=data["dynamic_fault_sites"],
            fault_refs=[(s, line) for s, line in data["fault_refs"]],
            metric_defs=[(n, v, line) for n, v, line
                         in data["metric_defs"]],
            metric_refs=[(n, line, bool(e)) for n, line, e
                         in data["metric_refs"]],
            metric_literal_emits=[(v, line) for v, line
                                  in data["metric_literal_emits"]],
            metric_imports=tuple(data["metric_imports"]),
            registry_defs=[(k, n, line) for k, n, line
                           in data["registry_defs"]],
            registry_refs=[(k, n, line) for k, n, line
                           in data["registry_refs"]],
            string_literals=tuple(data["string_literals"]),
        )


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _str_arg(call: ast.Call, position: int = 0,
             keyword: Optional[str] = None) -> Optional[Tuple[str, int]]:
    """Literal string at ``position`` (or ``keyword=``), else None."""
    node: Optional[ast.expr] = None
    if len(call.args) > position:
        node = call.args[position]
    elif keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword:
                node = kw.value
                break
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node.lineno
    return None


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def collect_raw_imports(tree: ast.Module) -> List[RawImport]:
    """Every import statement, tagged lazy/type-only, unresolved."""
    out: List[RawImport] = []
    stack: List[Tuple[ast.AST, bool, bool]] = [(tree, False, False)]
    while stack:
        node, lazy, type_only = stack.pop()
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append(RawImport(
                    kind="import", module=alias.name, names=(),
                    level=0, line=node.lineno, lazy=lazy,
                    type_only=type_only))
        elif isinstance(node, ast.ImportFrom):
            out.append(RawImport(
                kind="from", module=node.module or "",
                names=tuple(alias.name for alias in node.names),
                level=node.level, line=node.lineno, lazy=lazy,
                type_only=type_only))
        for child in ast.iter_child_nodes(node):
            child_lazy = lazy or isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            child_type_only = type_only or (
                isinstance(node, ast.If)
                and _is_type_checking_test(node.test)
                and child in node.body)
            stack.append((child, child_lazy, child_type_only))
    out.sort(key=lambda imp: (imp.line, imp.module))
    return out


def _collect_async(tree: ast.Module
                   ) -> Tuple[Tuple[str, ...], List[StmtCall]]:
    async_defs = sorted({node.name for node in ast.walk(tree)
                         if isinstance(node, ast.AsyncFunctionDef)})
    calls: List[StmtCall] = []
    stack: List[Tuple[ast.AST, bool]] = [(tree, False)]
    while stack:
        node, in_async = stack.pop()
        if (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            name = _callee_name(node.value.func)
            if name is not None:
                calls.append(StmtCall(
                    name=name, dotted=_dotted(node.value.func),
                    line=node.value.lineno, in_async=in_async))
        for child in ast.iter_child_nodes(node):
            child_async = in_async
            if isinstance(node, ast.AsyncFunctionDef):
                child_async = True
            elif isinstance(node, (ast.FunctionDef, ast.Lambda)):
                child_async = False
            stack.append((child, child_async))
    calls.sort(key=lambda call: call.line)
    return tuple(async_defs), calls


def _collect_faults(tree: ast.Module) -> Tuple[List[Tuple[str, int]], int,
                                               List[Tuple[str, int]]]:
    sites: List[Tuple[str, int]] = []
    dynamic = 0
    refs: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _callee_name(node.func)
            if name == "fault_point":
                lit = _str_arg(node, 0, keyword="site")
                if lit is not None:
                    sites.append(lit)
                else:
                    dynamic += 1
            elif name == "FaultSpec":
                lit = _str_arg(node, 0, keyword="site")
                if lit is not None:
                    refs.append(lit)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant) and key.value == "site"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    refs.append((value.value, value.lineno))
    return sorted(sites), dynamic, sorted(refs)


def _collect_metrics(tree: ast.Module, module: Optional[str]) -> Tuple[
        List[Tuple[str, str, int]], List[Tuple[str, int, bool]],
        List[Tuple[str, int]], Tuple[str, ...]]:
    defs: List[Tuple[str, str, int]] = []
    if module == METRIC_NAMES_MODULE:
        for node in tree.body:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and not node.targets[0].id.startswith("_")
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                defs.append((node.targets[0].id, node.value.value,
                             node.lineno))

    # Attribute refs `metric.CONST` / `names.CONST`, flagged by whether
    # they sit in the first-argument slot of an emit call.
    emit_positions = set()
    literal_emits: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        attr = _callee_name(node.func)
        if attr is None:
            continue
        is_emit = (attr in EMIT_CALL_ATTRS
                   or attr.startswith("_record")
                   or attr == "record_event")
        if not is_emit or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Attribute):
            emit_positions.add(id(first))
        elif (isinstance(first, ast.Constant)
              and isinstance(first.value, str)):
            literal_emits.append((first.value, first.lineno))

    refs: List[Tuple[str, int, bool]] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("metric", "names")):
            refs.append((node.attr, node.lineno,
                         id(node) in emit_positions))

    imports: List[str] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom)
                and node.module == METRIC_NAMES_MODULE):
            imports.extend(alias.name for alias in node.names)

    refs.sort(key=lambda item: (item[1], item[0]))
    literal_emits.sort(key=lambda item: (item[1], item[0]))
    return defs, refs, literal_emits, tuple(sorted(set(imports)))


def _kernel_class_name(node: ast.ClassDef) -> Optional[Tuple[str, int]]:
    """``name = "<literal>"`` from a kernel class body, if present."""
    for stmt in node.body:
        if (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)):
            return stmt.value.value, stmt.lineno
    return None


#: Lookup callables → registry kind.
_REGISTRY_LOOKUPS = {
    "get_kernel": "kernel",
    "resolve_backend": "kernel",
    "get_ordering": "ordering",
}


def _collect_registry(tree: ast.Module) -> Tuple[
        List[Tuple[str, str, int]], List[Tuple[str, str, int]]]:
    defs: List[Tuple[str, str, int]] = []
    refs: List[Tuple[str, str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for deco in node.decorator_list:
                if _callee_name(deco) == "register_kernel" or (
                        isinstance(deco, ast.Call)
                        and _callee_name(deco.func) == "register_kernel"):
                    named = _kernel_class_name(node)
                    if named is not None:
                        defs.append(("kernel", named[0], named[1]))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                if (isinstance(deco, ast.Call)
                        and _callee_name(deco.func) == "register_ordering"):
                    lit = _str_arg(deco, 0, keyword="name")
                    if lit is not None:
                        defs.append(("ordering", lit[0], lit[1]))
        elif isinstance(node, ast.Call):
            name = _callee_name(node.func)
            kind = _REGISTRY_LOOKUPS.get(name or "")
            if kind is not None:
                lit = _str_arg(node, 0, keyword="name")
                if lit is not None:
                    refs.append((kind, lit[0], lit[1]))
    # `register_ordering("x")` may also decorate plain callables or be
    # called directly; count direct calls as definitions too.
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and _callee_name(node.func) == "register_ordering"):
            lit = _str_arg(node, 0, keyword="name")
            if lit is not None:
                entry = ("ordering", lit[0], lit[1])
                if entry not in defs:
                    defs.append(entry)
    return sorted(defs), sorted(refs)


def _collect_literals(tree: ast.Module) -> Tuple[str, ...]:
    out = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and 0 < len(node.value) <= _MAX_LITERAL_LEN):
            out.add(node.value)
    return tuple(sorted(out))


def collect_facts(tree: ast.Module, path: str, module: Optional[str],
                  package: Optional[str],
                  suppressions: Dict[int, Optional[FrozenSet[str]]],
                  ) -> FileFacts:
    """Distill one parsed file into its :class:`FileFacts`."""
    async_defs, stmt_calls = _collect_async(tree)
    fault_sites, dynamic_sites, fault_refs = _collect_faults(tree)
    metric_defs, metric_refs, literal_emits, metric_imports = \
        _collect_metrics(tree, module)
    registry_defs, registry_refs = _collect_registry(tree)
    return FileFacts(
        path=path,
        module=module,
        package=package,
        suppressions=dict(suppressions),
        imports=collect_raw_imports(tree),
        async_defs=async_defs,
        stmt_calls=stmt_calls,
        fault_sites=fault_sites,
        dynamic_fault_sites=dynamic_sites,
        fault_refs=fault_refs,
        metric_defs=metric_defs,
        metric_refs=metric_refs,
        metric_literal_emits=literal_emits,
        metric_imports=metric_imports,
        registry_defs=registry_defs,
        registry_refs=registry_refs,
        string_literals=_collect_literals(tree),
    )


# ----------------------------------------------------------------------
# The merged fact base handed to phase-2 rules
# ----------------------------------------------------------------------


class ProjectFacts:
    """Every file's facts, merged, with the derived views phase-2 passes
    share (known module names, resolved import edges)."""

    def __init__(self, files: Sequence[FileFacts]) -> None:
        self.files: List[FileFacts] = sorted(files, key=lambda f: f.path)
        self.by_path: Dict[str, FileFacts] = {f.path: f for f in self.files}
        self._edges: Optional[list] = None

    @property
    def known_modules(self) -> FrozenSet[str]:
        return frozenset(f.module for f in self.files
                         if f.module is not None)

    def edges(self):
        """Resolved :class:`repro.staticcheck.imports.ImportEdge` list
        (cached per instance)."""
        if self._edges is None:
            from repro.staticcheck.imports import resolve_project_edges
            self._edges = resolve_project_edges(self)
        return self._edges

    def async_def_names(self) -> FrozenSet[str]:
        names: set = set()
        for facts in self.files:
            names.update(facts.async_defs)
        return frozenset(names)

    def iter_scoped(self, packages: Optional[FrozenSet[str]]
                    ) -> Iterable[FileFacts]:
        for facts in self.files:
            if packages is None or (facts.package is not None
                                    and facts.package in packages):
                yield facts
