"""Incremental analysis cache keyed on file content hashes.

One JSON document (default ``.staticcheck-cache.json`` next to the
loaded ``pyproject.toml``; gitignored) maps absolute file paths to the
sha256 of their bytes, their phase-1 :class:`~repro.staticcheck.facts.
FileFacts`, and the pre-suppression findings of every per-module rule.
A warm run replays hits without re-parsing; only changed files pay for
``ast.parse`` and the rule walks.

Correctness guards — any mismatch degrades to a miss (or a full
invalidation), never to a wrong answer:

* the cache schema version and :data:`~repro.staticcheck.facts.
  FACTS_VERSION` are stored and must match,
* the per-module rule id list at save time is stored; if the registered
  set changed (a rule added, removed, or renamed), every entry is
  stale — the stored findings were computed under different rules,
* each entry stores the display path it was analyzed under; a lookup
  from a different spelling of the same file misses,
* a corrupt or unreadable cache file is silently ignored.

Writes are atomic (temp file + ``os.replace``) and merge into the
previous content, so alternating ``src``-only and ``src``+``tests``
runs do not evict each other's entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional, Sequence

from repro.staticcheck.engine import FileAnalysis, file_digest, \
    module_rule_ids
from repro.staticcheck.facts import FACTS_VERSION

#: Bump on any change to the cache document layout.
CACHE_VERSION = 1

#: Default cache filename, resolved against the config root by the CLI.
CACHE_BASENAME = ".staticcheck-cache.json"


class Cache:
    """In-memory view of the on-disk cache for one run."""

    def __init__(self, path: str,
                 entries: Optional[Dict[str, dict]] = None) -> None:
        self.path = path
        self._entries: Dict[str, dict] = entries or {}
        self._fresh: Dict[str, dict] = {}

    # -- loading --------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Cache":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return cls(path)
        if not isinstance(document, dict):
            return cls(path)
        if (document.get("version") != CACHE_VERSION
                or document.get("facts_version") != FACTS_VERSION
                or document.get("module_rules") != module_rule_ids()):
            # Schema or rule-set drift: stored findings are untrusted.
            return cls(path)
        entries = document.get("files")
        if not isinstance(entries, dict):
            return cls(path)
        return cls(path, entries)

    # -- lookups --------------------------------------------------------

    def lookup(self, path: str) -> Optional[FileAnalysis]:
        """Replay a stored analysis when ``path``'s bytes still match."""
        key = os.path.abspath(path)
        entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            with open(path, "rb") as handle:
                digest = file_digest(handle.read())
        except OSError:
            return None
        if entry.get("sha256") != digest or entry.get("display") != path:
            return None
        try:
            return FileAnalysis.from_cache_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None

    # -- updates --------------------------------------------------------

    def update(self, analyses: Sequence[FileAnalysis]) -> None:
        for analysis in analyses:
            if not analysis.sha256:
                continue  # unreadable file: nothing worth caching
            key = os.path.abspath(analysis.path)
            self._fresh[key] = analysis.to_cache_dict()

    def save(self) -> None:
        if not self._fresh:
            return
        merged = dict(self._entries)
        merged.update(self._fresh)
        document = {
            "version": CACHE_VERSION,
            "facts_version": FACTS_VERSION,
            "module_rules": module_rule_ids(),
            "files": merged,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        try:
            fd, tmp = tempfile.mkstemp(prefix=".staticcheck-cache.",
                                       suffix=".tmp", dir=directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only checkout must not fail the check run.
            pass
