"""Import-graph builder for the layering and cycle rules.

Builds a *module-level* directed graph of ``repro.*`` imports.  Each
edge records where it came from and whether it is

* **lazy** — the import statement sits inside a function body, so it
  executes at call time, not at module import time; lazy edges are the
  sanctioned escape hatch for top-layer glue (the CLI's deferred
  subcommand imports) and are excluded from both layer and cycle
  enforcement, and
* **type-only** — inside an ``if TYPE_CHECKING:`` block, erased at
  runtime, likewise excluded.

Since the two-phase engine landed, collection and resolution are
split: phase 1 records unresolved :class:`~repro.staticcheck.facts.
RawImport` statements per file (cacheable, context-free), and this
module resolves them against the run's *known module set* in phase 2 —
``from repro.curves import kernels`` depends on the submodule
``repro.curves.kernels`` when one exists in the run, else on the
package ``__init__`` that re-exports the name.  The AST-level
``module_edges``/``project_edges`` entry points remain for direct use.

The layer map mirrors the package DAG documented in DESIGN.md §1; a
package may import its own layer or below, never above.  New top-level
packages default to the tool layer (high) so the analyzer fails open
for *their* imports while still protecting the engine packages from
importing them upward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Sequence,
    Set,
)

from repro.staticcheck.facts import (
    ProjectFacts,
    RawImport,
    collect_raw_imports,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.engine import ModuleInfo

#: Layer ranks of the top-level components of ``repro``.  An import
#: from rank r to rank r' is legal iff r' <= r.  Kept in one place so
#: the DESIGN.md layering table and the enforcement cannot drift apart.
PACKAGE_LAYERS: Dict[str, int] = {
    # foundation: pure data/math, no repro imports above their layer
    "units": 0, "geometry": 0, "instrument": 0,
    # physical/problem model; resilience sits here too — its taxonomy/
    # budget/fault primitives are imported by the model and the engine
    # (the degradation ladder reaches upward only through lazy imports)
    "net": 1, "tech": 1, "resilience": 1,
    # solution-space primitives
    "curves": 2, "orders": 2,
    # tree IR and evaluation
    "routing": 3,
    # the MERLIN engine
    "core": 4,
    # engine consumers: baselines, outer-loop parallel drivers, metrics
    "baselines": 5, "parallel": 5, "analysis": 5,
    # circuit substrate (drives per-net flows over a netlist)
    "netlist": 6,
    # experiment harnesses, the long-running service, and the
    # full-netlist timing-closure pipeline that drives the service;
    # the serving tier (async sharded front end) and the typed API
    # client sit beside the service they front
    "experiments": 7, "service": 7, "pipeline": 7, "serve": 7,
    "client": 7,
    # developer tooling (imports nothing from repro at runtime)
    "staticcheck": 8,
    # public facade, benchmark driver, and the serving load harness
    # (drives servers through the client, reuses bench calibration)
    "api": 8, "bench": 8, "loadgen": 8,
    # entry points; the root package __init__ re-exports the facade
    "cli": 9, "__main__": 9, "repro": 9,
}

#: Rank given to top-level packages missing from the map: treat them as
#: tooling-layer so established low layers cannot silently import them.
DEFAULT_LAYER = 8


@dataclass(frozen=True)
class ImportEdge:
    """One ``repro.*`` import statement, resolved to a target module."""

    source: str        # dotted module doing the importing
    target: str        # dotted module (or package __init__) imported
    path: str          # file of the source module
    line: int
    lazy: bool         # inside a function body (deferred import)
    type_only: bool    # inside an `if TYPE_CHECKING:` block

    @property
    def runtime(self) -> bool:
        """True when the edge executes at module import time."""
        return not self.lazy and not self.type_only


def package_of(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def layer_of(module: str) -> int:
    return PACKAGE_LAYERS.get(package_of(module), DEFAULT_LAYER)


def _from_targets(raw: RawImport, source_module: str,
                  known: Set[str]) -> List[str]:
    """Targets of a ``from X import a, b`` statement.

    Relative imports resolve against the source module's location; one
    level strips the module's own name, further levels strip enclosing
    packages.
    """
    if raw.level:
        parts = source_module.split(".")
        base_parts = parts[:-raw.level] if raw.level < len(parts) else []
        base = ".".join(base_parts)
        prefix = f"{base}.{raw.module}" if raw.module else base
    else:
        prefix = raw.module
    if not prefix or not (prefix == "repro" or prefix.startswith("repro.")):
        return []
    targets: List[str] = []
    for name in raw.names:
        candidate = f"{prefix}.{name}"
        targets.append(candidate if candidate in known else prefix)
    return targets


def edges_from_raw(raw_imports: Iterable[RawImport], source_module: str,
                   path: str, known: Set[str]) -> List[ImportEdge]:
    """Resolve one file's raw imports against the known module set."""
    edges: List[ImportEdge] = []
    for raw in raw_imports:
        if raw.kind == "import":
            name = raw.module
            if name == "repro" or name.startswith("repro."):
                edges.append(ImportEdge(
                    source=source_module, target=name, path=path,
                    line=raw.line, lazy=raw.lazy,
                    type_only=raw.type_only))
        else:
            for target in _from_targets(raw, source_module, known):
                edges.append(ImportEdge(
                    source=source_module, target=target, path=path,
                    line=raw.line, lazy=raw.lazy,
                    type_only=raw.type_only))
    edges.sort(key=lambda e: (e.line, e.target))
    return edges


def module_edges(module: "ModuleInfo",
                 known: Set[str]) -> List[ImportEdge]:
    """Every resolved ``repro.*`` import edge leaving ``module``."""
    if module.module is None:
        return []
    return edges_from_raw(collect_raw_imports(module.tree),
                          module.module, module.path, known)


def project_edges(modules: Sequence["ModuleInfo"]) -> List[ImportEdge]:
    known = {m.module for m in modules if m.module is not None}
    edges: List[ImportEdge] = []
    for module in sorted(modules, key=lambda m: m.path):
        edges.extend(module_edges(module, known))
    return edges


def resolve_project_edges(project: ProjectFacts) -> List[ImportEdge]:
    """Phase-2 resolution: every edge in the merged fact base."""
    known = set(project.known_modules)
    edges: List[ImportEdge] = []
    for facts in project.files:
        if facts.module is None:
            continue
        edges.extend(edges_from_raw(facts.imports, facts.module,
                                    facts.path, known))
    return edges


def build_graph(edges: Iterable[ImportEdge],
                runtime_only: bool = True) -> Dict[str, Set[str]]:
    """Adjacency map ``source module -> set(target modules)``."""
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        if runtime_only and not edge.runtime:
            continue
        graph.setdefault(edge.source, set()).add(edge.target)
        graph.setdefault(edge.target, set())
    return graph


def find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with more than one node (plus
    self-loops), each rotated to start at its smallest module name so
    reports are deterministic."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(root: str) -> None:
        # Iterative Tarjan: (node, iterator state) to survive deep graphs.
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbors = work[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in index:
                    index[neighbor] = lowlink[neighbor] = counter[0]
                    counter[0] += 1
                    stack.append(neighbor)
                    on_stack.add(neighbor)
                    work.append((neighbor, iter(sorted(graph.get(neighbor,
                                                                 ())))))
                    advanced = True
                    break
                if neighbor in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    smallest = min(component)
                    pivot = component.index(smallest)
                    cycles.append(component[pivot:] + component[:pivot])

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    cycles.sort()
    return cycles
