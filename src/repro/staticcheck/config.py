"""``[tool.staticcheck]`` configuration from ``pyproject.toml``.

Keys (all optional):

* ``enable``  — list of rule ids; when non-empty, *only* these run.
* ``disable`` — list of rule ids removed from the run.
* ``exclude`` — glob patterns (relative to the pyproject directory)
  skipped during directory expansion; explicitly named files are still
  checked (that is how the test suite points the CLI at quarantined
  fixtures).

Python 3.11+ parses with :mod:`tomllib`; on 3.9/3.10 (no tomllib, and
this project adds no dependencies) a minimal fallback parser handles
exactly the flat string-list shape this block uses.
"""

from __future__ import annotations

import ast as _pyast
import os
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    _toml = None


@dataclass(frozen=True)
class CheckConfig:
    """Resolved analyzer configuration."""

    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    #: Directory containing the pyproject.toml the config came from;
    #: exclude globs are matched relative to it.  None for an ad-hoc
    #: (test-constructed) config.
    root: Optional[str] = None


_SECTION_RE = re.compile(r"^\s*\[tool\.staticcheck\]\s*$")
_TABLE_RE = re.compile(r"^\s*\[")
_KEY_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_\-]*)\s*=\s*(.+?)\s*$")


def _parse_fallback(text: str) -> dict:
    """Parse the ``[tool.staticcheck]`` block without tomllib.

    Handles single-line keys whose values are TOML string arrays,
    strings, booleans, or integers — the only shapes this block uses.
    Multi-line arrays are folded first.
    """
    lines = text.splitlines()
    inside = False
    entries: dict = {}
    buffer = ""
    for line in lines:
        stripped = _strip_comment(line)
        if _SECTION_RE.match(line):
            inside = True
            continue
        if inside and _TABLE_RE.match(line) and not _SECTION_RE.match(line):
            break
        if not inside:
            continue
        buffer = (buffer + " " + stripped).strip() if buffer else stripped
        if buffer.count("[") > buffer.count("]"):
            continue  # unterminated multi-line array — keep folding
        match = _KEY_RE.match(buffer)
        buffer = ""
        if not match:
            continue
        key, raw = match.group(1), match.group(2)
        raw = raw.replace("true", "True").replace("false", "False")
        try:
            entries[key] = _pyast.literal_eval(raw)
        except (ValueError, SyntaxError):
            continue
    return entries


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, respecting double-quoted strings."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _load_block(pyproject_path: str) -> dict:
    with open(pyproject_path, "rb") as handle:
        data = handle.read()
    if _toml is not None:
        try:
            document = _toml.loads(data.decode("utf-8"))
        except _toml.TOMLDecodeError:
            return {}
        return document.get("tool", {}).get("staticcheck", {})
    return _parse_fallback(data.decode("utf-8"))  # pragma: no cover


def _as_tuple(value) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    return ()


def find_pyproject(start: str) -> Optional[str]:
    """Walk upward from ``start`` to the first pyproject.toml."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_config(start: Optional[str] = None) -> CheckConfig:
    """Discover and load the config for a check rooted at ``start``.

    ``start`` defaults to the current directory; discovery walks up to
    the nearest ``pyproject.toml``.  A missing file or block yields the
    all-defaults config (every rule on, nothing excluded).
    """
    pyproject = find_pyproject(start or os.getcwd())
    if pyproject is None:
        return CheckConfig()
    block = _load_block(pyproject)
    return CheckConfig(
        enable=_as_tuple(block.get("enable")),
        disable=_as_tuple(block.get("disable")),
        exclude=_as_tuple(block.get("exclude")),
        root=os.path.dirname(os.path.abspath(pyproject)),
    )
