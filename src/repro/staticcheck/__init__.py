"""Domain-aware static analysis for the MERLIN reproduction.

MERLIN's correctness contract is invariant-driven: non-inferior solution
curves (Definition 6, Lemmas 9/10), bit-identical results across curve
backends and worker counts, and a strict µm/fF/kΩ/ps unit discipline.
``repro.staticcheck`` enforces — *statically*, before code reaches the
warm process pool — the coding patterns those invariants depend on:

* **determinism** — no unseeded module-level ``random`` calls, no
  wall-clock reads in the engine packages, no iteration over bare sets
  feeding order-sensitive construction, no ``id()``/``hash()``-derived
  ordering or keying (the PR-1 hash-randomization bug, as a rule);
* **pool safety** — callables shipped to worker processes must be
  module-level (picklable), and live recorder objects must never be
  captured into worker payloads;
* **numerics** — no exact ``==``/``!=`` between float expressions in
  the curve/engine packages; use the quantized comparators in
  :mod:`repro.units`;
* **layering** — ``core``/``curves``/``geometry``/``tech`` must never
  import ``service``/``cli``/``api``/``bench``, and the module-level
  import graph across ``repro.*`` must stay acyclic;
* **async safety** — no blocking calls inside the serving tier's
  coroutines, no discarded coroutine objects, no unlocked state shared
  between the event loop and shard worker threads;
* **registry contracts** — fault-site, instrument-metric, and
  kernel/ordering string keys must match a real registration on the
  other side of the string.

The engine is stdlib-``ast`` only (no new dependencies) and analyzes
in two phases: per-file facts collected in parallel behind a
content-hash incremental cache (``.staticcheck-cache.json``), then
whole-program passes over the merged fact base.  It runs as
``merlin-repro check [--format json] [--rules ...] [paths]``.  Inline
suppressions use ``# staticcheck: ignore[RULE-ID]`` comments; project
defaults live in the ``[tool.staticcheck]`` block of ``pyproject.toml``;
a committed ``staticcheck-baseline.json`` ratchets tolerated findings.
"""

from __future__ import annotations

from repro.staticcheck.config import CheckConfig, load_config
from repro.staticcheck.engine import (
    CheckResult,
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
    all_rules,
    collect_modules,
    parse_module,
    register,
    render_json,
    render_text,
    run_check,
)
from repro.staticcheck.facts import FileFacts, ProjectFacts

# Importing the rules package registers every shipped rule.
import repro.staticcheck.rules  # noqa: F401  (import for side effect)

__all__ = [
    "CheckConfig",
    "CheckResult",
    "FileFacts",
    "Finding",
    "ModuleInfo",
    "ProjectFacts",
    "ProjectRule",
    "Rule",
    "all_rules",
    "collect_modules",
    "load_config",
    "main",
    "parse_module",
    "register",
    "render_json",
    "render_text",
    "run_check",
]


def main(argv=None) -> int:
    """Console entry point (also reachable as ``merlin-repro check``)."""
    from repro.staticcheck.cli import run_cli

    return run_cli(argv)
