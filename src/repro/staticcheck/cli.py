"""The ``merlin-repro check`` subcommand implementation.

Kept out of :mod:`repro.cli` so the analyzer stays importable and
testable on its own (and so the top-level CLI keeps its lazy-import
discipline).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.staticcheck.config import CheckConfig, load_config
from repro.staticcheck.engine import (
    all_rules,
    get_rule,
    render_json,
    render_text,
    run_check,
)

# The rules register on package import; pulling the package in here
# keeps `python -m repro.staticcheck.cli`-style direct use working.
import repro.staticcheck.rules  # noqa: F401


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` arguments (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: src/repro)")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all enabled "
             "by [tool.staticcheck] in pyproject.toml)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.staticcheck] (run every rule, no excludes)")


def _select_rules(args, config: CheckConfig):
    if args.rules:
        wanted = [rid.strip() for rid in args.rules.split(",")
                  if rid.strip()]
        try:
            return [get_rule(rid) for rid in wanted], None
        except KeyError as exc:
            known = ", ".join(sorted(r.id for r in all_rules()))
            return None, (f"unknown rule id {exc.args[0]!r} "
                          f"(known: {known})")
    rules = all_rules()
    if config.enable:
        rules = [r for r in rules if r.id in config.enable]
    if config.disable:
        rules = [r for r in rules if r.id not in config.disable]
    return rules, None


def run_from_args(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:15s} {rule.title}")
        return 0
    paths: List[str] = list(args.paths) or ["src/repro"]
    config = CheckConfig() if args.no_config else load_config(paths[0])
    rules, error = _select_rules(args, config)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    import os

    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    result = run_check(paths, rules=rules, exclude=config.exclude,
                       config_root=config.root)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def run_cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="merlin-repro check",
        description="MERLIN-reproduction domain static analyzer")
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run_cli())
