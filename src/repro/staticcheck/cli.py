"""The ``merlin-repro check`` subcommand implementation.

Kept out of :mod:`repro.cli` so the analyzer stays importable and
testable on its own (and so the top-level CLI keeps its lazy-import
discipline).

The CLI is where the incremental cache and the ratchet baseline turn
on: ``run_check`` defaults both off at the library level, while
``merlin-repro check`` caches to ``.staticcheck-cache.json`` next to
the loaded ``pyproject.toml`` and honors a committed
``staticcheck-baseline.json`` when one exists.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.staticcheck.config import CheckConfig, load_config
from repro.staticcheck.engine import (
    all_rules,
    get_rule,
    render_json,
    render_text,
    run_check,
)

# The rules register on package import; pulling the package in here
# keeps `python -m repro.staticcheck.cli`-style direct use working.
import repro.staticcheck.rules  # noqa: F401


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` arguments (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: src/repro)")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the rendered report to FILE")
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all enabled "
             "by [tool.staticcheck] in pyproject.toml)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (sorted by id) and exit")
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.staticcheck] (run every rule, no excludes)")
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="incremental cache file (default: .staticcheck-cache.json "
             "next to pyproject.toml)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental fact cache for this run")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="ratchet baseline to tolerate (default: "
             "staticcheck-baseline.json next to pyproject.toml, when "
             "present)")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0")


def _select_rules(args, config: CheckConfig):
    if args.rules:
        wanted = [rid.strip() for rid in args.rules.split(",")
                  if rid.strip()]
        try:
            return [get_rule(rid) for rid in wanted], None
        except KeyError as exc:
            known = ", ".join(sorted(r.id for r in all_rules()))
            return None, (f"unknown rule id {exc.args[0]!r} "
                          f"(known: {known})")
    rules = all_rules()
    if config.enable:
        rules = [r for r in rules if r.id in config.enable]
    if config.disable:
        rules = [r for r in rules if r.id not in config.disable]
    return rules, None


def _cache_path(args, config: CheckConfig) -> Optional[str]:
    if args.no_cache:
        return None
    if args.cache:
        return args.cache
    if config.root:
        from repro.staticcheck.cache import CACHE_BASENAME
        return os.path.join(config.root, CACHE_BASENAME)
    return None


def _baseline_path(args, config: CheckConfig,
                   for_update: bool = False) -> Optional[str]:
    if args.baseline:
        return args.baseline
    if config.root:
        from repro.staticcheck.baseline import BASELINE_BASENAME
        candidate = os.path.join(config.root, BASELINE_BASENAME)
        if for_update or os.path.exists(candidate):
            return candidate
    return None


def run_from_args(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:17s} {rule.title}")
        return 0
    paths: List[str] = list(args.paths) or ["src/repro"]
    # Usage errors are checked before any analysis or config work: a
    # typo'd path must not silently analyze nothing.
    for path in paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    config = CheckConfig() if args.no_config else load_config(paths[0])
    rules, error = _select_rules(args, config)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        from repro.staticcheck.baseline import write_baseline
        target = _baseline_path(args, config, for_update=True)
        if target is None:
            print("error: no baseline path (pass --baseline FILE or "
                  "run inside a pyproject tree)", file=sys.stderr)
            return 2
        result = run_check(paths, rules=rules, exclude=config.exclude,
                           config_root=config.root,
                           cache_path=_cache_path(args, config))
        count = write_baseline(target, result.findings,
                               config_root=config.root)
        print(f"wrote {count} finding(s) to {target}")
        return 0

    result = run_check(paths, rules=rules, exclude=config.exclude,
                       config_root=config.root,
                       cache_path=_cache_path(args, config),
                       baseline_path=_baseline_path(args, config))
    report = (render_json(result) if args.format == "json"
              else render_text(result))
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
                handle.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
    print(report)
    return result.exit_code


def run_cli(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="merlin-repro check",
        description="MERLIN-reproduction domain static analyzer")
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run_cli())
