"""Pool-safety rules.

The outer-search drivers (:mod:`repro.parallel`) and the warm-pool
service engine ship work to ``ProcessPoolExecutor`` workers by
pickling.  Two classes of bug get through review repeatedly and only
explode at runtime — or worse, only under ``workers > 1``:

* ``POOL-CALLABLE`` — lambdas and nested (closure) functions are not
  picklable; every callable crossing the process boundary must be
  module-level.
* ``POOL-RECORDER`` — a live :class:`repro.instrument.Recorder` is a
  mutable object full of open spans; pickling one into a worker
  payload silently forks its state and the merged report double-counts
  (the drivers strip ``config.recorder`` for exactly this reason).
  Recorder-looking arguments to the pool entry points are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.staticcheck.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    register,
)

#: Entry points whose arguments end up pickled into worker processes.
#: ``submit`` matches any ``<pool>.submit(fn, ...)`` attribute call;
#: the rest are this repo's drivers (and their deprecated aliases).
_POOL_ENTRY_NAMES = frozenset({
    "run_multi_start", "run_batch", "optimize_many", "multi_start_merlin",
})


def _is_pool_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "submit" or func.attr in _POOL_ENTRY_NAMES
    if isinstance(func, ast.Name):
        return func.id in _POOL_ENTRY_NAMES
    return False


def _finding(module: ModuleInfo, node: ast.AST, rule_id: str,
             message: str) -> Finding:
    return Finding(path=module.path, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0),
                   rule_id=rule_id, message=message)


def _call_target(node: ast.Call) -> str:
    return dotted_name(node.func) or "<call>"


class _ScopeVisitor(ast.NodeVisitor):
    """Walks the module tracking which names are nested functions.

    ``self.nested`` holds, for the current position, every function
    name defined *inside an enclosing function* — passing such a name
    to a pool entry point ships a closure that cannot be pickled.
    """

    def __init__(self, on_call) -> None:
        self.on_call = on_call
        self.nested: Set[str] = set()
        self._depth = 0

    def _visit_function(self, node) -> None:
        if self._depth > 0:
            self.nested.add(node.name)
        self._depth += 1
        added: List[str] = []
        for statement in ast.walk(node):
            if (isinstance(statement,
                           (ast.FunctionDef, ast.AsyncFunctionDef))
                    and statement is not node):
                if statement.name not in self.nested:
                    self.nested.add(statement.name)
                    added.append(statement.name)
        self.generic_visit(node)
        self._depth -= 1
        for name in added:
            self.nested.discard(name)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        self.on_call(node, frozenset(self.nested), self._depth > 0)
        self.generic_visit(node)


@register
class WorkerCallableRule(Rule):
    id = "POOL-CALLABLE"
    title = "non-module-level callable shipped to a worker pool"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []

        def on_call(node: ast.Call, nested: frozenset,
                    in_function: bool) -> None:
            if not _is_pool_call(node):
                return
            target = _call_target(node)
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    findings.append(_finding(
                        module, argument, self.id,
                        f"lambda passed to {target}(): lambdas cannot be "
                        f"pickled into worker processes — use a "
                        f"module-level function"))
                elif (isinstance(argument, ast.Name)
                      and in_function and argument.id in nested):
                    findings.append(_finding(
                        module, argument, self.id,
                        f"nested function {argument.id!r} passed to "
                        f"{target}(): closures cannot be pickled into "
                        f"worker processes — hoist it to module level"))

        _ScopeVisitor(on_call).visit(module.tree)
        return findings


def _mentions_recorder(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.lower().endswith("recorder"):
            return True
        if (isinstance(sub, ast.Attribute)
                and sub.attr.lower().endswith("recorder")):
            return True
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "Recorder"):
            return True
    return False


@register
class WorkerRecorderRule(Rule):
    id = "POOL-RECORDER"
    title = "recorder object captured into a worker payload"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_pool_call(node)):
                continue
            target = _call_target(node)
            pieces = [(arg, None) for arg in node.args]
            pieces += [(kw.value, kw.arg) for kw in node.keywords]
            for value, keyword in pieces:
                if not _mentions_recorder(value):
                    continue
                where = (f"keyword {keyword!r}" if keyword
                         else "a positional argument")
                findings.append(_finding(
                    module, value, self.id,
                    f"recorder object in {where} of {target}(): live "
                    f"recorders must not cross the process boundary — "
                    f"workers run fresh recorders and reports are "
                    f"merged by task index"))
        return findings
