"""Registry-contract rules: string-keyed registries must stay closed.

The reproduction wires subsystems together through string keys — fault
sites (``fault_point("serve.shard")`` matched by ``MERLIN_FAULTS``
globs and ``FaultSpec``s), instrument metric names
(:mod:`repro.instrument.names`), and the kernel / ordering registries
(``@register_kernel`` / ``@register_ordering`` looked up by
``get_kernel`` / ``resolve_backend`` / ``get_ordering``).  A typo on
either side fails silently: the fault never fires, the metric is never
charted, the lookup raises at runtime.  These phase-2 passes
cross-check definition and use sites over the merged fact base.

Every pass gates on its definition side being *present in the run* —
a narrowed run (one file, one package) that cannot see the registry
stays silent rather than flagging everything as unknown.

``REG-UNKNOWN-SITE`` — a ``FaultSpec(site=...)`` or fault-plan
``{"site": ...}`` literal (globs allowed) that matches no
``fault_point(...)`` site defined anywhere in the run.

``REG-DEAD-METRIC`` — a catalogued metric constant that is emitted but
never read (by analysis/tests), read/asserted but never emitted, or
referenced by nothing at all.  Runs only when both the catalogue
module and at least one out-of-tree file (tests) are in the run, so
``src``-only invocations do not flag metrics whose readers live in the
test suite.

``REG-DANGLING-KEY`` — a literal kernel/ordering lookup key with no
matching registration in the run.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterable, List, Set, Tuple

from repro.staticcheck.engine import Finding, ProjectRule, register
from repro.staticcheck.facts import (
    METRIC_NAMES_MODULE,
    ProjectFacts,
)

_GLOB_CHARS = ("*", "?", "[")


@register
class UnknownFaultSiteRule(ProjectRule):
    id = "REG-UNKNOWN-SITE"
    title = "fault spec references a nonexistent fault site"

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        sites: Set[str] = set()
        dynamic = 0
        for facts in project.files:
            sites.update(site for site, _ in facts.fault_sites)
            dynamic += facts.dynamic_fault_sites
        if not sites or dynamic:
            # No definition side in this run, or dynamically named
            # sites make the known set open-ended: stay silent.
            return ()
        findings: List[Finding] = []
        for facts in project.files:
            for ref, line in facts.fault_refs:
                if any(ch in ref for ch in _GLOB_CHARS):
                    matched = any(fnmatch.fnmatch(site, ref)
                                  for site in sites)
                else:
                    matched = ref in sites
                if not matched:
                    findings.append(Finding(
                        path=facts.path, line=line, col=0,
                        rule_id=self.id,
                        message=(f"fault site {ref!r} matches no "
                                 f"fault_point(...) site in the "
                                 f"checked tree — the injection can "
                                 f"never fire (known sites: "
                                 f"{', '.join(sorted(sites))})")))
        findings.sort()
        return findings


@register
class DeadMetricRule(ProjectRule):
    id = "REG-DEAD-METRIC"
    title = "instrument metric emitted but never read, or vice versa"

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        catalogue: List[Tuple[str, str, int, str]] = []  # const, value, line, path
        names_in_run = False
        out_of_tree = False
        for facts in project.files:
            if facts.module == METRIC_NAMES_MODULE and facts.metric_defs:
                names_in_run = True
                for const, value, line in facts.metric_defs:
                    catalogue.append((const, value, line, facts.path))
            if facts.package is None:
                out_of_tree = True
        if not names_in_run or not out_of_tree:
            # Without the catalogue there is nothing to judge; without
            # the test suite in the run, "never read" is unknowable.
            return ()

        emitted: Set[str] = set()   # const names
        read: Set[str] = set()
        literal_uses: Dict[str, int] = {}
        for facts in project.files:
            if facts.module == METRIC_NAMES_MODULE:
                continue
            for const, _line, is_emit in facts.metric_refs:
                (emitted if is_emit else read).add(const)
            read.update(facts.metric_imports)
            for value, _line in facts.metric_literal_emits:
                literal_uses[value] = literal_uses.get(value, 0) + 1
            for value in facts.string_literals:
                literal_uses[value] = literal_uses.get(value, 0) + 1

        findings: List[Finding] = []
        for const, value, line, path in sorted(catalogue):
            is_emitted = const in emitted
            is_read = const in read or literal_uses.get(value, 0) > 0
            if is_emitted and is_read:
                continue
            if is_emitted:
                detail = ("is emitted but never read by analysis or "
                          "tests — chart it or drop the "
                          "instrumentation")
            elif is_read:
                detail = ("is read/asserted but never emitted — the "
                          "reader can only ever see an absent key")
            else:
                detail = ("is referenced by nothing — remove the dead "
                          "constant or wire it up")
            findings.append(Finding(
                path=path, line=line, col=0, rule_id=self.id,
                message=f"metric {const} ({value!r}) {detail}"))
        findings.sort()
        return findings


@register
class DanglingRegistryKeyRule(ProjectRule):
    id = "REG-DANGLING-KEY"
    title = "registry lookup with no matching registration"

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        defs: Dict[str, Set[str]] = {}
        for facts in project.files:
            for kind, name, _line in facts.registry_defs:
                defs.setdefault(kind, set()).add(name)
        findings: List[Finding] = []
        for facts in project.files:
            for kind, name, line in facts.registry_refs:
                known = defs.get(kind)
                if not known:
                    continue  # definition side absent from this run
                if name in known:
                    continue
                findings.append(Finding(
                    path=facts.path, line=line, col=0, rule_id=self.id,
                    message=(f"{kind} lookup {name!r} has no matching "
                             f"registration in the checked tree "
                             f"(registered: {', '.join(sorted(known))}) "
                             f"— the lookup raises at runtime")))
        findings.sort()
        return findings
