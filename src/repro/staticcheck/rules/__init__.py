"""Shipped rule set; importing this package registers every rule.

Rule catalogue (ids are stable API — suppressions and configs name
them):

========================  ==============================================
``DET-RANDOM``            unseeded module-level ``random.*`` calls
``DET-TIME``              wall-clock reads inside engine packages
``DET-SET-ORDER``         bare-set iteration feeding ordered construction
``DET-ID-HASH``           ``id()``/``hash()``-derived keys or ordering
``POOL-CALLABLE``         non-module-level callables shipped to workers
``POOL-RECORDER``         recorder objects captured into worker payloads
``NUM-FLOAT-EQ``          exact float ``==``/``!=`` in engine packages
``LAY-UPWARD``            lower layer importing a higher layer
``LAY-CYCLE``             module-level import cycle across ``repro.*``
``LAY-KERNEL``            engine layer importing curve-kernel internals
``RES-BARE-EXCEPT``       bare/``BaseException`` handler in service/
                          parallel/resilience
========================  ==============================================
"""

from __future__ import annotations

from repro.staticcheck.rules import (  # noqa: F401  (register on import)
    determinism,
    layering,
    numerics,
    pool_safety,
    resilience,
)

__all__ = ["determinism", "layering", "numerics", "pool_safety",
           "resilience"]
