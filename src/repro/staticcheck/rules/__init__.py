"""Shipped rule set; importing this package registers every rule.

Rule catalogue (ids are stable API — suppressions and configs name
them):

========================  ==============================================
``ASYNC-BLOCKING``        blocking call inside ``async def`` (serve/client)
``ASYNC-SHARED-MUT``      state mutated from both coroutine and thread
                          contexts with no lock
``ASYNC-UNAWAITED``       coroutine called as a statement, result discarded
``DET-RANDOM``            unseeded module-level ``random.*`` calls
``DET-TIME``              wall-clock reads inside engine packages
``DET-SET-ORDER``         bare-set iteration feeding ordered construction
``DET-ID-HASH``           ``id()``/``hash()``-derived keys or ordering
``POOL-CALLABLE``         non-module-level callables shipped to workers
``POOL-RECORDER``         recorder objects captured into worker payloads
``NUM-FLOAT-EQ``          exact float ``==``/``!=`` in engine packages
``LAY-UPWARD``            lower layer importing a higher layer
``LAY-CYCLE``             module-level import cycle across ``repro.*``
``LAY-KERNEL``            engine layer importing curve-kernel internals
``REG-UNKNOWN-SITE``      fault spec naming a nonexistent fault site
``REG-DEAD-METRIC``       metric emitted but never read, or vice versa
``REG-DANGLING-KEY``      kernel/ordering lookup with no registration
``RES-BARE-EXCEPT``       bare/``BaseException`` handler in service/
                          parallel/resilience
``SUP-UNUSED``            suppression comment that suppresses nothing
========================  ==============================================
"""

from __future__ import annotations

from repro.staticcheck.rules import (  # noqa: F401  (register on import)
    async_safety,
    determinism,
    layering,
    numerics,
    pool_safety,
    registry,
    resilience,
    suppressions,
)

__all__ = ["async_safety", "determinism", "layering", "numerics",
           "pool_safety", "registry", "resilience", "suppressions"]
