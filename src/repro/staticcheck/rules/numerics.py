"""Numeric-discipline rules.

All physical quantities are floats in the µm/fF/kΩ/ps system
(:mod:`repro.units`), and the curve DP quantizes loads/areas into
buckets precisely because exact float identity is meaningless after
arithmetic.  ``NUM-FLOAT-EQ`` bans exact ``==``/``!=`` between float
expressions in the engine packages; code should use the quantized
comparators ``repro.units.feq`` / ``repro.units.fzero`` (or bucket via
``CurveConfig``) instead.

Static float-type inference is out of scope for a stdlib-``ast``
checker, so the rule flags the syntactic shapes that cover every float
comparison this codebase has ever grown: a comparison where either
operand *is* a float literal, or is an arithmetic expression containing
a float literal or a true division.  Comparisons of opaque names
(``a == b``) are not flagged — object equality (points, orders,
configs) is legitimate and common.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.staticcheck.engine import Finding, ModuleInfo, Rule, register

#: Engine packages under the exact-equality ban (baselines included:
#: van Ginneken shares the curve arithmetic).
_NUMERIC_SCOPE = frozenset({"core", "curves", "routing", "baselines"})


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_floatish(node: ast.AST) -> bool:
    """Float literal, or arithmetic visibly producing a float."""
    if _is_float_literal(node):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields float
        return _is_floatish(node.left) or _is_floatish(node.right)
    return False


@register
class FloatEqualityRule(Rule):
    id = "NUM-FLOAT-EQ"
    title = "exact float ==/!= in an engine package"
    scope = _NUMERIC_SCOPE

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    findings.append(Finding(
                        path=module.path, line=node.lineno,
                        col=node.col_offset, rule_id=self.id,
                        message=(
                            f"exact float {symbol}: use the quantized "
                            f"comparators repro.units.feq/fzero (or "
                            f"CurveConfig bucketing) — floats that went "
                            f"through arithmetic are never exactly "
                            f"equal by design")))
        return findings
