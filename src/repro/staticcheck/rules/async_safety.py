"""Async-safety rules for the serving tier (``repro.serve``/``repro.client``).

The asyncio front end multiplexes every connection onto one event
loop; a single blocking call inside a coroutine stalls *all* in-flight
requests, and state shared between the loop and the shard worker
threads needs a lock.  Three rules police the conventions PR 8's
serving stack established:

``ASYNC-BLOCKING`` — a known-blocking call (``time.sleep``, sync
socket/subprocess/urllib IO, bare ``open``/``input``, an
``OptimizationService``/pool submit, or a no-timeout ``.result()``)
lexically inside an ``async def``.  Blocking work must be pushed off
the loop via ``loop.run_in_executor(...)`` or ``asyncio.to_thread``;
passing the blocking callable *as an argument* to those is fine — only
direct calls are flagged.

``ASYNC-SHARED-MUT`` — an instance attribute mutated both from a
coroutine and from a plain (thread-side) method of the same class with
no ``with <...lock...>:`` protection on the unlocked side.
``__init__`` is exempt (construction happens-before concurrency).

``ASYNC-UNAWAITED`` (phase 2) — a coroutine called as a bare statement
so its result (the coroutine object) is discarded and the body never
runs.  Matches calls to any ``async def`` name known *anywhere* in the
project fact base — the defining file is usually not the calling file —
plus the well-known ``asyncio.*`` coroutine constructors.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.engine import (
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
    dotted_name,
    register,
)
from repro.staticcheck.facts import ProjectFacts

#: Packages whose code runs on (or next to) the event loop.
ASYNC_SCOPE = frozenset({"serve", "client"})

#: Exact dotted calls that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
})

#: Dotted prefixes whose calls do synchronous network/process IO.
BLOCKING_PREFIXES = (
    "socket.",
    "subprocess.",
    "urllib.request.",
    "requests.",
)

#: Bare names that block on file/tty IO.
BLOCKING_NAMES = frozenset({"open", "input"})

#: Method names that hand work to the warm pool / service and wait.
POOL_SUBMIT_ATTRS = frozenset({"optimize", "optimize_many", "submit"})

#: Well-known coroutine constructors whose bare-statement call is
#: always a discarded coroutine.
ASYNCIO_COROUTINES = frozenset({
    "asyncio.sleep", "asyncio.gather", "asyncio.wait",
    "asyncio.wait_for", "asyncio.shield", "asyncio.open_connection",
    "asyncio.start_server", "asyncio.to_thread",
})


def _blocking_reason(call: ast.Call) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted in BLOCKING_CALLS:
        return f"blocking call {dotted}()"
    if dotted is not None:
        for prefix in BLOCKING_PREFIXES:
            if dotted.startswith(prefix):
                return f"synchronous IO call {dotted}()"
    if isinstance(call.func, ast.Name) and call.func.id in BLOCKING_NAMES:
        return f"blocking builtin {call.func.id}()"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in POOL_SUBMIT_ATTRS:
            return (f"pool/service submit .{attr}(...) waits on a "
                    f"worker from the event loop")
        if attr == "result" and not call.args and not call.keywords:
            return ".result() with no timeout blocks the event loop"
    return None


@register
class AsyncBlockingRule(Rule):
    id = "ASYNC-BLOCKING"
    title = "blocking call inside async def"
    scope = ASYNC_SCOPE

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        # (node, directly inside an async def body — nested sync defs
        # and lambdas reset the flag: their bodies run at call time)
        stack: List[Tuple[ast.AST, bool]] = [(module.tree, False)]
        while stack:
            node, in_async = stack.pop()
            if in_async and isinstance(node, ast.Call):
                reason = _blocking_reason(node)
                if reason is not None:
                    findings.append(Finding(
                        path=module.path, line=node.lineno,
                        col=node.col_offset, rule_id=self.id,
                        message=(f"{reason} inside 'async def' stalls "
                                 f"the event loop — use "
                                 f"loop.run_in_executor(...) or "
                                 f"asyncio.to_thread(...)")))
            for child in ast.iter_child_nodes(node):
                child_async = in_async
                if isinstance(node, ast.AsyncFunctionDef):
                    child_async = True
                elif isinstance(node, (ast.FunctionDef, ast.Lambda)):
                    child_async = False
                stack.append((child, child_async))
        findings.sort()
        return findings


def _is_lock_context(item: ast.withitem) -> bool:
    name = dotted_name(item.context_expr)
    if name is None and isinstance(item.context_expr, ast.Call):
        name = dotted_name(item.context_expr.func)
    return name is not None and "lock" in name.lower()


class _MutationScan(ast.NodeVisitor):
    """Per-class scan: self-attribute mutations by method kind."""

    def __init__(self) -> None:
        #: attr -> list of (is_async_method, under_lock, line)
        self.mutations: Dict[str, List[Tuple[bool, bool, int]]] = {}
        self._method_async = False
        self._lock_depth = 0

    def _targets(self, node: ast.AST) -> Iterable[ast.expr]:
        if isinstance(node, ast.Assign):
            return node.targets
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return (node.target,)
        return ()

    def _record(self, node: ast.AST) -> None:
        for target in self._targets(node):
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                self.mutations.setdefault(target.attr, []).append(
                    (self._method_async, self._lock_depth > 0,
                     target.lineno))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node)
        self.generic_visit(node)

    def _visit_with(self, node) -> None:
        locked = any(_is_lock_context(item) for item in node.items)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with


@register
class AsyncSharedMutationRule(Rule):
    id = "ASYNC-SHARED-MUT"
    title = "state mutated from both coroutine and thread contexts"
    scope = ASYNC_SCOPE

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = [n for n in node.body
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))]
            if not any(isinstance(m, ast.AsyncFunctionDef)
                       for m in methods):
                continue
            scan = _MutationScan()
            for method in methods:
                if method.name == "__init__":
                    continue
                scan._method_async = isinstance(method,
                                                ast.AsyncFunctionDef)
                for stmt in method.body:
                    scan.visit(stmt)
            for attr, events in sorted(scan.mutations.items()):
                async_side = [e for e in events if e[0]]
                sync_side = [e for e in events if not e[0]]
                if not async_side or not sync_side:
                    continue
                unlocked = sorted(e for e in events if not e[1])
                if not unlocked:
                    continue
                line = unlocked[0][2]
                findings.append(Finding(
                    path=module.path, line=line, col=0, rule_id=self.id,
                    message=(
                        f"self.{attr} in class {node.name} is mutated "
                        f"from both coroutine and thread contexts "
                        f"without a lock — guard every mutation with "
                        f"'with <lock>:' or confine it to one side")))
        findings.sort()
        return findings


@register
class UnawaitedCoroutineRule(ProjectRule):
    id = "ASYNC-UNAWAITED"
    title = "coroutine called as a statement (result discarded)"
    scope = ASYNC_SCOPE

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        coroutine_names: Set[str] = set(project.async_def_names())
        findings: List[Finding] = []
        for facts in project.iter_scoped(ASYNC_SCOPE):
            for call in facts.stmt_calls:
                if call.dotted in ASYNCIO_COROUTINES:
                    matched = call.dotted
                elif call.in_async and call.name in coroutine_names:
                    matched = call.name
                else:
                    continue
                findings.append(Finding(
                    path=facts.path, line=call.line, col=0,
                    rule_id=self.id,
                    message=(f"call to coroutine {matched!r} as a bare "
                             f"statement discards the coroutine — the "
                             f"body never runs; 'await' it or schedule "
                             f"it with asyncio.create_task(...)")))
        findings.sort()
        return findings
