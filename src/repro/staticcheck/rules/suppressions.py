"""``SUP-UNUSED``: stale inline suppression comments.

The check itself lives in the engine driver
(:func:`repro.staticcheck.engine._suppression_pass`) because it must
observe which directives actually absorbed a finding during the run —
no per-module or per-project hook sees that.  This marker registers
the id so selection, ``--list-rules``, and the catalogue tests treat
it like any other rule.

Judgment is deliberately conservative: a named directive is stale only
when it names an unknown rule id, or when every rule it names was
selected for this run and none fired on its line; a blanket
``# staticcheck: ignore`` is judged only under the full rule set.  A
directive that names ``SUP-UNUSED`` itself opts out permanently.
"""

from __future__ import annotations

from repro.staticcheck.engine import EnginePass, register


@register
class UnusedSuppressionRule(EnginePass):
    id = "SUP-UNUSED"
    title = "suppression comment that no longer suppresses anything"
