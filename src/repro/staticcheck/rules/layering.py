"""Layering rules over the ``repro.*`` import graph.

``LAY-UPWARD`` enforces the package layer map
(:data:`repro.staticcheck.imports.PACKAGE_LAYERS`, mirroring the
DESIGN.md §1 inventory): a module may import its own layer or below at
module-import time, never above.  Deferred (function-body) imports and
``if TYPE_CHECKING:`` imports are exempt — they are the sanctioned
escape hatch for top-layer glue.

``LAY-CYCLE`` reports strongly connected components of the
module-level runtime import graph; every cycle is reported once,
anchored at its alphabetically first member, listing the full loop.

``LAY-KERNEL`` seals the curve-kernel boundary: only the ``curves``
package itself (and future registered backend modules) may import the
block-representation modules — :mod:`repro.curves.kernels` and the
``repro.curves.backend_*`` implementations.  Engine layers (``core``,
``routing``, ``service``, ``pipeline``) must go through
:mod:`repro.curves.contract`, which re-exports the backend-agnostic
names (``BACKENDS``, ``get_kernel``, …).  Unlike ``LAY-UPWARD``,
deferred imports are *not* exempt — reaching into block internals from
a function body is still a boundary breach; only erased
``TYPE_CHECKING`` imports pass.

All three are phase-2 passes: they consume the resolved edge list the
merged :class:`~repro.staticcheck.facts.ProjectFacts` derives from the
cached per-file raw imports, so a warm run enforces layering without
re-parsing a single file.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.staticcheck.engine import Finding, ProjectRule, register
from repro.staticcheck.facts import ProjectFacts
from repro.staticcheck.imports import (
    build_graph,
    find_cycles,
    layer_of,
    package_of,
)


@register
class UpwardImportRule(ProjectRule):
    id = "LAY-UPWARD"
    title = "lower layer importing a higher layer"

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        findings: List[Finding] = []
        for edge in project.edges():
            if not edge.runtime:
                continue
            source_layer = layer_of(edge.source)
            target_layer = layer_of(edge.target)
            if target_layer > source_layer:
                findings.append(Finding(
                    path=edge.path, line=edge.line, col=0,
                    rule_id=self.id,
                    message=(
                        f"{edge.source} (layer {source_layer}, package "
                        f"{package_of(edge.source)!r}) imports "
                        f"{edge.target} (layer {target_layer}, package "
                        f"{package_of(edge.target)!r}): lower layers "
                        f"must not import higher ones — move the shared "
                        f"symbol down or defer the import into the "
                        f"using function")))
        return findings


#: Modules that hold the curve block representation.  Importing any of
#: these from outside ``repro.curves`` bypasses the kernel contract.
KERNEL_MODULES = frozenset({
    "repro.curves.kernels",
    "repro.curves.backend_python",
    "repro.curves.backend_numpy",
})

#: Packages that must stay backend-blind: everything engine-side that
#: consumes curves.  Tool-layer packages (``bench``, ``staticcheck``)
#: may introspect backends; the engine may not.
KERNEL_SEALED_PACKAGES = frozenset({
    "core", "routing", "service", "pipeline",
})


@register
class KernelBoundaryRule(ProjectRule):
    id = "LAY-KERNEL"
    title = "engine layer importing curve-kernel internals"

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        findings: List[Finding] = []
        for edge in project.edges():
            if edge.type_only or edge.target not in KERNEL_MODULES:
                continue
            if package_of(edge.source) not in KERNEL_SEALED_PACKAGES:
                continue
            findings.append(Finding(
                path=edge.path, line=edge.line, col=0, rule_id=self.id,
                message=(
                    f"{edge.source} imports {edge.target}: engine layers "
                    f"must stay backend-blind — import "
                    f"repro.curves.contract (it re-exports BACKENDS, "
                    f"get_kernel, resolve_backend, ...) so curve block "
                    f"internals remain swappable")))
        return findings


@register
class ImportCycleRule(ProjectRule):
    id = "LAY-CYCLE"
    title = "module-level import cycle"

    def check_project(self, project: ProjectFacts) -> Iterable[Finding]:
        findings: List[Finding] = []
        edges = [e for e in project.edges() if e.runtime]
        graph = build_graph(edges)
        paths = {facts.module: facts.path for facts in project.files
                 if facts.module}
        for cycle in find_cycles(graph):
            # Point at the anchor's first edge into the cycle, when the
            # anchor was among the checked files.
            line = 1
            path = paths.get(cycle[0], cycle[0])
            members = set(cycle)
            if cycle[0] in paths:
                for edge in edges:
                    if edge.source == cycle[0] and edge.target in members:
                        line = edge.line
                        break
            loop = " -> ".join(cycle + [cycle[0]])
            findings.append(Finding(
                path=path, line=line, col=0, rule_id=self.id,
                message=(f"import cycle at module import time: {loop} — "
                         f"break it by moving a symbol down a layer or "
                         f"deferring one import into a function")))
        return findings
