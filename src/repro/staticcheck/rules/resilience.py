"""Resilience rules.

The fault-injection framework and the degradation ladder only work if
failures *propagate* to the layer that knows how to classify, retry, or
degrade them.  A bare ``except:`` (or ``except BaseException:``) in the
service/parallel/resilience packages swallows everything — including
``FaultInjected``, ``BudgetExhaustedError``, ``KeyboardInterrupt`` and
worker-pool teardown signals — turning an injected fault into a silent
wrong answer and an exhausted budget into a hang.

``RES-BARE-EXCEPT`` therefore forbids handlers with no exception type
and handlers naming ``BaseException`` in those packages.  Handlers for
``Exception`` (and narrower) remain legal: the recovery layers *should*
catch broadly, but never so broadly that cancellation and injected
chaos cannot get through.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.staticcheck.engine import Finding, ModuleInfo, Rule, register

#: Packages where swallowed failures defeat the resilience machinery.
_RESILIENT_SCOPE = frozenset({"service", "parallel", "resilience"})


def _names_base_exception(handler_type: Optional[ast.expr]) -> bool:
    """True when the handler type mentions ``BaseException`` (directly
    or inside an ``except (A, BaseException):`` tuple)."""
    if handler_type is None:
        return False
    for node in ast.walk(handler_type):
        if isinstance(node, ast.Name) and node.id == "BaseException":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "BaseException":
            return True
    return False


@register
class BareExceptRule(Rule):
    id = "RES-BARE-EXCEPT"
    title = "bare/BaseException handler in a resilience-critical package"
    scope = _RESILIENT_SCOPE

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                what = "bare `except:`"
            elif _names_base_exception(node.type):
                what = "`except BaseException:`"
            else:
                continue
            findings.append(Finding(
                path=module.path, line=node.lineno, col=node.col_offset,
                rule_id=self.id,
                message=f"{what} swallows cancellation, injected faults "
                        f"and budget exhaustion — catch Exception (or "
                        f"narrower) so the resilience layer can classify "
                        f"and recover"))
        return findings
