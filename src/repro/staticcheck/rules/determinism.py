"""Determinism rules.

MERLIN's results must be a pure function of ``(net, order, config,
seed)`` — the bench gate (PR 2) verifies it dynamically across backends
and worker counts; these rules enforce the coding patterns that keep it
true:

* ``DET-RANDOM`` — the module-level :mod:`random` functions draw from a
  hidden global generator whose state depends on import order and on
  every other caller; all randomness must flow through an explicitly
  seeded ``random.Random(seed)`` instance.
* ``DET-TIME`` — wall-clock reads inside the engine packages
  (``core``/``curves``/``routing``) make results time-dependent; timing
  belongs to the instrumentation and experiment layers.
* ``DET-SET-ORDER`` — iterating a bare ``set``/``frozenset`` feeds
  PYTHONHASHSEED-dependent order into whatever is being built (the
  PR-1 latent bug class); wrap the set in ``sorted(...)`` first.
* ``DET-ID-HASH`` — ``id()`` values change run to run and unseeded
  ``hash()`` of str/bytes changes with PYTHONHASHSEED; neither may be
  used as a mapping/set key or as an ordering criterion.  (Pure
  identity *lookups* — e.g. memo tables that are never iterated — are
  fine and not flagged.)
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.staticcheck.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    register,
)

#: Functions of the hidden module-level generator (the seeded
#: ``random.Random`` instance API is identical, so every call here has
#: a drop-in deterministic replacement).
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "seed", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "paretovariate",
    "vonmisesvariate", "weibullvariate", "lognormvariate", "gammavariate",
    "binomialvariate", "randbytes",
})

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

#: The engine packages that must stay clock-free.
_ENGINE_SCOPE = frozenset({"core", "curves", "routing"})


def _finding(module: ModuleInfo, node: ast.AST, rule_id: str,
             message: str) -> Finding:
    return Finding(path=module.path, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0),
                   rule_id=rule_id, message=message)


@register
class GlobalRandomRule(Rule):
    id = "DET-RANDOM"
    title = "module-level random.* call (hidden global RNG state)"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (name is not None and name.startswith("random.")
                        and name.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS):
                    findings.append(_finding(
                        module, node, self.id,
                        f"call to the hidden global RNG ({name}()); "
                        f"draw from an explicitly seeded "
                        f"random.Random(seed) instance instead"))
            elif (isinstance(node, ast.ImportFrom)
                  and node.module == "random" and not node.level):
                bad = sorted(alias.name for alias in node.names
                             if alias.name in _GLOBAL_RANDOM_FUNCS)
                if bad:
                    findings.append(_finding(
                        module, node, self.id,
                        f"importing global-RNG functions from random "
                        f"({', '.join(bad)}); import random.Random and "
                        f"seed it explicitly"))
        return findings


@register
class WallClockRule(Rule):
    id = "DET-TIME"
    title = "wall-clock read inside an engine package"
    scope = _ENGINE_SCOPE

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _CLOCK_CALLS:
                findings.append(_finding(
                    module, node, self.id,
                    f"{name}() inside {module.package!r}: engine results "
                    f"must not depend on the clock — time in the "
                    f"instrument/experiment layers instead"))
        return findings


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


#: Calls that materialize their argument *in iteration order*.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


@register
class SetOrderRule(Rule):
    id = "DET-SET-ORDER"
    title = "bare set iteration feeding order-sensitive construction"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        hint = ("set iteration order depends on PYTHONHASHSEED; wrap the "
                "set in sorted(...) before building ordered structure "
                "from it")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                findings.append(_finding(module, node.iter, self.id, hint))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        findings.append(_finding(module, comp.iter,
                                                 self.id, hint))
            elif isinstance(node, ast.Call):
                callee = node.func
                is_join = (isinstance(callee, ast.Attribute)
                           and callee.attr == "join")
                is_seq = (isinstance(callee, ast.Name)
                          and callee.id in _ORDER_SENSITIVE_CALLS)
                if ((is_join or is_seq) and node.args
                        and _is_set_expr(node.args[0])):
                    findings.append(_finding(module, node.args[0],
                                             self.id, hint))
        return findings


def _contains_identity_call(node: ast.AST) -> Optional[ast.Call]:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id in ("id", "hash")):
            return sub
    return None


_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@register
class IdHashKeyRule(Rule):
    id = "DET-ID-HASH"
    title = "id()/hash()-derived key or ordering"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []

        def flag(context: ast.AST, where: str) -> None:
            call = _contains_identity_call(context)
            if call is not None:
                findings.append(_finding(
                    module, call, self.id,
                    f"{call.func.id}() used {where}: id() changes per "  # type: ignore[attr-defined]
                    f"run and hash() with PYTHONHASHSEED — key/order by "
                    f"stable attributes or positional indices instead"))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None:
                        flag(key, "as a dict key")
            elif isinstance(node, ast.DictComp):
                flag(node.key, "as a dict-comprehension key")
            elif isinstance(node, ast.Set):
                for elt in node.elts:
                    flag(elt, "as a set element")
            elif isinstance(node, ast.SetComp):
                flag(node.elt, "as a set-comprehension element")
            elif isinstance(node, ast.Compare):
                if any(isinstance(op, _ORDERING_OPS) for op in node.ops):
                    for operand in [node.left] + list(node.comparators):
                        flag(operand, "in an ordering comparison")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in ("sorted", "min", "max")):
                for keyword in node.keywords:
                    if keyword.arg == "key":
                        flag(keyword.value, "in a sort/min/max key")
        return findings
